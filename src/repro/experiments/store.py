"""The persistent result store for experiment campaigns.

Every simulated run is identified by a :class:`RunKey` — ``(target,
config-hash, seed, attacked)``.  Storage is pluggable behind
:class:`ResultStoreBase` (see :func:`open_store`): the default JSON
backend below keeps one file per run and stays bit-identical to the
historical layout; :class:`~repro.experiments.sqlite_store.SqliteResultStore`
keeps the same records as rows of one WAL-mode database for
campaign-scale fan-out.  In the JSON backend each run is one file under
the store root (``results/`` by default)::

    results/<target>/<config-hash>/s<seed>-<atk|af>.json

The config hash is content-addressed: a SHA-256 over the canonical JSON
serialisation of the full :class:`~repro.experiments.config.ExperimentConfig`
(nested dataclasses, enums and the radio technology included), so two runs
share a file if and only if they simulate the identical scenario.  Writes
are atomic (temp file + ``os.replace``) — a campaign killed mid-write never
leaves a truncated record behind — and every record carries a schema
version; records written by an incompatible schema are treated as absent
and re-run rather than mis-parsed.

Three record kinds exist:

* ``run`` — a full :class:`~repro.experiments.runner.RunResult` (the A/B
  figure substrate);
* ``text`` — a rendered artefact for targets that are not A/B sweeps
  (tables, Fig 12/13, the overhead report);
* ``failure`` — a run that exhausted its retries; kept for forensics,
  reported by the campaign, and retried on the next ``--resume``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.experiments.metrics import BinnedRates, PacketOutcome
from repro.experiments.runner import RunResult

#: Bumped whenever the on-disk record layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default store root, relative to the working directory.
DEFAULT_RESULTS_DIR = "results"

#: Subdirectory (JSON backend) holding checkpoint envelopes for a config.
CHECKPOINT_DIRNAME = "_ckpt"


class StoreError(RuntimeError):
    """Raised on malformed store operations (not on missing records)."""


# ----------------------------------------------------------------------
# canonical config serialisation / hashing
# ----------------------------------------------------------------------
def jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses/enums/tuples into JSON-stable data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [jsonable(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise StoreError(f"cannot serialise {type(obj).__name__!r} for the store")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text for hashing (sorted keys, no whitespace)."""
    return json.dumps(jsonable(obj), sort_keys=True, separators=(",", ":"))


def config_hash(config: Any) -> str:
    """Content hash of a config (or any jsonable parameter set)."""
    digest = hashlib.sha256(canonical_json(config).encode("utf-8"))
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunKey:
    """The identity of one stored run."""

    target: str
    config_hash: str
    seed: int
    attacked: bool

    def __post_init__(self):
        if not self.target or "/" in self.target:
            raise StoreError(f"invalid target name {self.target!r}")

    @property
    def filename(self) -> str:
        return f"s{self.seed}-{'atk' if self.attacked else 'af'}.json"

    @staticmethod
    def for_config(
        target: str, config: Any, *, seed: int, attacked: bool
    ) -> "RunKey":
        """Build the key for one run of ``config``."""
        return RunKey(
            target=target,
            config_hash=config_hash(config),
            seed=seed,
            attacked=attacked,
        )


# ----------------------------------------------------------------------
# RunResult <-> JSON
# ----------------------------------------------------------------------
def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Serialise a RunResult to plain JSON data (floats round-trip exactly)."""
    return {
        "seed": result.seed,
        "attacked": result.attacked,
        "overall_rate": result.overall_rate,
        "n_packets": result.n_packets,
        "binned": {
            "bin_width": result.binned.bin_width,
            "rates": result.binned.rates,
        },
        "outcomes": [
            {
                "packet_id": list(o.packet_id),
                "send_time": o.send_time,
                "source_x": o.source_x,
                "direction": o.direction,
                "success": o.success,
                "receivers": o.receivers,
                "denominator": o.denominator,
                "in_fully_covered_area": o.in_fully_covered_area,
                "delivery_latency": o.delivery_latency,
            }
            for o in result.outcomes
        ],
        "extras": dict(result.extras),
        # Packet-lifecycle outcome counts; null for runs without a ledger.
        # Additive and optional, so schema version 1 records round-trip.
        "drop_breakdown": (
            None
            if result.drop_breakdown is None
            else {str(k): int(v) for k, v in result.drop_breakdown.items()}
        ),
    }


def run_result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Rebuild a RunResult from its stored form."""
    return RunResult(
        seed=int(data["seed"]),
        attacked=bool(data["attacked"]),
        binned=BinnedRates(
            bin_width=float(data["binned"]["bin_width"]),
            rates=list(data["binned"]["rates"]),
        ),
        overall_rate=float(data["overall_rate"]),
        n_packets=int(data["n_packets"]),
        outcomes=[
            PacketOutcome(
                packet_id=tuple(o["packet_id"]),
                send_time=o["send_time"],
                source_x=o["source_x"],
                direction=o["direction"],
                success=o["success"],
                receivers=o["receivers"],
                denominator=o["denominator"],
                in_fully_covered_area=o["in_fully_covered_area"],
                delivery_latency=o["delivery_latency"],
            )
            for o in data["outcomes"]
        ],
        extras={str(k): float(v) for k, v in data["extras"].items()},
        drop_breakdown=(
            None
            if data.get("drop_breakdown") is None
            else {
                str(k): int(v) for k, v in data["drop_breakdown"].items()
            }
        ),
    )


# ----------------------------------------------------------------------
# the backend contract
# ----------------------------------------------------------------------
class ResultStoreBase:
    """The store contract every result backend implements.

    A backend persists schema-versioned record dicts keyed by
    :class:`RunKey` and guarantees, whatever the medium:

    * **atomic writes** — a writer killed mid-record never leaves a
      half-written record visible to readers;
    * **schema versioning** — a record whose ``schema`` differs from
      :data:`SCHEMA_VERSION` reads as absent (re-run, never mis-parsed)
      but is left in place as version-skew evidence;
    * **quarantine** — a record that exists but cannot be parsed is moved
      aside (readable as absent, rewritable, evidence preserved);
    * **concurrent writers** — independent processes may write disjoint
      (or even identical) keys simultaneously without corrupting records.

    Subclasses implement the raw-record primitives (:meth:`_write_record`,
    :meth:`get_record`, :meth:`iter_keys`, :meth:`quarantine_count`); the
    record-kind API (``put_run``/``get_run``/…) is shared so every backend
    produces byte-identical record dicts — the parity the contract test
    suite (``tests/experiments/test_store_contract.py``) pins.

    The shared contract is deliberately append/overwrite-only: campaign
    runs are deterministic, so re-executing a key overwrites it with the
    identical record and every write is idempotent.
    """

    # -- primitives (backend-specific) ----------------------------------
    def _write_record(self, key: RunKey, record: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def get_record(self, key: RunKey) -> Optional[Dict[str, Any]]:
        """The raw record for ``key``; None if absent, quarantined, or
        from an incompatible schema version."""
        raise NotImplementedError

    def iter_keys(self) -> Iterator[RunKey]:
        """Every key with any record (including failures), sorted."""
        raise NotImplementedError

    def quarantine_count(self) -> int:
        """How many corrupt records have been moved aside."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line backend identification for logs and status output."""
        return type(self).__name__

    # -- batched appends ------------------------------------------------
    @contextmanager
    def batch(self) -> Iterator["ResultStoreBase"]:
        """Group writes into one atomic append where the backend can.

        The JSON backend is per-file atomic already, so this is a no-op
        there; the SQLite backend coalesces everything written inside the
        ``with`` block into a single transaction — either all records land
        or none do (the mid-commit crash guarantee the recovery tests
        exercise).
        """
        yield self

    # -- shared record-kind API -----------------------------------------
    def _base_record(self, key: RunKey, kind: str) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "target": key.target,
            "config_hash": key.config_hash,
            "seed": key.seed,
            "attacked": key.attacked,
        }

    def put_run(
        self, key: RunKey, result: RunResult, *, config: Any = None
    ) -> Any:
        """Store a completed RunResult (``config`` is kept for forensics)."""
        record = self._base_record(key, "run")
        record["result"] = run_result_to_dict(result)
        if config is not None:
            record["config"] = jsonable(config)
        return self._write_record(key, record)

    def get_run(self, key: RunKey) -> Optional[RunResult]:
        """The stored RunResult, or None (absent / failed / wrong kind)."""
        record = self.get_record(key)
        if record is None or record.get("kind") != "run":
            return None
        return run_result_from_dict(record["result"])

    def put_text(self, key: RunKey, text: str, *, params: Any = None) -> Any:
        """Store a rendered artefact for a non-A/B target."""
        record = self._base_record(key, "text")
        record["text"] = text
        if params is not None:
            record["params"] = jsonable(params)
        return self._write_record(key, record)

    def get_text(self, key: RunKey) -> Optional[str]:
        record = self.get_record(key)
        if record is None or record.get("kind") != "text":
            return None
        return record["text"]

    def put_failure(self, key: RunKey, error: str) -> Any:
        """Record a run that exhausted its retries (retried on resume)."""
        record = self._base_record(key, "failure")
        record["error"] = error
        return self._write_record(key, record)

    def get_failure(self, key: RunKey) -> Optional[str]:
        record = self.get_record(key)
        if record is None or record.get("kind") != "failure":
            return None
        return record["error"]

    def has(self, key: RunKey) -> bool:
        """Whether a *successful* (run or text) record exists for ``key``."""
        record = self.get_record(key)
        return record is not None and record.get("kind") in ("run", "text")

    def count(self) -> int:
        return sum(1 for _ in self.iter_keys())

    # -- checkpoints -----------------------------------------------------
    # Checkpoints live in a separate namespace from run records: one
    # envelope per key, overwritten in place (the newest checkpoint is the
    # only one kept), invisible to ``iter_keys``/``has``/``count`` and
    # garbage-collected when the run completes.  An envelope that cannot
    # even be parsed is quarantined by ``get_checkpoint`` itself; one that
    # parses but fails validation (version skew, digest mismatch) is
    # quarantined by the *resume* layer via ``quarantine_checkpoint`` —
    # either way the key reads as checkpoint-less and the run restarts
    # from scratch.

    def put_checkpoint(self, key: RunKey, envelope: Dict[str, Any]) -> Any:
        """Persist the (single) checkpoint envelope for ``key``."""
        raise NotImplementedError

    def get_checkpoint(self, key: RunKey) -> Optional[Dict[str, Any]]:
        """The stored checkpoint envelope, or None; quarantines garbage."""
        raise NotImplementedError

    def delete_checkpoint(self, key: RunKey) -> None:
        """Drop the checkpoint for ``key`` (no-op when absent)."""
        raise NotImplementedError

    def quarantine_checkpoint(self, key: RunKey, reason: str) -> None:
        """Move an invalid checkpoint aside (evidence kept, key reads
        checkpoint-less); best-effort, never raises."""
        raise NotImplementedError

    def checkpoint_quarantine_count(self) -> int:
        """How many invalid checkpoints have been moved aside."""
        raise NotImplementedError

    def checkpoint_sim_time(self, key: RunKey) -> Optional[float]:
        """The stored checkpoint's simulation time, or None.

        Status/monitoring helper — backends may answer from metadata
        without materialising the payload."""
        envelope = self.get_checkpoint(key)
        if envelope is None:
            return None
        try:
            return float(envelope["sim_time"])
        except (KeyError, TypeError, ValueError):
            return None


# ----------------------------------------------------------------------
# the JSON backend (the default)
# ----------------------------------------------------------------------
class ResultStore(ResultStoreBase):
    """A directory of atomically-written, schema-versioned run records."""

    def __init__(self, root: "str | os.PathLike[str]" = DEFAULT_RESULTS_DIR):
        self.root = Path(root)

    def describe(self) -> str:
        return f"json:{self.root}"

    # -- paths ----------------------------------------------------------
    def path_for(self, key: RunKey) -> Path:
        return self.root / key.target / key.config_hash / key.filename

    def checkpoint_path_for(self, key: RunKey) -> Path:
        """Checkpoint envelopes live under ``<hash>/_ckpt/`` so the run
        record globs (``s*-*.json`` one level up) never see them."""
        return (
            self.root
            / key.target
            / key.config_hash
            / CHECKPOINT_DIRNAME
            / key.filename
        )

    # -- raw records ----------------------------------------------------
    def _write_record(self, key: RunKey, record: Dict[str, Any]) -> Path:
        """Atomically write ``record`` for ``key`` (temp file + replace)."""
        return self._atomic_write(self.path_for(key), record)

    def _atomic_write(self, path: Path, record: Dict[str, Any]) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def get_record(self, key: RunKey) -> Optional[Dict[str, Any]]:
        """The raw record for ``key``; None if absent, unreadable, or from
        an incompatible schema version (such records are re-run, never
        mis-parsed).

        A record that exists but cannot be parsed (truncated write on a
        crashed filesystem, manual tampering) is *quarantined* — renamed to
        ``<name>.json.corrupt`` so the evidence survives for forensics
        while ``has()`` turns False and the next ``--resume`` re-executes
        the run instead of failing on it forever."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except OSError:
            return None
        except json.JSONDecodeError:
            self._quarantine(path)
            return None
        if not isinstance(record, dict):
            self._quarantine(path)
            return None
        if record.get("schema") != SCHEMA_VERSION:
            return None
        return record

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt record aside (``.corrupt`` suffix keeps it out of
        ``iter_keys``'s ``*.json`` glob); best-effort, never raises."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    def quarantine_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*/*.json.corrupt"))

    # -- checkpoints -----------------------------------------------------
    def put_checkpoint(self, key: RunKey, envelope: Dict[str, Any]) -> Path:
        return self._atomic_write(self.checkpoint_path_for(key), envelope)

    def get_checkpoint(self, key: RunKey) -> Optional[Dict[str, Any]]:
        path = self.checkpoint_path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except OSError:
            return None
        except json.JSONDecodeError:
            self._quarantine(path)
            return None
        if not isinstance(envelope, dict):
            self._quarantine(path)
            return None
        return envelope

    def delete_checkpoint(self, key: RunKey) -> None:
        try:
            os.unlink(self.checkpoint_path_for(key))
        except OSError:
            pass

    def quarantine_checkpoint(self, key: RunKey, reason: str) -> None:
        # The rename preserves the evidence; the reason lands in a tiny
        # sidecar next to it (best-effort, like the rename itself).
        path = self.checkpoint_path_for(key)
        self._quarantine(path)
        try:
            corrupt = path.with_name(path.name + ".corrupt")
            if corrupt.exists():
                corrupt.with_name(corrupt.name + ".reason").write_text(
                    reason, encoding="utf-8"
                )
        except OSError:
            pass

    def checkpoint_quarantine_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for _ in self.root.glob(
                f"*/*/{CHECKPOINT_DIRNAME}/*.json.corrupt"
            )
        )

    # -- queries --------------------------------------------------------
    def iter_keys(self) -> Iterator[RunKey]:
        """Every key with any record on disk (including failures)."""
        if not self.root.is_dir():
            return
        for target_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for hash_dir in sorted(
                p for p in target_dir.iterdir() if p.is_dir()
            ):
                for path in sorted(hash_dir.glob("s*-*.json")):
                    stem = path.stem  # s<seed>-<atk|af>
                    try:
                        seed_txt, kind_txt = stem[1:].rsplit("-", 1)
                        yield RunKey(
                            target=target_dir.name,
                            config_hash=hash_dir.name,
                            seed=int(seed_txt),
                            attacked=(kind_txt == "atk"),
                        )
                    except (ValueError, StoreError):
                        continue


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
#: Known backend names for :func:`open_store` and the CLI ``--backend``.
STORE_BACKENDS = ("json", "sqlite")

#: Filename used when a SQLite store is addressed by a directory root.
SQLITE_DB_NAME = "results.sqlite"


def open_store(
    root: "str | os.PathLike[str]" = DEFAULT_RESULTS_DIR,
    *,
    backend: str = "json",
) -> ResultStoreBase:
    """Open a result store of the requested backend.

    ``backend="json"`` (the default, bit-identical to the historical
    layout) treats ``root`` as the store directory.  ``backend="sqlite"``
    opens one WAL-mode database file: ``root`` itself when it names a
    ``*.sqlite`` / ``*.db`` file, else ``root/results.sqlite`` so JSON and
    SQLite campaigns can share a results directory side by side.
    """
    if backend == "json":
        return ResultStore(root)
    if backend == "sqlite":
        from repro.experiments.sqlite_store import SqliteResultStore

        path = Path(root)
        if path.suffix not in (".sqlite", ".db"):
            path = path / SQLITE_DB_NAME
        return SqliteResultStore(path)
    raise StoreError(
        f"unknown store backend {backend!r} (known: {', '.join(STORE_BACKENDS)})"
    )
