"""Text reporting: paper-style tables and series for every figure, plus
performance snapshots (events/sec, transmits/sec, receivers-per-frame)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.runner import AbResult, RunResult


def fmt_pct(value: Optional[float]) -> str:
    """Format a ratio as a percentage, n/a-safe."""
    return f"{value:6.1%}" if value is not None else "   n/a"


@dataclass(frozen=True)
class PerfSnapshot:
    """Hot-path performance counters of one run.

    Built from the :class:`~repro.sim.engine.Simulator` and
    :class:`~repro.radio.channel.ChannelStats` counters the run accumulated
    — no external profiler involved.  ``mean_candidates_per_frame`` is the
    average number of candidate receivers the channel examined per
    transmit: with the spatial index it tracks the ~k in-range neighbors
    instead of the N registered interfaces.
    """

    events_fired: int
    wall_time_s: float
    frames_sent: int
    frames_delivered: int
    mean_receivers_per_frame: float
    mean_candidates_per_frame: float

    @classmethod
    def from_world(cls, world) -> "PerfSnapshot":
        """Snapshot a (finished) :class:`~repro.experiments.world.World`."""
        stats = world.channel.stats
        return cls(
            events_fired=world.sim.events_fired,
            wall_time_s=world.sim.wall_time_s,
            frames_sent=stats.frames_sent,
            frames_delivered=stats.frames_delivered,
            mean_receivers_per_frame=stats.mean_receivers_per_frame,
            mean_candidates_per_frame=stats.mean_candidates_per_frame,
        )

    @classmethod
    def from_run(cls, run: RunResult) -> "PerfSnapshot":
        """Rebuild a snapshot from a :class:`RunResult`'s extras."""
        extras = run.extras
        return cls(
            events_fired=int(extras.get("events_fired", 0)),
            wall_time_s=float(extras.get("wall_time_s", 0.0)),
            frames_sent=int(extras.get("frames_sent", 0)),
            frames_delivered=int(extras.get("frames_delivered", 0)),
            mean_receivers_per_frame=float(
                extras.get("mean_receivers_per_frame", 0.0)
            ),
            mean_candidates_per_frame=float(
                extras.get("mean_candidates_per_frame", 0.0)
            ),
        )

    @property
    def events_per_sec(self) -> float:
        """Fired events per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.events_fired / self.wall_time_s

    @property
    def transmits_per_sec(self) -> float:
        """Channel transmits per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.frames_sent / self.wall_time_s

    def format(self) -> str:
        """One perf line, e.g. for appending under a figure table."""
        return (
            f"  perf: {self.events_fired} events in {self.wall_time_s:.2f}s "
            f"({self.events_per_sec:,.0f} ev/s, "
            f"{self.transmits_per_sec:,.0f} tx/s), "
            f"rx/frame={self.mean_receivers_per_frame:.1f}, "
            f"candidates/frame={self.mean_candidates_per_frame:.1f}"
        )


@dataclass
class FigureSeries:
    """One line of a figure: a labelled A/B comparison."""

    label: str
    result: AbResult

    @property
    def drop(self) -> Optional[float]:
        return self.result.drop_rate()

    @property
    def drop_abs(self) -> Optional[float]:
        return self.result.drop_rate(relative=False)

    def row(self) -> str:
        r = self.result
        return (
            f"  {self.label:<22} af={fmt_pct(r.af_overall)}  "
            f"atk={fmt_pct(r.atk_overall)}  drop={fmt_pct(self.drop)} "
            f"(abs {fmt_pct(self.drop_abs)})"
        )


@dataclass
class FigureResult:
    """All series of one paper figure, plus context."""

    figure_id: str
    title: str
    series: List[FigureSeries] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, label: str, result: AbResult) -> FigureSeries:
        entry = FigureSeries(label=label, result=result)
        self.series.append(entry)
        return entry

    def get(self, label: str) -> FigureSeries:
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(f"no series labelled {label!r} in {self.figure_id}")

    def format(self) -> str:
        lines = [f"{self.figure_id}: {self.title}"]
        lines.extend(entry.row() for entry in self.series)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)

    def sketch(self) -> str:
        """Sparkline rendering of every series' af/atk reception over time."""
        from repro.analysis.textplot import series_table

        rows = []
        bin_width = 5.0
        for entry in self.series:
            bin_width = entry.result.config.bin_width
            rows.append((f"{entry.label} af ", entry.result.af_bin_rates))
            rows.append((f"{entry.label} atk", entry.result.atk_bin_rates))
        return f"{self.figure_id}: {self.title}\n" + series_table(
            rows, bin_width=bin_width
        )

    def bin_table(self) -> str:
        """The per-bin reception-rate series (the actual figure lines)."""
        lines = [f"{self.figure_id} per-bin reception rates"]
        for entry in self.series:
            af = entry.result.af_bin_rates
            atk = entry.result.atk_bin_rates
            af_txt = " ".join("  ---" if v is None else f"{v:5.2f}" for v in af)
            atk_txt = " ".join("  ---" if v is None else f"{v:5.2f}" for v in atk)
            lines.append(f"  {entry.label} [af ]: {af_txt}")
            lines.append(f"  {entry.label} [atk]: {atk_txt}")
        return "\n".join(lines)


def cumulative_table(
    figure_id: str, series: Sequence[FigureSeries], *, bin_width: float
) -> str:
    """Fig 8 / Fig 10 style: accumulated drop rate over time per scenario."""
    lines = [f"{figure_id}: accumulated drop rate over time (bin={bin_width:.0f}s)"]
    for entry in series:
        drops = entry.result.cumulative_drops()
        txt = " ".join("  ---" if v is None else f"{v:5.2f}" for v in drops)
        lines.append(f"  {entry.label:<22} {txt}")
    return "\n".join(lines)
