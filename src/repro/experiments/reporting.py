"""Text reporting: paper-style tables and series for every figure, plus
performance snapshots (events/sec, transmits/sec, receivers-per-frame)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import AbResult, RunResult
from repro.observability.ledger import OUTCOMES, reasons


def fmt_pct(value: Optional[float]) -> str:
    """Format a ratio as a percentage, n/a-safe."""
    return f"{value:6.1%}" if value is not None else "   n/a"


def coverage_note(stored: int, planned: int) -> str:
    """How much of a target's run set backs a partially-assembled figure.

    Appended as a ``note:`` line under artefacts rendered with
    ``--partial``, so a figure built from half a campaign can never be
    mistaken for the finished one.
    """
    if planned <= 0 or stored >= planned:
        return "complete"
    pct = 100.0 * stored / planned
    return f"partial: {stored}/{planned} runs stored ({pct:.0f}%)"


def format_progress(snapshot: Dict[str, object]) -> str:
    """One log line from a campaign progress snapshot (the dict served by
    the status endpoint — see
    :func:`repro.experiments.service.status.progress_snapshot`)."""
    parts = [
        f"{snapshot.get('stored', 0)}/{snapshot.get('planned', 0)} stored "
        f"({snapshot.get('percent', 0.0)}%)",
        f"{snapshot.get('failures', 0)} failed",
    ]
    queue = snapshot.get("queue")
    if isinstance(queue, dict):
        parts.append(
            f"queue: {queue.get('pending', 0)} pending, "
            f"{queue.get('leased', 0)} leased, "
            f"{queue.get('done', 0)} done, "
            f"{queue.get('failed', 0)} failed"
        )
    return "campaign progress: " + ", ".join(parts)


def detection_table(
    rows: Sequence[tuple],
) -> List[str]:
    """Precision/recall/detection-latency table for the ``detect`` sweep.

    ``rows`` is ``(label, metrics)`` with the metric dict produced by
    :meth:`repro.experiments.detect.DetectCell.metrics`; latency is shown
    in seconds (n/a when nothing was detected), the FP column quantifies
    the attack-free alert volume under the cell's impairments.
    """
    lines = [
        f"  {'cell':<28} {'recall':>7} {'prec':>7} {'latency':>8} "
        f"{'fp-win':>7} {'fp-alerts':>9} {'drop':>7} {'replays':>8}"
    ]
    for label, metrics in rows:
        latency = metrics.get("latency")
        latency_txt = f"{latency:7.1f}s" if latency is not None else "     n/a"
        fp_alerts = metrics.get("fp_alerts") or 0.0
        replays = metrics.get("replays") or 0.0
        lines.append(
            f"  {label:<28} {fmt_pct(metrics.get('recall')):>7} "
            f"{fmt_pct(metrics.get('precision')):>7} {latency_txt} "
            f"{fmt_pct(metrics.get('fp_window_rate')):>7} "
            f"{fp_alerts:9.0f} {fmt_pct(metrics.get('drop')):>7} "
            f"{replays:8.0f}"
        )
    return lines


def _breakdown_totals(runs: Sequence[RunResult]) -> Counter:
    totals: Counter = Counter()
    for run in runs:
        if run.drop_breakdown:
            totals.update(run.drop_breakdown)
    return totals


def drop_breakdown_table(
    af_runs: Sequence[RunResult],
    atk_runs: Sequence[RunResult],
    *,
    title: str = "packet drop breakdown",
) -> str:
    """Side-by-side terminal-outcome accounting of seed-paired A/B runs.

    Every originated application packet appears in exactly one row (the
    ledger's conservation invariant), so the columns each sum to the number
    of packets originated — the table answers *where* the attack's lost
    packets actually died, not just how many.
    """
    af = _breakdown_totals(af_runs)
    atk = _breakdown_totals(atk_runs)
    if not af and not atk:
        return f"{title}: no ledger data (runs executed without a ledger)"
    lines = [
        f"{title}",
        f"  {'outcome':<24} {'attack-free':>12} {'attacked':>12} {'delta':>8}",
    ]
    shown = [r for r in OUTCOMES if af.get(r, 0) or atk.get(r, 0)]
    for reason in shown:
        a, b = af.get(reason, 0), atk.get(reason, 0)
        lines.append(f"  {reason:<24} {a:>12} {b:>12} {b - a:>+8}")
    lines.append(
        f"  {'total originated':<24} "
        f"{sum(af.values()):>12} {sum(atk.values()):>12} "
        f"{sum(atk.values()) - sum(af.values()):>+8}"
    )
    return "\n".join(lines)


def dominant_loss(
    af_runs: Sequence[RunResult], atk_runs: Sequence[RunResult]
) -> Optional[tuple]:
    """``(reason, excess, share)`` of the drop reason that grew the most
    under attack — the attribution the ``explain`` CLI reports.  ``share``
    is that reason's fraction of the total attack-induced drop growth; None
    when the attack added no drops (or no ledger ran)."""
    af = _breakdown_totals(af_runs)
    atk = _breakdown_totals(atk_runs)
    excess: Dict[str, int] = {}
    for reason in OUTCOMES:
        if reason == reasons.DELIVERED:
            continue
        delta = atk.get(reason, 0) - af.get(reason, 0)
        if delta > 0:
            excess[reason] = delta
    total = sum(excess.values())
    if total == 0:
        return None
    reason = max(excess, key=lambda r: excess[r])
    return reason, excess[reason], excess[reason] / total


@dataclass(frozen=True)
class PerfSnapshot:
    """Hot-path performance counters of one run.

    Built from the :class:`~repro.sim.engine.Simulator` and
    :class:`~repro.radio.channel.ChannelStats` counters the run accumulated
    — no external profiler involved.  ``mean_candidates_per_frame`` is the
    average number of candidate receivers the channel examined per
    transmit: with the spatial index it tracks the ~k in-range neighbors
    instead of the N registered interfaces.
    """

    events_fired: int
    wall_time_s: float
    frames_sent: int
    frames_delivered: int
    mean_receivers_per_frame: float
    mean_candidates_per_frame: float

    @classmethod
    def from_world(cls, world) -> "PerfSnapshot":
        """Snapshot a (finished) :class:`~repro.experiments.world.World`."""
        stats = world.channel.stats
        return cls(
            events_fired=world.sim.events_fired,
            wall_time_s=world.sim.wall_time_s,
            frames_sent=stats.frames_sent,
            frames_delivered=stats.frames_delivered,
            mean_receivers_per_frame=stats.mean_receivers_per_frame,
            mean_candidates_per_frame=stats.mean_candidates_per_frame,
        )

    @classmethod
    def from_run(cls, run: RunResult) -> "PerfSnapshot":
        """Rebuild a snapshot from a :class:`RunResult`'s extras."""
        extras = run.extras
        return cls(
            events_fired=int(extras.get("events_fired", 0)),
            wall_time_s=float(extras.get("wall_time_s", 0.0)),
            frames_sent=int(extras.get("frames_sent", 0)),
            frames_delivered=int(extras.get("frames_delivered", 0)),
            mean_receivers_per_frame=float(
                extras.get("mean_receivers_per_frame", 0.0)
            ),
            mean_candidates_per_frame=float(
                extras.get("mean_candidates_per_frame", 0.0)
            ),
        )

    @property
    def events_per_sec(self) -> float:
        """Fired events per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.events_fired / self.wall_time_s

    @property
    def transmits_per_sec(self) -> float:
        """Channel transmits per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.frames_sent / self.wall_time_s

    def format(self) -> str:
        """One perf line, e.g. for appending under a figure table."""
        return (
            f"  perf: {self.events_fired} events in {self.wall_time_s:.2f}s "
            f"({self.events_per_sec:,.0f} ev/s, "
            f"{self.transmits_per_sec:,.0f} tx/s), "
            f"rx/frame={self.mean_receivers_per_frame:.1f}, "
            f"candidates/frame={self.mean_candidates_per_frame:.1f}"
        )


@dataclass
class FigureSeries:
    """One line of a figure: a labelled A/B comparison."""

    label: str
    result: AbResult

    @property
    def drop(self) -> Optional[float]:
        return self.result.drop_rate()

    @property
    def drop_abs(self) -> Optional[float]:
        return self.result.drop_rate(relative=False)

    def row(self) -> str:
        r = self.result
        return (
            f"  {self.label:<22} af={fmt_pct(r.af_overall)}  "
            f"atk={fmt_pct(r.atk_overall)}  drop={fmt_pct(self.drop)} "
            f"(abs {fmt_pct(self.drop_abs)})"
        )


@dataclass
class FigureResult:
    """All series of one paper figure, plus context."""

    figure_id: str
    title: str
    series: List[FigureSeries] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, label: str, result: AbResult) -> FigureSeries:
        entry = FigureSeries(label=label, result=result)
        self.series.append(entry)
        return entry

    def get(self, label: str) -> FigureSeries:
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(f"no series labelled {label!r} in {self.figure_id}")

    def format(self) -> str:
        lines = [f"{self.figure_id}: {self.title}"]
        lines.extend(entry.row() for entry in self.series)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)

    def sketch(self) -> str:
        """Sparkline rendering of every series' af/atk reception over time."""
        from repro.analysis.textplot import series_table

        rows = []
        bin_width = 5.0
        for entry in self.series:
            bin_width = entry.result.config.bin_width
            rows.append((f"{entry.label} af ", entry.result.af_bin_rates))
            rows.append((f"{entry.label} atk", entry.result.atk_bin_rates))
        return f"{self.figure_id}: {self.title}\n" + series_table(
            rows, bin_width=bin_width
        )

    def bin_table(self) -> str:
        """The per-bin reception-rate series (the actual figure lines)."""
        lines = [f"{self.figure_id} per-bin reception rates"]
        for entry in self.series:
            af = entry.result.af_bin_rates
            atk = entry.result.atk_bin_rates
            af_txt = " ".join("  ---" if v is None else f"{v:5.2f}" for v in af)
            atk_txt = " ".join("  ---" if v is None else f"{v:5.2f}" for v in atk)
            lines.append(f"  {entry.label} [af ]: {af_txt}")
            lines.append(f"  {entry.label} [atk]: {atk_txt}")
        return "\n".join(lines)


def cumulative_table(
    figure_id: str, series: Sequence[FigureSeries], *, bin_width: float
) -> str:
    """Fig 8 / Fig 10 style: accumulated drop rate over time per scenario."""
    lines = [f"{figure_id}: accumulated drop rate over time (bin={bin_width:.0f}s)"]
    for entry in series:
        drops = entry.result.cumulative_drops()
        txt = " ".join("  ---" if v is None else f"{v:5.2f}" for v in drops)
        lines.append(f"  {entry.label:<22} {txt}")
    return "\n".join(lines)
