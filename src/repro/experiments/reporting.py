"""Text reporting: paper-style tables and series for every figure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.runner import AbResult


def fmt_pct(value: Optional[float]) -> str:
    """Format a ratio as a percentage, n/a-safe."""
    return f"{value:6.1%}" if value is not None else "   n/a"


@dataclass
class FigureSeries:
    """One line of a figure: a labelled A/B comparison."""

    label: str
    result: AbResult

    @property
    def drop(self) -> Optional[float]:
        return self.result.drop_rate()

    @property
    def drop_abs(self) -> Optional[float]:
        return self.result.drop_rate(relative=False)

    def row(self) -> str:
        r = self.result
        return (
            f"  {self.label:<22} af={fmt_pct(r.af_overall)}  "
            f"atk={fmt_pct(r.atk_overall)}  drop={fmt_pct(self.drop)} "
            f"(abs {fmt_pct(self.drop_abs)})"
        )


@dataclass
class FigureResult:
    """All series of one paper figure, plus context."""

    figure_id: str
    title: str
    series: List[FigureSeries] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, label: str, result: AbResult) -> FigureSeries:
        entry = FigureSeries(label=label, result=result)
        self.series.append(entry)
        return entry

    def get(self, label: str) -> FigureSeries:
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(f"no series labelled {label!r} in {self.figure_id}")

    def format(self) -> str:
        lines = [f"{self.figure_id}: {self.title}"]
        lines.extend(entry.row() for entry in self.series)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)

    def sketch(self) -> str:
        """Sparkline rendering of every series' af/atk reception over time."""
        from repro.analysis.textplot import series_table

        rows = []
        bin_width = 5.0
        for entry in self.series:
            bin_width = entry.result.config.bin_width
            rows.append((f"{entry.label} af ", entry.result.af_bin_rates))
            rows.append((f"{entry.label} atk", entry.result.atk_bin_rates))
        return f"{self.figure_id}: {self.title}\n" + series_table(
            rows, bin_width=bin_width
        )

    def bin_table(self) -> str:
        """The per-bin reception-rate series (the actual figure lines)."""
        lines = [f"{self.figure_id} per-bin reception rates"]
        for entry in self.series:
            af = entry.result.af_bin_rates
            atk = entry.result.atk_bin_rates
            af_txt = " ".join("  ---" if v is None else f"{v:5.2f}" for v in af)
            atk_txt = " ".join("  ---" if v is None else f"{v:5.2f}" for v in atk)
            lines.append(f"  {entry.label} [af ]: {af_txt}")
            lines.append(f"  {entry.label} [atk]: {atk_txt}")
        return "\n".join(lines)


def cumulative_table(
    figure_id: str, series: Sequence[FigureSeries], *, bin_width: float
) -> str:
    """Fig 8 / Fig 10 style: accumulated drop rate over time per scenario."""
    lines = [f"{figure_id}: accumulated drop rate over time (bin={bin_width:.0f}s)"]
    for entry in series:
        drops = entry.result.cumulative_drops()
        txt = " ".join("  ---" if v is None else f"{v:5.2f}" for v in drops)
        lines.append(f"  {entry.label:<22} {txt}")
    return "\n".join(lines)
