"""Fig 9 — effectiveness of the *intra-area blockage attack*.

Panels mirror Fig 7 with the CBF flooding workload:

* (a) attack range wN/mN/mL with DSRC — paper λ: mN 38.5 %, mL weaker
* (b) attack range with C-V2X         — paper λ: mN 35.8 %
* (c) LocTE TTL 20/10/5 s (mN)        — paper λ: 38.5 / 38.2 / 37.9 % (flat)
* (d) inter-vehicle space sweep       — paper λ ≈ 38 % (flat)
* (e) road directions 1 vs 2          — paper λ: 38.5 / 38 %

plus the §IV-A text studies: the 500 m optimum, and blockage by source
location relative to the *fully covered area* (62.8 % inside vs 37.2 %
outside for a 500 m attacker against 486 m vehicles).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures.fig7 import AbRunner
from repro.experiments.reporting import FigureResult
from repro.experiments.runner import run_ab
from repro.radio.technology import CV2X, DSRC, RadioTechnology, RangeClass

RANGE_LABELS = (
    ("wN", RangeClass.NLOS_WORST),
    ("mN", RangeClass.NLOS_MEDIAN),
    ("mL", RangeClass.LOS_MEDIAN),
)


def _base(
    technology: RadioTechnology, duration: float, seed: int
) -> ExperimentConfig:
    return ExperimentConfig.intra_area_default(
        technology=technology, duration=duration, seed=seed
    )


def _sweep_ranges(
    figure_id: str,
    technology: RadioTechnology,
    *,
    runs: int,
    duration: float,
    processes: int,
    seed: int,
    runner: AbRunner = run_ab,
) -> FigureResult:
    result = FigureResult(
        figure_id=figure_id,
        title=f"intra-area attack vs attack range ({technology.name})",
    )
    base = _base(technology, duration, seed)
    for label, range_class in RANGE_LABELS:
        config = base.with_(
            attack=dataclasses.replace(
                base.attack, attack_range=technology.range_for(range_class)
            ),
            label=f"{technology.name}-{label}",
        )
        result.add(label, runner(config, runs=runs, processes=processes))
    return result


def fig9a(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """Attack ranges with DSRC."""
    return _sweep_ranges(
        "Fig9a",
        DSRC,
        runs=runs,
        duration=duration,
        processes=processes,
        seed=seed,
        runner=runner,
    )


def fig9b(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """Attack ranges with C-V2X."""
    return _sweep_ranges(
        "Fig9b",
        CV2X,
        runs=runs,
        duration=duration,
        processes=processes,
        seed=seed,
        runner=runner,
    )


def fig9c(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """LocTE TTL sweep — CBF does not consult the LocT, so λ stays flat."""
    result = FigureResult(
        figure_id="Fig9c", title="intra-area attack vs LocTE TTL (DSRC, mN)"
    )
    base = _base(DSRC, duration, seed)
    for ttl in (20.0, 10.0, 5.0):
        config = base.with_(
            geonet=dataclasses.replace(base.geonet, loct_ttl=ttl),
            label=f"ttl{ttl:.0f}",
        )
        result.add(f"ttl={ttl:.0f}s", runner(config, runs=runs, processes=processes))
    return result


def fig9d(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """Inter-vehicle space sweep (DSRC, median-NLoS attacker)."""
    result = FigureResult(
        figure_id="Fig9d", title="intra-area attack vs inter-vehicle space (DSRC, mN)"
    )
    base = _base(DSRC, duration, seed)
    for spacing in (30.0, 100.0, 300.0):
        config = base.with_(
            road=dataclasses.replace(base.road, inter_vehicle_space=spacing),
            label=f"i{spacing:.0f}",
        )
        result.add(f"i={spacing:.0f}m", runner(config, runs=runs, processes=processes))
    return result


def fig9e(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """Single- vs two-direction road (DSRC, median-NLoS attacker)."""
    result = FigureResult(
        figure_id="Fig9e", title="intra-area attack vs road directions (DSRC, mN)"
    )
    base = _base(DSRC, duration, seed)
    for directions in (1, 2):
        config = base.with_(
            road=dataclasses.replace(base.road, directions=directions),
            label=f"dir{directions}",
        )
        result.add(
            f"{directions} direction(s)",
            runner(config, runs=runs, processes=processes),
        )
    return result


def attack_range_tuning(
    *,
    ranges=(400.0, 450.0, 500.0, 550.0, 600.0, 700.0),
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """§IV-A text: tune the attack range around the 500 m optimum."""
    result = FigureResult(
        figure_id="Fig9-tuning", title="intra-area attack range tuning (DSRC)"
    )
    base = _base(DSRC, duration, seed)
    for attack_range in ranges:
        config = base.with_(
            attack=dataclasses.replace(base.attack, attack_range=attack_range),
            label=f"r{attack_range:.0f}",
        )
        result.add(
            f"range={attack_range:.0f}m",
            runner(config, runs=runs, processes=processes),
        )
    return result


@dataclass
class SourceLocationStudy:
    """§IV-A text: blockage split by source location (fully covered area)."""

    attack_range: float
    fully_covered_interval: Optional[tuple]
    inside_blockage: Optional[float]
    outside_blockage: Optional[float]
    inside_packets: int
    outside_packets: int

    def format(self) -> str:
        fca = (
            f"[{self.fully_covered_interval[0]:.0f}, "
            f"{self.fully_covered_interval[1]:.0f}]m"
            if self.fully_covered_interval
            else "(empty)"
        )
        def pct(v):
            return f"{v:.1%}" if v is not None else "n/a"

        return (
            f"source-location study (attack range {self.attack_range:.0f}m, "
            f"fully covered area {fca}):\n"
            f"  inside  FCA: blockage {pct(self.inside_blockage)} "
            f"({self.inside_packets} packets)\n"
            f"  outside FCA: blockage {pct(self.outside_blockage)} "
            f"({self.outside_packets} packets)"
        )


def source_location_study(
    *,
    attack_range: float = 500.0,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> SourceLocationStudy:
    """Compare blockage for sources inside vs outside the fully covered area.

    Outcomes of the seed-paired A and B runs are matched by generation order
    (the workload is identical by construction), so blockage is computed
    packet-by-packet.  Because the fully covered area is only ~28 m of a
    4 km road, a second run restricts packet sources to that interval so the
    "inside" estimate has samples (uniform source selection would land
    there a couple of times per hundred packets at best).
    """
    base = _base(DSRC, duration, seed)
    config = base.with_(
        attack=dataclasses.replace(base.attack, attack_range=attack_range),
        label=f"src-loc-{attack_range:.0f}",
    )
    inside_drops: List[float] = []
    outside_drops: List[float] = []

    def paired_drops(ab_result):
        for af_run, atk_run in zip(ab_result.af_runs, ab_result.atk_runs):
            for af_out, atk_out in zip(af_run.outcomes, atk_run.outcomes):
                drop = (
                    (af_out.success - atk_out.success) / af_out.success
                    if af_out.success > 0
                    else 0.0
                )
                yield af_out.in_fully_covered_area, drop

    ab = runner(config, runs=runs, processes=processes)
    for inside, drop in paired_drops(ab):
        (inside_drops if inside else outside_drops).append(drop)

    surplus = attack_range - config.vehicle_range
    if surplus > 0:
        fca_config = config.with_(
            workload=dataclasses.replace(
                config.workload,
                source_xmin=config.attacker_x - surplus,
                source_xmax=config.attacker_x + surplus,
            ),
            label=f"src-loc-fca-{attack_range:.0f}",
        )
        fca_ab = runner(fca_config, runs=runs, processes=processes)
        for inside, drop in paired_drops(fca_ab):
            if inside:
                inside_drops.append(drop)
    world_cfg = config
    from repro.core.vulnerability import VulnerabilityModel

    model = VulnerabilityModel(
        attacker_x=world_cfg.attacker_x,
        attack_range=attack_range,
        vehicle_range=world_cfg.vehicle_range,
        road_length=world_cfg.road.length,
    )
    return SourceLocationStudy(
        attack_range=attack_range,
        fully_covered_interval=model.fully_covered_interval(),
        inside_blockage=(
            sum(inside_drops) / len(inside_drops) if inside_drops else None
        ),
        outside_blockage=(
            sum(outside_drops) / len(outside_drops) if outside_drops else None
        ),
        inside_packets=len(inside_drops),
        outside_packets=len(outside_drops),
    )


def figure9(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    panels: Optional[str] = None,
    runner: AbRunner = run_ab,
) -> Dict[str, FigureResult]:
    """Run all (or selected) panels; returns {panel: FigureResult}."""
    drivers = {"a": fig9a, "b": fig9b, "c": fig9c, "d": fig9d, "e": fig9e}
    wanted = panels or "abcde"
    return {
        panel: drivers[panel](
            runs=runs,
            duration=duration,
            processes=processes,
            seed=seed,
            runner=runner,
        )
        for panel in wanted
    }
