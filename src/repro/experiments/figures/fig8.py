"""Fig 8 — accumulated inter-area interception rate over time (DSRC).

The paper overlays the cumulative γ of every DSRC scenario from Fig 7:
``mL_dflt``, ``mN_dflt``, ``wN_dflt``, ``wN_ttl10``, ``wN_ttl5``,
``wN_i100``, ``wN_i300`` and ``wN_2dir`` (names are
"attack-range_changed-parameter"; *dflt* is the default setting).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures.fig7 import AbRunner
from repro.experiments.reporting import FigureResult, cumulative_table
from repro.experiments.runner import run_ab
from repro.radio.technology import DSRC


def _scenarios(duration: float, seed: int) -> Dict[str, ExperimentConfig]:
    base = ExperimentConfig.inter_area_default(duration=duration, seed=seed)
    wN = DSRC.nlos_worst_m
    return {
        "mL_dflt": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=DSRC.los_median_m)
        ),
        "mN_dflt": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=DSRC.nlos_median_m)
        ),
        "wN_dflt": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=wN)
        ),
        "wN_ttl10": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=wN),
            geonet=dataclasses.replace(base.geonet, loct_ttl=10.0),
        ),
        "wN_ttl5": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=wN),
            geonet=dataclasses.replace(base.geonet, loct_ttl=5.0),
        ),
        "wN_i100": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=wN),
            road=dataclasses.replace(base.road, inter_vehicle_space=100.0),
        ),
        "wN_i300": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=wN),
            road=dataclasses.replace(base.road, inter_vehicle_space=300.0),
        ),
        "wN_2dir": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=wN),
            road=dataclasses.replace(base.road, directions=2),
        ),
    }


def figure8(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """Cumulative interception rates for all DSRC inter-area scenarios."""
    result = FigureResult(
        figure_id="Fig8",
        title="accumulated inter-area interception rate over time (DSRC)",
    )
    for label, config in _scenarios(duration, seed).items():
        result.add(
            label,
            runner(config.with_(label=label), runs=runs, processes=processes),
        )
    result.notes.append(
        cumulative_table("Fig8", result.series, bin_width=5.0)
    )
    return result
