"""Fig 10 — accumulated intra-area blockage rate over time (DSRC).

Overlays the cumulative λ of the DSRC intra-area scenarios: attack ranges
wN/mN/mL at default settings, plus the mN attacker under TTL, density and
direction changes.  The paper's takeaway: "The attack coverage is the only
factor impacting the attack effectiveness."
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures.fig7 import AbRunner
from repro.experiments.reporting import FigureResult, cumulative_table
from repro.experiments.runner import run_ab
from repro.radio.technology import DSRC


def _scenarios(duration: float, seed: int) -> Dict[str, ExperimentConfig]:
    base = ExperimentConfig.intra_area_default(duration=duration, seed=seed)
    mN = DSRC.nlos_median_m
    return {
        "wN_dflt": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=DSRC.nlos_worst_m)
        ),
        "mN_dflt": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=mN)
        ),
        "mL_dflt": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=DSRC.los_median_m)
        ),
        "mN_ttl5": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=mN),
            geonet=dataclasses.replace(base.geonet, loct_ttl=5.0),
        ),
        "mN_i100": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=mN),
            road=dataclasses.replace(base.road, inter_vehicle_space=100.0),
        ),
        "mN_i300": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=mN),
            road=dataclasses.replace(base.road, inter_vehicle_space=300.0),
        ),
        "mN_2dir": base.with_(
            attack=dataclasses.replace(base.attack, attack_range=mN),
            road=dataclasses.replace(base.road, directions=2),
        ),
    }


def figure10(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """Cumulative blockage rates for all DSRC intra-area scenarios."""
    result = FigureResult(
        figure_id="Fig10",
        title="accumulated intra-area blockage rate over time (DSRC)",
    )
    for label, config in _scenarios(duration, seed).items():
        result.add(
            label,
            runner(config.with_(label=label), runs=runs, processes=processes),
        )
    result.notes.append(
        cumulative_table("Fig10", result.series, bin_width=5.0)
    )
    return result
