"""Fig 13 — speed profiles in the road-safety curve scenario.

Thin figure-facing wrapper around :mod:`repro.experiments.safety`.  The
curve scenario has its own natural duration (both vehicles have passed the
apex well within 40 s), so the global ``--duration`` flag does not apply —
the campaign orchestrator keys this target on the constant below instead.
"""

from __future__ import annotations

from repro.experiments.safety import SafetyComparison, compare_safety

#: Simulated seconds of the curve scenario (not the global --duration).
DEFAULT_DURATION = 40.0

__all__ = ["DEFAULT_DURATION", "SafetyComparison", "fig13"]


def fig13(*, seed: int = 1, duration: float = DEFAULT_DURATION) -> SafetyComparison:
    """The paired curve-scenario runs (13a: V1 profile, 13b: V2 profile)."""
    return compare_safety(seed=seed, duration=duration)
