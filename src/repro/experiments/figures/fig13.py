"""Fig 13 — speed profiles in the road-safety curve scenario.

Thin figure-facing wrapper around :mod:`repro.experiments.safety`.
"""

from __future__ import annotations

from repro.experiments.safety import SafetyComparison, compare_safety


def fig13(*, seed: int = 1, duration: float = 40.0) -> SafetyComparison:
    """The paired curve-scenario runs (13a: V1 profile, 13b: V2 profile)."""
    return compare_safety(seed=seed, duration=duration)
