"""Fig 12 — vehicles on road over time under the hazard scenario.

Thin figure-facing wrappers around :mod:`repro.experiments.impact`.
"""

from __future__ import annotations

from repro.experiments.impact import ImpactComparison, compare_impact


def fig12a(
    *, duration: float = 200.0, seed: int = 1, spawn_gap: float = 55.0
) -> ImpactComparison:
    """Case 1: GF hazard notification vs the inter-area interception attack."""
    return compare_impact("1", duration=duration, seed=seed, spawn_gap=spawn_gap)


def fig12b(
    *, duration: float = 200.0, seed: int = 1, spawn_gap: float = 55.0
) -> ImpactComparison:
    """Case 2: CBF hazard notification vs the intra-area blockage attack."""
    return compare_impact("2", duration=duration, seed=seed, spawn_gap=spawn_gap)
