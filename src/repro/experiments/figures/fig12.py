"""Fig 12 — vehicles on road over time under the hazard scenario.

Thin figure-facing wrappers around :mod:`repro.experiments.impact`.  The
campaign orchestrator treats these panels as whole-run targets: the
rendered comparison is stored under a key hashed from the parameters below
(see :mod:`repro.experiments.campaign`), so the defaults are module
constants rather than magic numbers.
"""

from __future__ import annotations

from repro.experiments.impact import ImpactComparison, compare_impact

#: Entrance spawn gap (metres) — ~1 vehicle/s/direction, matching the
#: vehicle counts the paper's Fig 12 implies.
DEFAULT_SPAWN_GAP = 55.0

__all__ = ["DEFAULT_SPAWN_GAP", "ImpactComparison", "fig12a", "fig12b"]


def fig12a(
    *, duration: float = 200.0, seed: int = 1, spawn_gap: float = DEFAULT_SPAWN_GAP
) -> ImpactComparison:
    """Case 1: GF hazard notification vs the inter-area interception attack."""
    return compare_impact("1", duration=duration, seed=seed, spawn_gap=spawn_gap)


def fig12b(
    *, duration: float = 200.0, seed: int = 1, spawn_gap: float = DEFAULT_SPAWN_GAP
) -> ImpactComparison:
    """Case 2: CBF hazard notification vs the intra-area blockage attack."""
    return compare_impact("2", duration=duration, seed=seed, spawn_gap=spawn_gap)
