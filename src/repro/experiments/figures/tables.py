"""Tables I and II — the configuration constants the paper evaluates with.

These are config tables, not measurements; the "reproduction" is asserting
that the library's defaults are exactly the published values and rendering
them in the paper's layout.
"""

from __future__ import annotations

from repro.radio.technology import CV2X, DSRC
from repro.traffic.idm import IdmParameters


def table1() -> str:
    """Table I: parameters used for IDM."""
    params = IdmParameters()
    rows = [
        ("Desired velocity", f"{params.desired_velocity:.0f} m/s"),
        ("Safe time headway", f"{params.safe_time_headway:.1f} s"),
        ("Maximum acceleration", f"{params.max_acceleration:.1f} m/s^2"),
        ("Comfortable deceleration", f"{params.comfortable_deceleration:.1f} m/s^2"),
        ("Acceleration exponent", f"{params.acceleration_exponent:.0f}"),
        ("Minimum distance", f"{params.minimum_distance:.0f} m"),
    ]
    lines = ["Table I: Parameters used for IDM."]
    lines.append(f"  {'Parameter':<26} Value")
    lines.extend(f"  {name:<26} {value}" for name, value in rows)
    return "\n".join(lines)


def table2() -> str:
    """Table II: communication ranges used for DSRC and C-V2X."""
    rows = [
        ("LoS (median)", DSRC.los_median_m, CV2X.los_median_m),
        ("NLoS (median)", DSRC.nlos_median_m, CV2X.nlos_median_m),
        ("NLoS (worst)", DSRC.nlos_worst_m, CV2X.nlos_worst_m),
    ]
    lines = ["Table II: Communication ranges used for DSRC and C-V2X."]
    lines.append(f"  {'Comm. range':<16} {'DSRC':>8} {'C-V2X':>8}")
    lines.extend(
        f"  {name:<16} {dsrc:7,.0f}m {cv2x:7,.0f}m" for name, dsrc, cv2x in rows
    )
    return "\n".join(lines)
