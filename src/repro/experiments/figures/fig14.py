"""Fig 14 — mitigation effectiveness (paper §V).

* (a) GF plausibility check (threshold = DSRC NLoS-median, 486 m) against
  wN/mN/mL inter-area attackers, plus the attack-free-with-check series:
  the paper measures +53.7/+61.6/+53.4 points of reception and 94.3 %
  attack-free reception with the check (vs ~54 % without).
* (b) CBF RHL-drop check (threshold 3) against wN/mN intra-area attackers:
  the check restores attack-free reception.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures.fig7 import AbRunner
from repro.experiments.runner import AbResult, run_ab
from repro.radio.technology import DSRC, RangeClass


@dataclass
class MitigationSeries:
    """One attack range: unmitigated vs mitigated A/B results."""

    label: str
    unmitigated: AbResult
    mitigated: AbResult

    @property
    def improvement(self) -> float:
        """Reception-rate points recovered by the mitigation (attacked runs)."""
        return self.mitigated.atk_overall - self.unmitigated.atk_overall

    def row(self) -> str:
        return (
            f"  {self.label:<10} atk={self.unmitigated.atk_overall:6.1%} -> "
            f"mitigated={self.mitigated.atk_overall:6.1%} "
            f"(+{self.improvement:.1%});  af={self.unmitigated.af_overall:6.1%} -> "
            f"af+check={self.mitigated.af_overall:6.1%}"
        )


@dataclass
class MitigationFigure:
    """All series of Fig 14a or Fig 14b."""

    figure_id: str
    title: str
    series: List[MitigationSeries]
    notes: List[str]

    def get(self, label: str) -> MitigationSeries:
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(label)

    def format(self) -> str:
        lines = [f"{self.figure_id}: {self.title}"]
        lines.extend(entry.row() for entry in self.series)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def fig14a(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    threshold: Optional[float] = None,
    runner: AbRunner = run_ab,
) -> MitigationFigure:
    """GF plausibility check vs the inter-area attack (DSRC)."""
    base = ExperimentConfig.inter_area_default(duration=duration, seed=seed)
    check_threshold = DSRC.nlos_median_m if threshold is None else threshold
    mitigated_geonet = dataclasses.replace(
        base.geonet, plausibility_check=True, plausibility_threshold=check_threshold
    )
    series: List[MitigationSeries] = []
    for label, range_class in (
        ("wN", RangeClass.NLOS_WORST),
        ("mN", RangeClass.NLOS_MEDIAN),
        ("mL", RangeClass.LOS_MEDIAN),
    ):
        attack = dataclasses.replace(
            base.attack, attack_range=DSRC.range_for(range_class)
        )
        unmitigated = runner(
            base.with_(attack=attack, label=f"{label}-plain"),
            runs=runs,
            processes=processes,
        )
        mitigated = runner(
            base.with_(
                attack=attack, geonet=mitigated_geonet, label=f"{label}-check"
            ),
            runs=runs,
            processes=processes,
        )
        series.append(
            MitigationSeries(label=label, unmitigated=unmitigated, mitigated=mitigated)
        )
    af_with_check = series[0].mitigated.af_overall
    af_plain = series[0].unmitigated.af_overall
    notes = [
        f"attack-free reception without check: {af_plain:.1%}; "
        f"with check: {af_with_check:.1%} "
        f"(paper: ~54% -> 94.3%)"
    ]
    return MitigationFigure(
        figure_id="Fig14a",
        title="GF plausibility check vs inter-area interception (DSRC)",
        series=series,
        notes=notes,
    )


def fig14b(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    threshold: int = 3,
    runner: AbRunner = run_ab,
) -> MitigationFigure:
    """CBF RHL-drop check vs the intra-area attack (DSRC)."""
    base = ExperimentConfig.intra_area_default(duration=duration, seed=seed)
    mitigated_geonet = dataclasses.replace(
        base.geonet, rhl_check=True, rhl_drop_threshold=threshold
    )
    series: List[MitigationSeries] = []
    for label, range_class in (
        ("wN", RangeClass.NLOS_WORST),
        ("mN", RangeClass.NLOS_MEDIAN),
    ):
        attack = dataclasses.replace(
            base.attack, attack_range=DSRC.range_for(range_class)
        )
        unmitigated = runner(
            base.with_(attack=attack, label=f"{label}-plain"),
            runs=runs,
            processes=processes,
        )
        mitigated = runner(
            base.with_(
                attack=attack, geonet=mitigated_geonet, label=f"{label}-rhl"
            ),
            runs=runs,
            processes=processes,
        )
        series.append(
            MitigationSeries(label=label, unmitigated=unmitigated, mitigated=mitigated)
        )
    notes = ["paper: the RHL check restores attack-free reception rates"]
    return MitigationFigure(
        figure_id="Fig14b",
        title="CBF RHL-drop check vs intra-area blockage (DSRC)",
        series=series,
        notes=notes,
    )
