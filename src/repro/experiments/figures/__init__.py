"""One driver module per paper artefact (tables, figures, text studies).

Every driver takes ``runs`` / ``duration`` / ``processes`` knobs so the same
code scales from a quick laptop check to the paper's full 100-run, 200 s
configuration, and returns a structured result whose ``format()`` output
matches the rows/series the paper reports.
"""

from repro.experiments.figures import (  # noqa: F401
    fig7,
    fig8,
    fig9,
    fig10,
    fig12,
    fig13,
    fig14,
    tables,
)

__all__ = ["fig7", "fig8", "fig9", "fig10", "fig12", "fig13", "fig14", "tables"]
