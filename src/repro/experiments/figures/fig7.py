"""Fig 7 — effectiveness of the *inter-area interception attack*.

Five panels sweep one parameter each against the paper's defaults
(single-direction two-lane 4 km road, 30 m spacing, 20 s TTL, DSRC):

* (a) attack range wN/mN/mL with DSRC   — paper γ: 46.8 / ~98 / 99.9 %
* (b) attack range with C-V2X           — paper γ: 35.2 / ~98 / 100 %
* (c) LocTE TTL 20/10/5 s (wN), + mN@5s — paper γ: 46.8 / 46.2 / 37.4 / 97.9 %
* (d) inter-vehicle space 30/100/300 m  — paper γ: 46.8 / 47.8 / 44.7 %
* (e) road directions 1 vs 2            — paper γ: 46.8 / 58.3 %
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import FigureResult
from repro.experiments.runner import AbResult, run_ab

#: A runner executes one A/B setting.  The default is the in-memory
#: :func:`~repro.experiments.runner.run_ab`; the campaign orchestrator
#: injects a store-backed runner that assembles precomputed
#: :class:`~repro.experiments.runner.RunResult`\ s instead of simulating.
AbRunner = Callable[..., AbResult]
from repro.radio.technology import DSRC, RadioTechnology, RangeClass

RANGE_LABELS = (
    ("wN", RangeClass.NLOS_WORST),
    ("mN", RangeClass.NLOS_MEDIAN),
    ("mL", RangeClass.LOS_MEDIAN),
)


def _base(
    technology: RadioTechnology, duration: float, seed: int
) -> ExperimentConfig:
    return ExperimentConfig.inter_area_default(
        technology=technology, duration=duration, seed=seed
    )


def _sweep_ranges(
    figure_id: str,
    technology: RadioTechnology,
    *,
    runs: int,
    duration: float,
    processes: int,
    seed: int,
    runner: AbRunner = run_ab,
) -> FigureResult:
    result = FigureResult(
        figure_id=figure_id,
        title=f"inter-area attack vs attack range ({technology.name})",
    )
    base = _base(technology, duration, seed)
    for label, range_class in RANGE_LABELS:
        config = base.with_(
            attack=dataclasses.replace(
                base.attack, attack_range=technology.range_for(range_class)
            ),
            label=f"{technology.name}-{label}",
        )
        result.add(label, runner(config, runs=runs, processes=processes))
    return result


def fig7a(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """Attack ranges with DSRC."""
    return _sweep_ranges(
        "Fig7a",
        DSRC,
        runs=runs,
        duration=duration,
        processes=processes,
        seed=seed,
        runner=runner,
    )


def fig7b(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """Attack ranges with C-V2X."""
    from repro.radio.technology import CV2X

    return _sweep_ranges(
        "Fig7b",
        CV2X,
        runs=runs,
        duration=duration,
        processes=processes,
        seed=seed,
        runner=runner,
    )


def fig7c(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """LocTE TTL sweep (DSRC, worst-NLoS attacker, plus mN @ TTL 5 s)."""
    result = FigureResult(
        figure_id="Fig7c", title="inter-area attack vs LocTE TTL (DSRC, wN)"
    )
    base = _base(DSRC, duration, seed)
    for ttl in (20.0, 10.0, 5.0):
        config = base.with_(
            geonet=dataclasses.replace(base.geonet, loct_ttl=ttl),
            label=f"ttl{ttl:.0f}",
        )
        result.add(f"ttl={ttl:.0f}s", runner(config, runs=runs, processes=processes))
    # The paper's extra series: a median-NLoS attacker still intercepts
    # almost everything even at the shortest TTL.
    config = base.with_(
        geonet=dataclasses.replace(base.geonet, loct_ttl=5.0),
        attack=dataclasses.replace(base.attack, attack_range=DSRC.nlos_median_m),
        label="ttl5-mN",
    )
    result.add("ttl=5s,mN", runner(config, runs=runs, processes=processes))
    return result


def fig7d(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """Inter-vehicle space sweep (DSRC, worst-NLoS attacker)."""
    result = FigureResult(
        figure_id="Fig7d", title="inter-area attack vs inter-vehicle space (DSRC, wN)"
    )
    base = _base(DSRC, duration, seed)
    for spacing in (30.0, 100.0, 300.0):
        config = base.with_(
            road=dataclasses.replace(base.road, inter_vehicle_space=spacing),
            label=f"i{spacing:.0f}",
        )
        result.add(f"i={spacing:.0f}m", runner(config, runs=runs, processes=processes))
    return result


def fig7e(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> FigureResult:
    """Single- vs two-direction road (DSRC, worst-NLoS attacker)."""
    result = FigureResult(
        figure_id="Fig7e", title="inter-area attack vs road directions (DSRC, wN)"
    )
    base = _base(DSRC, duration, seed)
    for directions in (1, 2):
        config = base.with_(
            road=dataclasses.replace(base.road, directions=directions),
            label=f"dir{directions}",
        )
        result.add(
            f"{directions} direction(s)",
            runner(config, runs=runs, processes=processes),
        )
    return result


def figure7(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    panels: Optional[str] = None,
    runner: AbRunner = run_ab,
) -> dict:
    """Run all (or selected) panels; returns {panel: FigureResult}."""
    drivers = {"a": fig7a, "b": fig7b, "c": fig7c, "d": fig7d, "e": fig7e}
    wanted = panels or "abcde"
    return {
        panel: drivers[panel](
            runs=runs,
            duration=duration,
            processes=processes,
            seed=seed,
            runner=runner,
        )
        for panel in wanted
    }
