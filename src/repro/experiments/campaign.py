"""The fault-tolerant campaign orchestrator.

A *campaign* regenerates a list of paper targets (``fig7a`` … ``overhead``)
on top of the persistent :mod:`~repro.experiments.store`:

1. **Plan** — every target is expanded into its individual simulation runs
   (:class:`RunSpec`\\ s), by replaying the figure's own scenario
   enumeration with a recording runner.  A/B figure targets expand to one
   spec per ``(config, attacked, seed)``; whole-run targets (tables,
   Fig 12/13, overhead) expand to a single spec.
2. **Execute** — specs already in the store are skipped (``resume``); the
   rest fan out over a ``multiprocessing`` pool via ``imap_unordered``.
   Each worker enforces a per-run timeout with ``SIGALRM`` and converts any
   exception into a structured error result, a parent-side watchdog
   terminates and rebuilds the pool when a worker dies or hangs without
   reporting, and every failing run is retried a bounded number of times
   before being recorded as a ``failure`` in the store — one dead worker
   never kills the campaign.  Progress and an ETA go to stderr after every
   completed run.
3. **Assemble** — each figure function runs again with a *store-backed*
   runner that feeds it the precomputed
   :class:`~repro.experiments.runner.RunResult`\\ s, so the rendered output
   is identical to a fresh in-memory run at the same seeds.

The checked-in ``run_remaining*.sh`` restart scripts this replaces
re-executed every already-finished run after a crash; with the store, a
re-issued campaign costs only the missing runs.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    fig7,
    fig8,
    fig9,
    fig10,
    fig12,
    fig13,
    fig14,
    tables,
)
from repro.experiments.detect import detect_sweep
from repro.experiments.impairments import fault_sweep
from repro.experiments.metrics import BinnedRates
from repro.experiments.urban import urban_sweep
from repro.experiments.runner import (
    AbResult,
    RunResult,
    alarm_deadline,
    expand_jobs,
    run_single,
)
from repro.experiments.runner import RunTimeout  # noqa: F401 - re-export;
# historic home of the class (pre-service revisions raised it from here).
from repro.experiments.store import (
    ResultStore,
    ResultStoreBase,
    RunKey,
    config_hash,
)


class CampaignError(RuntimeError):
    """Raised on invalid campaign requests (unknown target, bad params)."""


class MissingRunError(CampaignError):
    """A figure asked the store for a run that is absent or failed."""

    def __init__(self, key: RunKey):
        self.key = key
        super().__init__(
            f"no stored result for {key.target} config={key.config_hash} "
            f"seed={key.seed} {'atk' if key.attacked else 'af'}"
        )


# ----------------------------------------------------------------------
# target registry
# ----------------------------------------------------------------------
#: A/B figure targets: name -> builder accepting (runs, duration,
#: processes, seed, runner) and returning an object with ``.format()``.
AB_TARGETS: Dict[str, Callable[..., Any]] = {
    "fig7a": fig7.fig7a,
    "fig7b": fig7.fig7b,
    "fig7c": fig7.fig7c,
    "fig7d": fig7.fig7d,
    "fig7e": fig7.fig7e,
    "fig8": fig8.figure8,
    "fig9a": fig9.fig9a,
    "fig9b": fig9.fig9b,
    "fig9c": fig9.fig9c,
    "fig9d": fig9.fig9d,
    "fig9e": fig9.fig9e,
    "fig9-tuning": fig9.attack_range_tuning,
    "fig9-source-location": fig9.source_location_study,
    "fig10": fig10.figure10,
    "fig14a": fig14.fig14a,
    "fig14b": fig14.fig14b,
    "faults": fault_sweep,
    "urban": urban_sweep,
    "detect": detect_sweep,
}


def _overhead_text(params: Dict[str, Any]) -> str:
    from repro.experiments.overhead import format_analysis
    from repro.experiments.world import World

    config = ExperimentConfig.inter_area_default(
        duration=params["duration"], seed=params["seed"]
    )
    world = World(config, attacked=False, seed=params["seed"])
    world.run()
    return format_analysis(world.channel.stats, duration=params["duration"])


#: Whole-run targets: name -> (param builder, renderer).  The param dict is
#: both the worker's input and the content hashed into the store key.
TEXT_TARGETS: Dict[
    str,
    Tuple[Callable[..., Dict[str, Any]], Callable[[Dict[str, Any]], str]],
] = {
    "table1": (lambda runs, duration, seed: {}, lambda p: tables.table1()),
    "table2": (lambda runs, duration, seed: {}, lambda p: tables.table2()),
    "fig12a": (
        lambda runs, duration, seed: {
            "duration": duration,
            "seed": seed,
            "spawn_gap": fig12.DEFAULT_SPAWN_GAP,
        },
        lambda p: fig12.fig12a(
            duration=p["duration"], seed=p["seed"], spawn_gap=p["spawn_gap"]
        ).format(),
    ),
    "fig12b": (
        lambda runs, duration, seed: {
            "duration": duration,
            "seed": seed,
            "spawn_gap": fig12.DEFAULT_SPAWN_GAP,
        },
        lambda p: fig12.fig12b(
            duration=p["duration"], seed=p["seed"], spawn_gap=p["spawn_gap"]
        ).format(),
    ),
    "fig13": (
        lambda runs, duration, seed: {
            "duration": fig13.DEFAULT_DURATION,
            "seed": seed,
        },
        lambda p: fig13.fig13(seed=p["seed"], duration=p["duration"]).format(),
    ),
    "overhead": (
        lambda runs, duration, seed: {"duration": duration, "seed": seed},
        _overhead_text,
    ),
}

#: Every atomic campaign target, in canonical (run_remaining-superset) order.
CAMPAIGN_TARGETS: List[str] = [
    "table1",
    "table2",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig7d",
    "fig7e",
    "fig8",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "fig9e",
    "fig9-tuning",
    "fig9-source-location",
    "fig10",
    "fig12a",
    "fig12b",
    "fig13",
    "fig14a",
    "fig14b",
    "overhead",
    "faults",
    "urban",
    "detect",
]

#: CLI conveniences: aggregate names expanded to atomic targets.
TARGET_ALIASES: Dict[str, List[str]] = {
    "all": list(CAMPAIGN_TARGETS),
    "fig7": ["fig7a", "fig7b", "fig7c", "fig7d", "fig7e"],
    "fig9": ["fig9a", "fig9b", "fig9c", "fig9d", "fig9e"],
}


def resolve_targets(names: Sequence[str]) -> List[str]:
    """Expand aliases and validate; preserves order, drops duplicates."""
    resolved: List[str] = []
    for name in names:
        expansion = TARGET_ALIASES.get(name, [name])
        for target in expansion:
            if target not in AB_TARGETS and target not in TEXT_TARGETS:
                known = ", ".join(CAMPAIGN_TARGETS + sorted(TARGET_ALIASES))
                raise CampaignError(
                    f"unknown campaign target {name!r} (known: {known})"
                )
            if target not in resolved:
                resolved.append(target)
    return resolved


# ----------------------------------------------------------------------
# run specs / planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One schedulable unit of campaign work."""

    target: str
    kind: str  # "ab" | "text"
    seed: int
    attacked: bool
    config: Optional[ExperimentConfig] = None  # ab specs
    params: Optional[Tuple[Tuple[str, Any], ...]] = None  # text specs

    @property
    def key(self) -> RunKey:
        if self.kind == "ab":
            digest = config_hash(self.config)
        else:
            digest = config_hash(dict(self.params or ()))
        return RunKey(
            target=self.target,
            config_hash=digest,
            seed=self.seed,
            attacked=self.attacked,
        )

    def describe(self) -> str:
        label = ""
        if self.config is not None and self.config.label:
            label = f" {self.config.label}"
        mode = " atk" if self.attacked else " af"
        return f"{self.target}{label} s{self.seed}{mode}"


def _placeholder_ab(config: ExperimentConfig, runs: int) -> AbResult:
    """A structurally-valid empty AbResult for the planning pass."""
    empty = lambda seed, attacked: RunResult(  # noqa: E731
        seed=seed,
        attacked=attacked,
        binned=BinnedRates(bin_width=config.bin_width, rates=[]),
        overall_rate=0.0,
        n_packets=0,
        outcomes=[],
        extras={},
    )
    jobs = expand_jobs(config, runs)
    return AbResult(
        config=config,
        af_runs=[empty(s, False) for _c, atk, s in jobs if not atk],
        atk_runs=[empty(s, True) for _c, atk, s in jobs if atk],
    )


def plan_target(
    target: str, *, runs: int, duration: float, seed: int
) -> List[RunSpec]:
    """The RunSpecs a target needs, in deterministic order."""
    if target in TEXT_TARGETS:
        build_params, _render = TEXT_TARGETS[target]
        params = build_params(runs, duration, seed)
        return [
            RunSpec(
                target=target,
                kind="text",
                seed=seed,
                attacked=False,
                params=tuple(sorted(params.items())),
            )
        ]
    if target not in AB_TARGETS:
        raise CampaignError(f"unknown campaign target {target!r}")
    specs: List[RunSpec] = []

    def recording_runner(
        config: ExperimentConfig, *, runs: int, processes: int = 1
    ) -> AbResult:
        for cfg, attacked, run_seed in expand_jobs(config, runs):
            specs.append(
                RunSpec(
                    target=target,
                    kind="ab",
                    seed=run_seed,
                    attacked=attacked,
                    config=cfg,
                )
            )
        return _placeholder_ab(config, runs)

    AB_TARGETS[target](
        runs=runs, duration=duration, processes=1, seed=seed,
        runner=recording_runner,
    )
    return specs


def plan_campaign(
    targets: Sequence[str], *, runs: int, duration: float, seed: int
) -> List[RunSpec]:
    """Expand targets into deduplicated RunSpecs (first occurrence wins)."""
    seen = set()
    specs: List[RunSpec] = []
    for target in resolve_targets(targets):
        for spec in plan_target(target, runs=runs, duration=duration, seed=seed):
            if spec.key not in seen:
                seen.add(spec.key)
                specs.append(spec)
    return specs


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def execute_spec(spec: RunSpec, checkpoints: Optional[Tuple[Any, float]] = None) -> Any:
    """Execute one spec in the current process.

    Module-level so pool workers resolve it by name — tests may substitute
    it (via fork inheritance) to inject crashes, hangs and counters.

    Id counters are reset first, so the produced record is bit-identical
    whether this runs in a fresh pool process or as the N-th job of a
    long-lived service worker.  (A checkpoint restore reinstates the
    counters *after* the reset, continuing the original process's ids.)

    ``checkpoints`` — an optional ``(store, interval)`` pair.  When given,
    ``ab`` specs execute through
    :func:`~repro.experiments.checkpointing.run_single_resumable`:
    snapshots every ``interval`` simulation seconds, automatic resume from
    the newest valid checkpoint, byte-identical records either way.
    ``text`` specs (cheap renders) never checkpoint.
    """
    from repro.experiments.world import reset_id_counters

    reset_id_counters()
    if spec.kind == "text":
        _params, render = TEXT_TARGETS[spec.target]
        return render(dict(spec.params or ()))
    if checkpoints is not None:
        from repro.experiments.checkpointing import run_single_resumable

        store, interval = checkpoints
        return run_single_resumable(
            spec.config,
            attacked=spec.attacked,
            seed=spec.seed,
            store=store,
            key=spec.key,
            interval=interval,
        )
    return run_single(spec.config, attacked=spec.attacked, seed=spec.seed)


def _pool_worker(payload: Tuple[int, RunSpec, Optional[float]]) -> Tuple[int, str, Any]:
    """Run one spec with crash isolation and an in-process alarm timeout.

    Always returns ``(index, "ok"|"error", payload)`` — any exception (and
    the SIGALRM-driven timeout) is converted into an ``"error"`` result, so
    a Python-level failure never poisons the pool.  A hard crash (worker
    process death) returns nothing; the parent's watchdog handles that.
    """
    index, spec, timeout = payload
    try:
        with alarm_deadline(timeout):
            return (index, "ok", execute_spec(spec))
    except BaseException as exc:  # crash isolation: report, don't raise
        return (index, "error", f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# parent side: fan-out with retry and crash isolation
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    """What a campaign did: counts, failures and wall time."""

    planned: int = 0
    skipped: int = 0
    executed: int = 0
    retried: int = 0
    failed: List[Tuple[RunSpec, str]] = field(default_factory=list)
    wall_time_s: float = 0.0
    outputs: Dict[str, str] = field(default_factory=dict)
    errors: Dict[str, str] = field(default_factory=dict)
    #: target -> coverage note for artefacts assembled from a partial store
    partial_targets: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed and not self.errors

    def summary(self) -> str:
        return (
            f"campaign: {self.planned} runs planned, {self.skipped} skipped "
            f"(already stored), {self.executed} executed, {self.retried} "
            f"retried, {len(self.failed)} failed in {self.wall_time_s:.1f}s"
        )


def _log(stream, message: str) -> None:
    if stream is not None:
        print(f"[campaign] {message}", file=stream, flush=True)


def _store_result(store: ResultStore, spec: RunSpec, result: Any) -> None:
    if spec.kind == "text":
        store.put_text(spec.key, result, params=dict(spec.params or ()))
    else:
        store.put_run(spec.key, result, config=spec.config)


def _execute_specs(
    specs: List[RunSpec],
    *,
    store: ResultStore,
    processes: int,
    timeout: Optional[float],
    retries: int,
    report: CampaignReport,
    log_stream,
) -> None:
    """Fan specs out over a pool; retry bounded; record terminal failures.

    Work proceeds in rounds.  Within a round every still-pending spec is
    submitted through ``imap_unordered``; results are collected with a
    watchdog timeout, so a worker that dies without reporting (segfault,
    ``os._exit``) or hangs past the per-run budget only costs the round —
    the pool is terminated and the unreported specs are retried in the
    next round.  A spec that fails ``retries + 1`` times is recorded as a
    ``failure`` in the store and the campaign moves on.
    """
    max_attempts = retries + 1
    pending: Dict[int, RunSpec] = dict(enumerate(specs))
    attempts: Dict[int, int] = {idx: 0 for idx in pending}
    total_planned = report.planned
    started = time.time()

    def _progress(prefix: str) -> str:
        done = report.executed + report.skipped + len(report.failed)
        elapsed = time.time() - started
        remaining = max(total_planned - done, 0)
        per_run = elapsed / max(report.executed, 1)
        eta = per_run * remaining
        return (
            f"{prefix} [{done}/{total_planned} done, "
            f"{len(report.failed)} failed, elapsed {elapsed:.0f}s, "
            f"eta {eta:.0f}s]"
        )

    def _fail(idx: int, spec: RunSpec, error: str) -> None:
        store.put_failure(spec.key, error)
        report.failed.append((spec, error))
        _log(log_stream, _progress(f"FAILED {spec.describe()}: {error}"))

    while pending:
        batch = sorted(pending.items())
        payloads = [(idx, spec, timeout) for idx, spec in batch]
        # imap_unordered: results arrive as runs finish; maxtasksperchild=1
        # gives every run a fresh process (no leaked state across sims).
        pool = multiprocessing.Pool(
            processes=max(1, min(processes, len(batch))), maxtasksperchild=1
        )
        round_received = 0
        try:
            iterator = pool.imap_unordered(_pool_worker, payloads)
            for _ in range(len(batch)):
                run_started = time.time()
                try:
                    if timeout is not None and timeout > 0:
                        # Grace over the in-worker alarm so the structured
                        # timeout error normally wins; the watchdog only
                        # fires for workers that died or wedged outright.
                        index, status, payload = iterator.next(timeout + 5.0)
                    else:
                        index, status, payload = iterator.next()
                except multiprocessing.TimeoutError:
                    _log(
                        log_stream,
                        "watchdog: no result within budget — terminating "
                        "pool and retrying outstanding runs",
                    )
                    break
                except StopIteration:  # pragma: no cover - defensive
                    break
                round_received += 1
                spec = pending[index]
                if status == "ok":
                    del pending[index]
                    _store_result(store, spec, payload)
                    report.executed += 1
                    _log(
                        log_stream,
                        _progress(
                            f"ok {spec.describe()} "
                            f"({time.time() - run_started:.1f}s)"
                        ),
                    )
                else:
                    attempts[index] += 1
                    if attempts[index] >= max_attempts:
                        del pending[index]
                        _fail(index, spec, payload)
                    else:
                        report.retried += 1
                        _log(
                            log_stream,
                            f"retry {spec.describe()} "
                            f"(attempt {attempts[index]}/{max_attempts}): "
                            f"{payload}",
                        )
        finally:
            pool.terminate()
            pool.join()
        if round_received == len(batch):
            continue  # clean round; loop exits when pending is empty
        # Specs submitted but never reported: a worker died or hung.
        for index, spec in batch:
            if index not in pending:
                continue
            attempts[index] += 1
            if attempts[index] >= max_attempts:
                del pending[index]
                _fail(index, spec, "worker died or timed out without reporting")
            else:
                report.retried += 1
        if pending:
            _log(
                log_stream,
                f"round closed with {len(pending)} runs still pending",
            )


# ----------------------------------------------------------------------
# assembly: figures from precomputed store results
# ----------------------------------------------------------------------
def store_runner(
    store: "ResultStore", target: str, *, partial: bool = False, coverage=None
):
    """An AbRunner that assembles AbResults from stored RunResults.

    With ``partial=True`` missing runs are skipped instead of raising, so
    figures render from whatever fraction of the campaign is stored — the
    streaming-aggregation path behind ``--partial`` and the status view.
    A seed-paired A/B setting only keeps pairs whose *both* sides are
    stored (a lone attacked run would bias the comparison).  ``coverage``
    (a 2-item list) accumulates ``[stored, planned]`` run counts.
    """

    def runner(
        config: ExperimentConfig, *, runs: int, processes: int = 1
    ) -> AbResult:
        by_seed: Dict[int, Dict[bool, Optional[RunResult]]] = {}
        attacks_planned = False
        planned = 0
        for cfg, attacked, seed in expand_jobs(config, runs):
            key = RunKey.for_config(target, cfg, seed=seed, attacked=attacked)
            result = store.get_run(key)
            planned += 1
            attacks_planned = attacks_planned or attacked
            if result is None and not partial:
                raise MissingRunError(key)
            by_seed.setdefault(seed, {})[attacked] = result
        af_runs: List[RunResult] = []
        atk_runs: List[RunResult] = []
        stored = 0
        for seed in sorted(by_seed):
            pair = by_seed[seed]
            stored += sum(1 for r in pair.values() if r is not None)
            complete = pair.get(False) is not None and (
                not attacks_planned or pair.get(True) is not None
            )
            if not complete:
                continue
            af_runs.append(pair[False])
            if attacks_planned:
                atk_runs.append(pair[True])
        if coverage is not None:
            coverage[0] += stored
            coverage[1] += planned
        return AbResult(config=config, af_runs=af_runs, atk_runs=atk_runs)

    return runner


def assemble_target(
    target: str,
    store: "ResultStore",
    *,
    runs: int,
    duration: float,
    seed: int,
    partial: bool = False,
):
    """Render a target's artefact purely from stored results.

    Raises :class:`MissingRunError` when a required run is absent (e.g.
    recorded as failed) — re-issue the campaign with ``--resume`` to fill
    the gaps.  With ``partial=True`` an A/B target renders from the
    stored subset instead and the return value becomes ``(text, note)``
    where ``note`` states the coverage (``"partial: 17/48 runs
    stored"``); a target with *zero* stored runs still raises.
    """
    if target in TEXT_TARGETS:
        spec = plan_target(target, runs=runs, duration=duration, seed=seed)[0]
        text = store.get_text(spec.key)
        if text is None:
            raise MissingRunError(spec.key)
        return (text, "complete") if partial else text
    if target not in AB_TARGETS:
        raise CampaignError(f"unknown campaign target {target!r}")
    coverage = [0, 0]
    artefact = AB_TARGETS[target](
        runs=runs,
        duration=duration,
        processes=1,
        seed=seed,
        runner=store_runner(store, target, partial=partial, coverage=coverage),
    )
    if not partial:
        return artefact.format()
    stored, planned = coverage
    if stored == 0 and planned > 0:
        first = plan_target(target, runs=runs, duration=duration, seed=seed)[0]
        raise MissingRunError(first.key)
    from repro.experiments.reporting import coverage_note

    note = coverage_note(stored, planned)
    text = artefact.format()
    if stored < planned:
        text = f"{text}\n  note: {note}"
    return text, note


# ----------------------------------------------------------------------
# the campaign driver
# ----------------------------------------------------------------------
def run_campaign(
    targets: Sequence[str],
    *,
    store: Optional[ResultStoreBase] = None,
    runs: int = 3,
    duration: float = 200.0,
    seed: int = 1,
    processes: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    resume: bool = False,
    partial: bool = False,
    log_stream=sys.stderr,
) -> CampaignReport:
    """Plan, execute and assemble a full campaign.

    With ``resume=True`` runs already in the store are skipped; failures
    recorded by earlier campaigns are always retried.  The report carries
    the rendered artefact of every target whose runs all succeeded
    (``outputs``) and an error note for the rest (``errors``).  With
    ``partial=True`` a target with missing runs renders from the stored
    subset instead (coverage note in ``partial_targets``) — the same
    streaming-aggregation path the lease scheduler offers.
    """
    if retries < 0:
        raise CampaignError("retries must be >= 0")
    store = store if store is not None else ResultStore()
    started = time.time()
    target_list = resolve_targets(targets)
    specs = plan_campaign(target_list, runs=runs, duration=duration, seed=seed)
    report = CampaignReport(planned=len(specs))

    to_run: List[RunSpec] = []
    for spec in specs:
        if resume and store.has(spec.key):
            report.skipped += 1
        else:
            to_run.append(spec)
    _log(
        log_stream,
        f"{len(specs)} runs planned for {len(target_list)} targets "
        f"({report.skipped} already stored, {len(to_run)} to execute, "
        f"processes={processes}, timeout="
        f"{'off' if not timeout else f'{timeout:.0f}s'}, retries={retries})",
    )
    if to_run:
        _execute_specs(
            to_run,
            store=store,
            processes=processes,
            timeout=timeout,
            retries=retries,
            report=report,
            log_stream=log_stream,
        )

    for target in target_list:
        try:
            report.outputs[target] = assemble_target(
                target, store, runs=runs, duration=duration, seed=seed
            )
        except MissingRunError as exc:
            if partial:
                try:
                    text, note = assemble_target(
                        target, store, runs=runs, duration=duration,
                        seed=seed, partial=True,
                    )
                    report.outputs[target] = text
                    report.partial_targets[target] = note
                    _log(log_stream, f"assembled {target} partially ({note})")
                    continue
                except MissingRunError:
                    pass
            report.errors[target] = str(exc)
            _log(log_stream, f"cannot assemble {target}: {exc}")
    report.wall_time_s = time.time() - started
    _log(log_stream, report.summary())
    return report
