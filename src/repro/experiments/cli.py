"""Command-line entry point: regenerate any paper table or figure.

Examples::

    repro-experiments table1
    repro-experiments fig7a --runs 3 --duration 100 --processes 8
    repro-experiments fig7a --save --results-dir results --processes 8
    repro-experiments campaign all --resume --processes 8 --timeout 900
    repro-experiments campaign fig7 fig9 fig14a --resume
    repro-experiments explain inter-area --runs 2 --duration 100
    repro-experiments faults --runs 2 --duration 100 --processes 8

``campaign`` is the fault-tolerant way to regenerate many artefacts: every
individual simulation run lands in the persistent result store as it
finishes, so an interrupted campaign re-issued with ``--resume`` executes
only the missing runs (this replaces the old ``run_remaining*.sh``
restart scripts, which re-ran everything).  ``--save`` on a single target
routes it through the same store.

``explain`` runs seed-paired A/B simulations with the packet-lifecycle
ledger enabled and reports where every application packet died — the
terminal-outcome breakdown behind the figures' aggregate drop rates.

``faults`` sweeps the inter-area attack over a frame-loss × node-churn
impairment grid (store-backed, resumable like a campaign) and reports how
attack success and delivery ratio hold up off the ideal channel.

``urban`` sweeps both attacks over {highway, urban Manhattan grid} ×
{DCC off, on} × {CBF, S-FoT+} — the urban scenario pack — with the same
store-backed resume semantics::

    repro-experiments urban --runs 2 --duration 100 --processes 8
    repro-experiments campaign urban --resume --processes 8
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.campaign import (
    CampaignError,
    TARGET_ALIASES,
    run_campaign,
)
from repro.experiments.figures import (
    fig7,
    fig8,
    fig9,
    fig10,
    fig12,
    fig13,
    fig14,
    tables,
)
from repro.experiments.store import DEFAULT_RESULTS_DIR, ResultStore

#: Targets that are single whole runs: ``--runs``/``--processes`` do not
#: apply (warned about on stderr instead of silently ignored).
_SINGLE_RUN_TARGETS = ("table1", "table2", "fig12a", "fig12b", "fig13")


def _emit(text: str) -> None:
    print(text)
    print()


def _warn_ignored_flags(name: str, args: argparse.Namespace) -> None:
    """Flag combinations that look meaningful but are not for ``name``."""
    if name not in _SINGLE_RUN_TARGETS:
        return
    ignored = []
    if args.runs != 3:
        ignored.append(f"--runs {args.runs}")
    if args.processes != 1:
        ignored.append(f"--processes {args.processes}")
    if name == "fig13" and args.duration != 200.0:
        ignored.append(f"--duration {args.duration}")
    if ignored:
        verb = "has" if len(ignored) == 1 else "have"
        print(
            f"warning: {name} is a single deterministic run; "
            f"{' and '.join(ignored)} {verb} no effect on it",
            file=sys.stderr,
        )


def _run_target(name: str, args: argparse.Namespace) -> None:
    kw = dict(
        runs=args.runs,
        duration=args.duration,
        processes=args.processes,
        seed=args.seed,
    )
    started = time.time()
    _warn_ignored_flags(name, args)
    if name == "table1":
        _emit(tables.table1())
    elif name == "table2":
        _emit(tables.table2())
    elif name in ("fig7a", "fig7b", "fig7c", "fig7d", "fig7e"):
        _emit(getattr(fig7, name)(**kw).format())
    elif name == "fig7":
        for panel, result in fig7.figure7(**kw).items():
            _emit(result.format())
    elif name == "fig8":
        _emit(fig8.figure8(**kw).format())
    elif name in ("fig9a", "fig9b", "fig9c", "fig9d", "fig9e"):
        _emit(getattr(fig9, name)(**kw).format())
    elif name == "fig9":
        for panel, result in fig9.figure9(**kw).items():
            _emit(result.format())
    elif name == "fig9-tuning":
        _emit(fig9.attack_range_tuning(**kw).format())
    elif name == "fig9-source-location":
        _emit(fig9.source_location_study(**kw).format())
    elif name == "fig10":
        _emit(fig10.figure10(**kw).format())
    elif name == "fig12a":
        _emit(fig12.fig12a(duration=args.duration, seed=args.seed).format())
    elif name == "fig12b":
        _emit(fig12.fig12b(duration=args.duration, seed=args.seed).format())
    elif name == "fig13":
        _emit(fig13.fig13(seed=args.seed).format())
    elif name == "fig14a":
        _emit(fig14.fig14a(**kw).format())
    elif name == "fig14b":
        _emit(fig14.fig14b(**kw).format())
    elif name == "faults":
        from repro.experiments.impairments import fault_sweep

        _emit(fault_sweep(**kw).format())
    elif name == "urban":
        from repro.experiments.urban import urban_sweep

        _emit(urban_sweep(**kw).format())
    elif name == "overhead":
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.overhead import format_analysis
        from repro.experiments.world import World

        config = ExperimentConfig.inter_area_default(
            duration=args.duration, seed=args.seed
        )
        world = World(config, attacked=False, seed=args.seed)
        world.run()
        _emit(format_analysis(world.channel.stats, duration=args.duration))
    else:
        raise SystemExit(f"unknown target {name!r}")
    print(f"[{name} done in {time.time() - started:.1f}s]", file=sys.stderr)


def _run_saved(targets: List[str], args: argparse.Namespace) -> int:
    """Route targets through the store (``--save`` / ``campaign``).

    Stored runs are reused, missing ones are executed and stored, and the
    artefacts are assembled from the store.  Exit status is non-zero when
    any run stayed failed or any artefact could not be assembled.
    """
    store = ResultStore(args.results_dir)
    for name in targets:
        _warn_ignored_flags(name, args)
    try:
        report = run_campaign(
            targets,
            store=store,
            runs=args.runs,
            duration=args.duration,
            seed=args.seed,
            processes=args.processes,
            timeout=args.timeout,
            retries=args.retries,
            resume=args.resume,
        )
    except CampaignError as exc:
        raise SystemExit(str(exc))
    for name, text in report.outputs.items():
        _emit(text)
    for name, error in report.errors.items():
        print(f"error: {name}: {error}", file=sys.stderr)
    return 0 if report.ok else 1


ALL_TARGETS = [
    "table1",
    "table2",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig7d",
    "fig7e",
    "fig8",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "fig9e",
    "fig9-tuning",
    "fig9-source-location",
    "fig10",
    "fig12a",
    "fig12b",
    "fig13",
    "fig14a",
    "fig14b",
    "overhead",
    "faults",
    "urban",
]


def _add_common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--runs", type=int, default=3, help="A/B runs per setting")
    parser.add_argument(
        "--duration", type=float, default=200.0, help="simulated seconds per run"
    )
    parser.add_argument(
        "--processes", type=int, default=1, help="worker processes for runs"
    )
    parser.add_argument("--seed", type=int, default=1, help="base random seed")
    parser.add_argument(
        "--results-dir",
        default=DEFAULT_RESULTS_DIR,
        help="persistent result store root (default: %(default)s)",
    )


def _build_explain_parser() -> argparse.ArgumentParser:
    from repro.experiments.explain import EXPLAIN_TARGETS

    parser = argparse.ArgumentParser(
        prog="repro-experiments explain",
        description="Account every application packet's terminal outcome "
        "in seed-paired A/B runs (packet-lifecycle ledger).",
    )
    parser.add_argument(
        "target",
        choices=list(EXPLAIN_TARGETS),
        help="which attack scenario to explain",
    )
    parser.add_argument(
        "--runs", type=int, default=1, help="A/B seed pairs to simulate"
    )
    parser.add_argument(
        "--duration", type=float, default=200.0, help="simulated seconds per run"
    )
    parser.add_argument("--seed", type=int, default=1, help="base random seed")
    parser.add_argument(
        "--journeys",
        type=int,
        default=0,
        metavar="N",
        help="additionally print per-hop journeys of up to N undelivered "
        "attacked packets (records journey events; default: off)",
    )
    return parser


def _run_explain(args: argparse.Namespace) -> int:
    from repro.experiments.explain import explain

    started = time.time()
    result = explain(
        args.target,
        runs=args.runs,
        duration=args.duration,
        seed=args.seed,
        journeys=args.journeys,
    )
    _emit(result.format(journeys=args.journeys))
    print(
        f"[explain {args.target} done in {time.time() - started:.1f}s]",
        file=sys.stderr,
    )
    return 0


def _build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments campaign",
        description="Run many targets fault-tolerantly on top of the "
        "persistent result store.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        metavar="target",
        help="targets to regenerate; aliases: "
        + ", ".join(sorted(TARGET_ALIASES)),
    )
    _add_common_args(parser)
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip runs already in the store (recorded failures are retried)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-run timeout in seconds (default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per run before recording a failure (default: %(default)s)",
    )
    return parser


def _build_sweep_parser(name: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"repro-experiments {name}", description=description
    )
    _add_common_args(parser)
    parser.add_argument(
        "--no-resume",
        dest="resume",
        action="store_false",
        help="re-execute runs even when they are already in the store",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-run timeout in seconds (default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per run before recording a failure (default: %(default)s)",
    )
    return parser


def _build_target_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate tables/figures of the DSN'23 GeoNetworking "
        "attack paper.  Use the 'campaign' subcommand for fault-tolerant "
        "multi-target runs with resume.",
    )
    parser.add_argument(
        "target",
        choices=ALL_TARGETS + ["all", "fig7", "fig9", "campaign", "explain"],
        help="which artefact to regenerate ('all' runs every one)",
    )
    _add_common_args(parser)
    parser.add_argument(
        "--save",
        action="store_true",
        help="route through the result store: reuse stored runs, store new "
        "ones, assemble the artefact from the store",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        args = _build_campaign_parser().parse_args(argv[1:])
        return _run_saved(args.targets, args)
    if argv and argv[0] == "explain":
        return _run_explain(_build_explain_parser().parse_args(argv[1:]))
    if argv and argv[0] == "faults":
        # Store-backed by design: the 9-cell x N-run grid is expensive, so
        # a re-issued sweep only costs the missing runs.
        args = _build_sweep_parser(
            "faults",
            "Sweep the inter-area attack over a frame-loss x node-churn "
            "impairment grid (store-backed and resumable).",
        ).parse_args(argv[1:])
        return _run_saved(["faults"], args)
    if argv and argv[0] == "urban":
        # Same store-backed pattern as 'faults': the 2x2x2-per-attack grid
        # resumes from wherever a previous sweep stopped.
        args = _build_sweep_parser(
            "urban",
            "Sweep both attacks over {highway, urban} x {DCC off, on} x "
            "{CBF, S-FoT+} (store-backed and resumable).",
        ).parse_args(argv[1:])
        return _run_saved(["urban"], args)
    args = _build_target_parser().parse_args(argv)
    if args.target == "campaign":
        raise SystemExit("usage: repro-experiments campaign <targets...>")
    if args.target == "explain":
        raise SystemExit(
            "usage: repro-experiments explain <inter-area|intra-area>"
        )
    if args.save:
        # Single-target save behaves like a one-target resuming campaign.
        args.resume = True
        args.timeout = None
        args.retries = 1
        targets = ALL_TARGETS if args.target == "all" else [args.target]
        return _run_saved(targets, args)
    targets = ALL_TARGETS if args.target == "all" else [args.target]
    for name in targets:
        _run_target(name, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
