"""Command-line entry point: regenerate any paper table or figure.

Examples::

    repro-experiments table1
    repro-experiments fig7a --runs 3 --duration 100 --processes 8
    repro-experiments fig12b
    repro-experiments all --runs 2 --duration 60 --processes 8
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.figures import (
    fig7,
    fig8,
    fig9,
    fig10,
    fig12,
    fig13,
    fig14,
    tables,
)

_STANDARD_KW = ("runs", "duration", "processes", "seed")


def _emit(text: str) -> None:
    print(text)
    print()


def _run_target(name: str, args: argparse.Namespace) -> None:
    kw = dict(
        runs=args.runs,
        duration=args.duration,
        processes=args.processes,
        seed=args.seed,
    )
    started = time.time()
    if name == "table1":
        _emit(tables.table1())
    elif name == "table2":
        _emit(tables.table2())
    elif name in ("fig7a", "fig7b", "fig7c", "fig7d", "fig7e"):
        _emit(getattr(fig7, name)(**kw).format())
    elif name == "fig7":
        for panel, result in fig7.figure7(**kw).items():
            _emit(result.format())
    elif name == "fig8":
        _emit(fig8.figure8(**kw).format())
    elif name in ("fig9a", "fig9b", "fig9c", "fig9d", "fig9e"):
        _emit(getattr(fig9, name)(**kw).format())
    elif name == "fig9":
        for panel, result in fig9.figure9(**kw).items():
            _emit(result.format())
    elif name == "fig9-tuning":
        _emit(fig9.attack_range_tuning(**kw).format())
    elif name == "fig9-source-location":
        _emit(fig9.source_location_study(**kw).format())
    elif name == "fig10":
        _emit(fig10.figure10(**kw).format())
    elif name == "fig12a":
        _emit(fig12.fig12a(duration=args.duration, seed=args.seed).format())
    elif name == "fig12b":
        _emit(fig12.fig12b(duration=args.duration, seed=args.seed).format())
    elif name == "fig13":
        _emit(fig13.fig13(seed=args.seed).format())
    elif name == "fig14a":
        _emit(fig14.fig14a(**kw).format())
    elif name == "fig14b":
        _emit(fig14.fig14b(**kw).format())
    elif name == "overhead":
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.overhead import format_analysis
        from repro.experiments.world import World

        config = ExperimentConfig.inter_area_default(
            duration=args.duration, seed=args.seed
        )
        world = World(config, attacked=False, seed=args.seed)
        world.run()
        _emit(format_analysis(world.channel.stats, duration=args.duration))
    else:
        raise SystemExit(f"unknown target {name!r}")
    print(f"[{name} done in {time.time() - started:.1f}s]", file=sys.stderr)


ALL_TARGETS = [
    "table1",
    "table2",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig7d",
    "fig7e",
    "fig8",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "fig9e",
    "fig9-tuning",
    "fig9-source-location",
    "fig10",
    "fig12a",
    "fig12b",
    "fig13",
    "fig14a",
    "fig14b",
    "overhead",
]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate tables/figures of the DSN'23 GeoNetworking "
        "attack paper.",
    )
    parser.add_argument(
        "target",
        choices=ALL_TARGETS + ["all"],
        help="which artefact to regenerate ('all' runs every one)",
    )
    parser.add_argument("--runs", type=int, default=3, help="A/B runs per setting")
    parser.add_argument(
        "--duration", type=float, default=200.0, help="simulated seconds per run"
    )
    parser.add_argument(
        "--processes", type=int, default=1, help="worker processes for runs"
    )
    parser.add_argument("--seed", type=int, default=1, help="base random seed")
    args = parser.parse_args(argv)
    targets = ALL_TARGETS if args.target == "all" else [args.target]
    for name in targets:
        _run_target(name, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
