"""Command-line entry point: regenerate any paper table or figure.

Examples::

    repro-experiments table1
    repro-experiments fig7a --runs 3 --duration 100 --processes 8
    repro-experiments fig7a --save --results-dir results --processes 8
    repro-experiments campaign all --resume --processes 8 --timeout 900
    repro-experiments campaign fig7 fig9 fig14a --resume
    repro-experiments campaign all --backend sqlite --workers 4 --status-port 8642
    repro-experiments status all --backend sqlite
    repro-experiments explain inter-area --runs 2 --duration 100
    repro-experiments faults --runs 2 --duration 100 --processes 8

``campaign`` is the fault-tolerant way to regenerate many artefacts: every
individual simulation run lands in the persistent result store as it
finishes, so an interrupted campaign re-issued with ``--resume`` executes
only the missing runs (this replaces the old ``run_remaining*.sh``
restart scripts, which re-ran everything).  ``--save`` on a single target
routes it through the same store.  ``--backend sqlite`` keeps the records
in one WAL database instead of one file per run, and ``--workers N``
switches to the lease-based service scheduler: N independent worker
processes that heartbeat their jobs and survive SIGKILL at any point
(``status`` / ``--status-port`` expose live progress counters).

``explain`` runs seed-paired A/B simulations with the packet-lifecycle
ledger enabled and reports where every application packet died — the
terminal-outcome breakdown behind the figures' aggregate drop rates.

``faults`` sweeps the inter-area attack over a frame-loss × node-churn
impairment grid (store-backed, resumable like a campaign) and reports how
attack success and delivery ratio hold up off the ideal channel.

``urban`` sweeps both attacks over {highway, urban Manhattan grid} ×
{DCC off, on} × {CBF, S-FoT+} — the urban scenario pack — with the same
store-backed resume semantics::

    repro-experiments urban --runs 2 --duration 100 --processes 8
    repro-experiments campaign urban --resume --processes 8
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.campaign import (
    CampaignError,
    TARGET_ALIASES,
    run_campaign,
)
from repro.experiments.figures import (
    fig7,
    fig8,
    fig9,
    fig10,
    fig12,
    fig13,
    fig14,
    tables,
)
from repro.experiments.store import (
    DEFAULT_RESULTS_DIR,
    STORE_BACKENDS,
    open_store,
)

#: Targets that are single whole runs: per-run fan-out flags do not apply
#: (warned about on stderr instead of silently ignored).
_SINGLE_RUN_TARGETS = ("table1", "table2", "fig12a", "fig12b", "fig13")

#: (flag, namespace attribute, default) of every flag that only changes
#: how *many parallel runs* execute — meaningless for a single
#: deterministic run, whichever scheduler is in use.  The scheduler flags
#: (``--workers``, ``--lease-ttl``, ``--heartbeat``) are warned about
#: exactly like the historical ``--runs``/``--processes``.
_FANOUT_FLAGS = (
    ("--runs", "runs", 3),
    ("--processes", "processes", 1),
    ("--workers", "workers", 0),
    ("--lease-ttl", "lease_ttl", 60.0),
    ("--heartbeat", "heartbeat", None),
)


def _emit(text: str) -> None:
    print(text)
    print()


def _warn_ignored_flags(name: str, args: argparse.Namespace) -> None:
    """Flag combinations that look meaningful but are not for ``name``."""
    if name not in _SINGLE_RUN_TARGETS:
        return
    ignored = []
    for flag, attr, default in _FANOUT_FLAGS:
        value = getattr(args, attr, default)
        if value != default:
            ignored.append(f"{flag} {value}")
    if name == "fig13" and args.duration != 200.0:
        ignored.append(f"--duration {args.duration}")
    if ignored:
        verb = "has" if len(ignored) == 1 else "have"
        print(
            f"warning: {name} is a single deterministic run; "
            f"{' and '.join(ignored)} {verb} no effect on it",
            file=sys.stderr,
        )


def _run_target(name: str, args: argparse.Namespace) -> None:
    kw = dict(
        runs=args.runs,
        duration=args.duration,
        processes=args.processes,
        seed=args.seed,
    )
    started = time.time()
    _warn_ignored_flags(name, args)
    if name == "table1":
        _emit(tables.table1())
    elif name == "table2":
        _emit(tables.table2())
    elif name in ("fig7a", "fig7b", "fig7c", "fig7d", "fig7e"):
        _emit(getattr(fig7, name)(**kw).format())
    elif name == "fig7":
        for panel, result in fig7.figure7(**kw).items():
            _emit(result.format())
    elif name == "fig8":
        _emit(fig8.figure8(**kw).format())
    elif name in ("fig9a", "fig9b", "fig9c", "fig9d", "fig9e"):
        _emit(getattr(fig9, name)(**kw).format())
    elif name == "fig9":
        for panel, result in fig9.figure9(**kw).items():
            _emit(result.format())
    elif name == "fig9-tuning":
        _emit(fig9.attack_range_tuning(**kw).format())
    elif name == "fig9-source-location":
        _emit(fig9.source_location_study(**kw).format())
    elif name == "fig10":
        _emit(fig10.figure10(**kw).format())
    elif name == "fig12a":
        _emit(fig12.fig12a(duration=args.duration, seed=args.seed).format())
    elif name == "fig12b":
        _emit(fig12.fig12b(duration=args.duration, seed=args.seed).format())
    elif name == "fig13":
        _emit(fig13.fig13(seed=args.seed).format())
    elif name == "fig14a":
        _emit(fig14.fig14a(**kw).format())
    elif name == "fig14b":
        _emit(fig14.fig14b(**kw).format())
    elif name == "faults":
        from repro.experiments.impairments import fault_sweep

        _emit(fault_sweep(**kw).format())
    elif name == "urban":
        from repro.experiments.urban import urban_sweep

        _emit(urban_sweep(**kw).format())
    elif name == "detect":
        from repro.experiments.detect import detect_sweep

        _emit(detect_sweep(**kw).format())
    elif name == "overhead":
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.overhead import format_analysis
        from repro.experiments.world import World

        config = ExperimentConfig.inter_area_default(
            duration=args.duration, seed=args.seed
        )
        world = World(config, attacked=False, seed=args.seed)
        world.run()
        _emit(format_analysis(world.channel.stats, duration=args.duration))
    else:
        raise SystemExit(f"unknown target {name!r}")
    print(f"[{name} done in {time.time() - started:.1f}s]", file=sys.stderr)


def _open_store(args: argparse.Namespace):
    try:
        return open_store(
            args.results_dir, backend=getattr(args, "backend", "json")
        )
    except Exception as exc:
        raise SystemExit(f"cannot open result store: {exc}")


def _run_saved(targets: List[str], args: argparse.Namespace) -> int:
    """Route targets through the store (``--save`` / ``campaign``).

    Stored runs are reused, missing ones are executed and stored, and the
    artefacts are assembled from the store.  Exit status is non-zero when
    any run stayed failed or any artefact could not be assembled.

    ``--workers N`` switches from the classic in-process pool to the
    lease-based service scheduler: N independent worker processes against
    the shared store, each surviving SIGKILL at any point.
    """
    store = _open_store(args)
    for name in targets:
        _warn_ignored_flags(name, args)
    workers = getattr(args, "workers", 0)
    try:
        if workers:
            from repro.experiments.service.scheduler import run_service_campaign

            if not getattr(args, "resume", True):
                print(
                    "warning: the lease scheduler always resumes from the "
                    "store; ignoring --no-resume",
                    file=sys.stderr,
                )
            report = run_service_campaign(
                targets,
                store=store,
                workers=workers,
                runs=args.runs,
                duration=args.duration,
                seed=args.seed,
                timeout=args.timeout,
                retries=args.retries,
                lease_ttl=getattr(args, "lease_ttl", None),
                heartbeat_interval=getattr(args, "heartbeat", None),
                checkpoint_interval=getattr(args, "checkpoint_interval", None),
                status_port=getattr(args, "status_port", None),
                partial=getattr(args, "partial", False),
                log_stream=sys.stderr,
            )
        else:
            report = run_campaign(
                targets,
                store=store,
                runs=args.runs,
                duration=args.duration,
                seed=args.seed,
                processes=args.processes,
                timeout=args.timeout,
                retries=args.retries,
                resume=args.resume,
                partial=getattr(args, "partial", False),
            )
    except (CampaignError, ValueError) as exc:
        raise SystemExit(str(exc))
    for name, text in report.outputs.items():
        _emit(text)
    for name, note in getattr(report, "partial_targets", {}).items():
        print(f"note: {name}: {note}", file=sys.stderr)
    for name, error in report.errors.items():
        print(f"error: {name}: {error}", file=sys.stderr)
    return 0 if report.ok else 1


ALL_TARGETS = [
    "table1",
    "table2",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig7d",
    "fig7e",
    "fig8",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "fig9e",
    "fig9-tuning",
    "fig9-source-location",
    "fig10",
    "fig12a",
    "fig12b",
    "fig13",
    "fig14a",
    "fig14b",
    "overhead",
    "faults",
    "urban",
    "detect",
]


def _add_common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--runs", type=int, default=3, help="A/B runs per setting")
    parser.add_argument(
        "--duration", type=float, default=200.0, help="simulated seconds per run"
    )
    parser.add_argument(
        "--processes", type=int, default=1, help="worker processes for runs"
    )
    parser.add_argument("--seed", type=int, default=1, help="base random seed")
    parser.add_argument(
        "--results-dir",
        default=DEFAULT_RESULTS_DIR,
        help="persistent result store root (default: %(default)s)",
    )
    parser.add_argument(
        "--backend",
        choices=list(STORE_BACKENDS),
        default="json",
        help="result store backend: 'json' (one file per run, the "
        "default) or 'sqlite' (one WAL database, for multi-worker "
        "campaigns); records are interchangeable run for run",
    )


def _build_explain_parser() -> argparse.ArgumentParser:
    from repro.experiments.explain import EXPLAIN_TARGETS

    parser = argparse.ArgumentParser(
        prog="repro-experiments explain",
        description="Account every application packet's terminal outcome "
        "in seed-paired A/B runs (packet-lifecycle ledger).",
    )
    parser.add_argument(
        "target",
        choices=list(EXPLAIN_TARGETS),
        help="which attack scenario to explain",
    )
    parser.add_argument(
        "--runs", type=int, default=1, help="A/B seed pairs to simulate"
    )
    parser.add_argument(
        "--duration", type=float, default=200.0, help="simulated seconds per run"
    )
    parser.add_argument("--seed", type=int, default=1, help="base random seed")
    parser.add_argument(
        "--journeys",
        type=int,
        default=0,
        metavar="N",
        help="additionally print per-hop journeys of up to N undelivered "
        "attacked packets (records journey events; default: off)",
    )
    return parser


def _run_explain(args: argparse.Namespace) -> int:
    from repro.experiments.explain import explain

    started = time.time()
    result = explain(
        args.target,
        runs=args.runs,
        duration=args.duration,
        seed=args.seed,
        journeys=args.journeys,
    )
    _emit(result.format(journeys=args.journeys))
    print(
        f"[explain {args.target} done in {time.time() - started:.1f}s]",
        file=sys.stderr,
    )
    return 0


def _build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments campaign",
        description="Run many targets fault-tolerantly on top of the "
        "persistent result store.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        metavar="target",
        help="targets to regenerate; aliases: "
        + ", ".join(sorted(TARGET_ALIASES)),
    )
    _add_common_args(parser)
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip runs already in the store (recorded failures are retried)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-run timeout in seconds (default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per run before recording a failure (default: %(default)s)",
    )
    _add_scheduler_args(parser)
    return parser


def _add_scheduler_args(parser: argparse.ArgumentParser) -> None:
    """The lease-scheduler flags (campaign and sweep subcommands)."""
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="run via the lease scheduler with N independent worker "
        "processes instead of the in-process pool (default: 0 = pool); "
        "workers survive SIGKILL — the campaign resumes around them",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        metavar="S",
        help="seconds a worker's job lease lives without a heartbeat "
        "before another worker may take the job over (default: %(default)s)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="S",
        help="lease heartbeat interval (default: lease-ttl / 3)",
    )
    parser.add_argument(
        "--status-port",
        type=int,
        default=None,
        metavar="P",
        help="serve read-only JSON progress counters on "
        "http://127.0.0.1:P/status while the campaign runs (0 = any port)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=None,
        metavar="S",
        help="checkpoint each worker's run every S seconds of simulation "
        "time so a killed worker's successor resumes mid-run instead of "
        "from t=0 (default: off; checkpoints are deleted when the run "
        "commits)",
    )
    parser.add_argument(
        "--partial",
        action="store_true",
        help="assemble targets from whatever runs are stored (with a "
        "coverage note) instead of erroring on missing runs",
    )


def _validate_scheduler_args(args: argparse.Namespace) -> None:
    if getattr(args, "workers", 0) < 0:
        raise SystemExit("--workers must be >= 0")
    if getattr(args, "lease_ttl", 60.0) <= 0:
        raise SystemExit("--lease-ttl must be > 0")
    heartbeat = getattr(args, "heartbeat", None)
    if heartbeat is not None and not 0 < heartbeat < args.lease_ttl:
        raise SystemExit("--heartbeat must be in (0, --lease-ttl)")
    port = getattr(args, "status_port", None)
    if port is not None and not 0 <= port <= 65535:
        raise SystemExit("--status-port must be in [0, 65535]")
    checkpoint_interval = getattr(args, "checkpoint_interval", None)
    if checkpoint_interval is not None and checkpoint_interval <= 0:
        raise SystemExit("--checkpoint-interval must be > 0")
    if getattr(args, "workers", 0) == 0:
        # The pool path accepts but never reads the scheduler knobs; say
        # so instead of silently swallowing them (mirrors the single-run
        # target warnings).
        ignored = [
            f"{flag} {getattr(args, attr)}"
            for flag, attr, default in (
                ("--lease-ttl", "lease_ttl", 60.0),
                ("--heartbeat", "heartbeat", None),
                ("--status-port", "status_port", None),
                ("--checkpoint-interval", "checkpoint_interval", None),
            )
            if getattr(args, attr, default) != default
        ]
        if ignored:
            print(
                f"warning: {' and '.join(ignored)} only apply to the lease "
                "scheduler; pass --workers N to enable it",
                file=sys.stderr,
            )


def _build_sweep_parser(name: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"repro-experiments {name}", description=description
    )
    _add_common_args(parser)
    parser.add_argument(
        "--no-resume",
        dest="resume",
        action="store_false",
        help="re-execute runs even when they are already in the store",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-run timeout in seconds (default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per run before recording a failure (default: %(default)s)",
    )
    _add_scheduler_args(parser)
    return parser


def _build_status_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments status",
        description="Report campaign progress counters from the result "
        "store (optionally serving them over read-only HTTP).",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        metavar="target",
        help="targets whose progress to report; aliases: "
        + ", ".join(sorted(TARGET_ALIASES)),
    )
    _add_common_args(parser)
    parser.add_argument(
        "--serve",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the counters on http://127.0.0.1:PORT/status until "
        "interrupted instead of printing them once (0 = any port)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        metavar="S",
        help="the running campaign's lease TTL — used to turn lease "
        "deadlines into last-heartbeat ages (default: %(default)s, the "
        "scheduler default)",
    )
    return parser


def _run_status(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.campaign import plan_campaign
    from repro.experiments.service.leases import queue_for_store
    from repro.experiments.service.status import StatusServer, progress_snapshot

    store = _open_store(args)
    try:
        specs = plan_campaign(
            args.targets, runs=args.runs, duration=args.duration, seed=args.seed
        )
    except CampaignError as exc:
        raise SystemExit(str(exc))
    # Read-only peek at the lease queue (if the store has one) so the
    # report includes live workers, per-job checkpoint progress and
    # last-heartbeat ages alongside the store counters.
    queue = queue_for_store(store)
    lease_ttl = getattr(args, "lease_ttl", 60.0)
    if args.serve is None:
        print(
            json.dumps(
                progress_snapshot(
                    store, specs, queue=queue, lease_ttl=lease_ttl
                ),
                indent=2,
            )
        )
        return 0
    server = StatusServer(
        lambda: progress_snapshot(
            store, specs, queue=queue, lease_ttl=lease_ttl
        ),
        port=args.serve,
    )
    server.start()
    print(
        f"serving campaign status on http://127.0.0.1:{server.port}/status "
        "(Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        import time as _time

        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:
        return 0
    finally:
        server.stop()


def _build_target_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate tables/figures of the DSN'23 GeoNetworking "
        "attack paper.  Use the 'campaign' subcommand for fault-tolerant "
        "multi-target runs with resume.",
    )
    parser.add_argument(
        "target",
        choices=ALL_TARGETS + ["all", "fig7", "fig9", "campaign", "explain", "status"],
        help="which artefact to regenerate ('all' runs every one)",
    )
    _add_common_args(parser)
    parser.add_argument(
        "--save",
        action="store_true",
        help="route through the result store: reuse stored runs, store new "
        "ones, assemble the artefact from the store",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        args = _build_campaign_parser().parse_args(argv[1:])
        _validate_scheduler_args(args)
        return _run_saved(args.targets, args)
    if argv and argv[0] == "explain":
        return _run_explain(_build_explain_parser().parse_args(argv[1:]))
    if argv and argv[0] == "status":
        return _run_status(_build_status_parser().parse_args(argv[1:]))
    if argv and argv[0] == "faults":
        # Store-backed by design: the 9-cell x N-run grid is expensive, so
        # a re-issued sweep only costs the missing runs.
        args = _build_sweep_parser(
            "faults",
            "Sweep the inter-area attack over a frame-loss x node-churn "
            "impairment grid (store-backed and resumable).",
        ).parse_args(argv[1:])
        _validate_scheduler_args(args)
        return _run_saved(["faults"], args)
    if argv and argv[0] == "urban":
        # Same store-backed pattern as 'faults': the 2x2x2-per-attack grid
        # resumes from wherever a previous sweep stopped.
        args = _build_sweep_parser(
            "urban",
            "Sweep both attacks over {highway, urban} x {DCC off, on} x "
            "{CBF, S-FoT+} (store-backed and resumable).",
        ).parse_args(argv[1:])
        _validate_scheduler_args(args)
        return _run_saved(["urban"], args)
    if argv and argv[0] == "detect":
        # Store-backed like 'faults'/'urban': the {variant} x {impairment}
        # x {scenario} detection grid resumes from the store.
        args = _build_sweep_parser(
            "detect",
            "Score the online misbehavior detector over {single, "
            "coordinated, mobile, adaptive} attackers x {clean, impaired} "
            "x {highway, urban} (store-backed and resumable).",
        ).parse_args(argv[1:])
        _validate_scheduler_args(args)
        return _run_saved(["detect"], args)
    args = _build_target_parser().parse_args(argv)
    if args.target == "campaign":
        raise SystemExit("usage: repro-experiments campaign <targets...>")
    if args.target == "explain":
        raise SystemExit(
            "usage: repro-experiments explain <inter-area|intra-area>"
        )
    if args.target == "status":
        raise SystemExit("usage: repro-experiments status <targets...>")
    if args.save:
        # Single-target save behaves like a one-target resuming campaign.
        args.resume = True
        args.timeout = None
        args.retries = 1
        targets = ALL_TARGETS if args.target == "all" else [args.target]
        return _run_saved(targets, args)
    targets = ALL_TARGETS if args.target == "all" else [args.target]
    for name in targets:
        _run_target(name, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
