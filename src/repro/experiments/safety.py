"""Road-safety impact study (paper §IV-B, Fig 11b / Fig 13).

Two vehicles approach a blind curve from opposite directions.  The terrain
blocks radio (and sight) between the two approaches, so a roadside unit at
the outer edge of the curve relays CBF messages.  V1 detects a hazard in its
lane, brakes hard, swerves into the opposite lane and broadcasts a lane-
change warning:

* attack-free — the RSU relays the warning; V2 slows to a crawl and the
  vehicles never meet in the same lane;
* attacked — a blocker beside the RSU replays the warning with transmission
  power tuned so *only the RSU* hears it (the Spot-2 variant, RHL
  unmodified).  The RSU treats it as another forwarder's duplicate and
  cancels its relay; V2 arrives unwarned, both drivers only see each other
  at sight distance around the bend, and the emergency braking (after a
  human reaction delay) is too late.

The module records the speed profiles the paper plots in Fig 13 and whether
a collision occurred.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.attacks import IntraAreaBlocker
from repro.geo.areas import RectangularArea
from repro.geo.position import Position
from repro.geonet.config import GeoNetConfig
from repro.geonet.node import GeoNode, StaticMobility, VehicleMobility
from repro.radio.channel import BroadcastChannel
from repro.radio.technology import DSRC
from repro.security.ca import CertificateAuthority
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.idm import IdmParameters
from repro.traffic.road import RoadSegment
from repro.traffic.simulation import TrafficSimulation
from repro.traffic.vehicle import Vehicle

APEX_X = 600.0
HAZARD_ZONE = (500.0, 545.0)
DETECT_X = 450.0
SIGHT_DISTANCE = 15.0
REACTION_DELAY = 0.8
WARNING_PAYLOAD = "lane-change-warning"

V1_START_X = 300.0
V1_SPEED = 27.0
V2_START_X = 700.0
V2_SPEED = 14.0

APPROACH_DECEL = -2.0
WARNED_DECEL = -4.0
HAZARD_DECEL = -4.0
EMERGENCY_DECEL = -8.0
CRAWL_SPEED = 2.0
PASS_SPEED = 8.0


@dataclass
class SafetyRun:
    """Speed profiles and events of one curve-scenario run."""

    attacked: bool
    times: List[float] = field(default_factory=list)
    v1_speeds: List[float] = field(default_factory=list)
    v2_speeds: List[float] = field(default_factory=list)
    v1_positions: List[float] = field(default_factory=list)
    v2_positions: List[float] = field(default_factory=list)
    warning_sent_at: Optional[float] = None
    v2_warned_at: Optional[float] = None
    collision_at: Optional[float] = None
    min_gap: float = float("inf")

    @property
    def collided(self) -> bool:
        return self.collision_at is not None

    def format(self) -> str:
        warned = (
            f"V2 warned at t={self.v2_warned_at:.2f}s"
            if self.v2_warned_at is not None
            else "V2 never warned"
        )
        outcome = (
            f"COLLISION at t={self.collision_at:.2f}s"
            if self.collided
            else f"no collision (min gap {self.min_gap:.1f} m)"
        )
        return f"{'attacked' if self.attacked else 'attack-free'}: {warned}; {outcome}"


class _CurveScenario:
    """The scripted controller for V1, V2 and the RSU."""

    def __init__(self, *, attacked: bool, seed: int):
        self.run = SafetyRun(attacked=attacked)
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.channel = BroadcastChannel(self.sim, self.streams)
        self.ca = CertificateAuthority()
        self.road = RoadSegment(
            length=1200.0, lanes_per_direction=1, lane_width=5.0, directions=2
        )
        self.traffic = TrafficSimulation(self.road, IdmParameters(), dt=0.1)
        self.traffic.on_step.append(self._control)
        self.traffic.on_step.append(self._invalidate_channel_positions)
        # The terrain blocks links between the two approaches; anything
        # mounted high (RSU at y=30, attacker mast at y=31) is exempt, and
        # vehicles close to one another around the bend can still hear
        # (and see) each other.
        self.channel.add_obstruction(self._terrain_blocks)

        east_lane = self.road.eastbound_lanes[0]
        west_lane = self.road.westbound_lanes[0]
        self.v1 = Vehicle(lane=east_lane, x=V1_START_X, speed=V1_SPEED)
        self.v2 = Vehicle(lane=west_lane, x=V2_START_X, speed=V2_SPEED)
        self.v1.forced_acceleration = APPROACH_DECEL
        self.v2.forced_acceleration = APPROACH_DECEL
        self.traffic.add_vehicle(self.v1)
        self.traffic.add_vehicle(self.v2)

        config = GeoNetConfig(dist_max=DSRC.max_range_m)
        self.area = RectangularArea(0.0, 1200.0, 0.0, 40.0)
        self.n1 = self._make_node("v1", VehicleMobility(self.v1), config)
        self.n2 = self._make_node("v2", VehicleMobility(self.v2), config)
        self.rsu = self._make_node(
            "rsu", StaticMobility(Position(APEX_X, 30.0)), config
        )
        self.n2.router.on_deliver.append(self._v2_deliver)

        self.attacker: Optional[IntraAreaBlocker] = None
        if attacked:
            self.attacker = IntraAreaBlocker(
                sim=self.sim,
                channel=self.channel,
                streams=self.streams,
                position=Position(APEX_X, 31.0),
                attack_range=300.0,
                rewrite_rhl=False,  # the Spot-2 targeted variant
                replay_range=5.0,  # reaches only the RSU one metre away
            )

        # scripted state
        self._v1_detected = False
        self._v1_in_opposite_lane = False
        self._v1_cleared = False
        self._v2_warned = False
        self._v2_emergency_at: Optional[float] = None
        self._v1_emergency_at: Optional[float] = None

    # ------------------------------------------------------------------
    def _make_node(self, name: str, mobility, config: GeoNetConfig) -> GeoNode:
        return GeoNode(
            sim=self.sim,
            channel=self.channel,
            config=config,
            credentials=self.ca.enroll(name),
            mobility=mobility,
            tx_range=DSRC.vehicle_range_m,
            rng=self.streams.get(f"beacon:{name}"),
            name=name,
        )

    @staticmethod
    def _terrain_blocks(a: Position, b: Position) -> bool:
        if a.y >= 15.0 or b.y >= 15.0:
            return False  # elevated roadside equipment has line of sight
        opposite_sides = (a.x - APEX_X) * (b.x - APEX_X) < 0
        return opposite_sides and abs(a.x - b.x) > 40.0

    # ------------------------------------------------------------------
    def _v2_deliver(self, node: GeoNode, packet) -> None:
        if packet.body.payload == WARNING_PAYLOAD and not self._v2_warned:
            self._v2_warned = True
            self.run.v2_warned_at = self.sim.now

    # ------------------------------------------------------------------
    def _invalidate_channel_positions(self, _now: float) -> None:
        self.channel.invalidate_positions()

    def _control(self, now: float) -> None:
        self._control_v1(now)
        self._control_v2(now)
        gap = abs(self.v1.x - self.v2.x)
        if self._v1_in_opposite_lane:
            # Only the window where both vehicles share a lane is
            # collision-relevant; passing in separate lanes is normal.
            self.run.min_gap = min(self.run.min_gap, gap)
        if (
            self._v1_in_opposite_lane
            and not self.run.collided
            and gap <= (self.v1.length + self.v2.length) / 2
        ):
            self.run.collision_at = now
            for vehicle in (self.v1, self.v2):
                vehicle.speed = 0.0
                vehicle.forced_acceleration = 0.0
        self.run.times.append(now)
        self.run.v1_speeds.append(self.v1.speed)
        self.run.v2_speeds.append(self.v2.speed)
        self.run.v1_positions.append(self.v1.x)
        self.run.v2_positions.append(self.v2.x)

    def _control_v1(self, now: float) -> None:
        v1 = self.v1
        if self.run.collided:
            return
        if not self._v1_detected and v1.x >= DETECT_X:
            self._v1_detected = True
            self.run.warning_sent_at = now
            self.n1.originate(self.area, WARNING_PAYLOAD)
        if self._v1_emergency_at is not None:
            if now >= self._v1_emergency_at:
                v1.forced_acceleration = EMERGENCY_DECEL
            return
        if self._sees_oncoming() and self._v1_in_opposite_lane:
            self._v1_emergency_at = now + REACTION_DELAY
            return
        if not self._v1_detected:
            v1.forced_acceleration = APPROACH_DECEL
        elif v1.x < HAZARD_ZONE[0]:
            v1.forced_acceleration = (
                HAZARD_DECEL if v1.speed > PASS_SPEED else 0.0
            )
        elif v1.x < HAZARD_ZONE[1]:
            self._v1_in_opposite_lane = True
            v1.forced_acceleration = 0.0
        else:
            if self._v1_in_opposite_lane:
                self._v1_in_opposite_lane = False
                self._v1_cleared = True
            # Back in its own lane: return to a constant cruise.
            v1.forced_acceleration = 2.0 if v1.speed < 15.0 else 0.0

    def _control_v2(self, now: float) -> None:
        v2 = self.v2
        if self.run.collided:
            return
        if self._v2_emergency_at is not None:
            if now >= self._v2_emergency_at:
                v2.forced_acceleration = EMERGENCY_DECEL
            return
        if self._sees_oncoming() and self._v1_in_opposite_lane:
            self._v2_emergency_at = now + REACTION_DELAY
            return
        if self._v2_warned and not self._v1_cleared:
            v2.forced_acceleration = (
                WARNED_DECEL if v2.speed > CRAWL_SPEED else 0.0
            )
        elif self._v2_warned and self._v1_cleared:
            v2.forced_acceleration = 2.0 if v2.speed < V2_SPEED else 0.0
        else:
            v2.forced_acceleration = (
                APPROACH_DECEL if v2.speed > PASS_SPEED else 0.0
            )

    def _sees_oncoming(self) -> bool:
        return abs(self.v1.x - self.v2.x) <= SIGHT_DISTANCE

    # ------------------------------------------------------------------
    def run_scenario(self, duration: float = 40.0) -> SafetyRun:
        self.traffic.start(self.sim)
        self.sim.run_until(duration)
        return self.run


def run_safety_case(*, attacked: bool, seed: int = 1, duration: float = 40.0) -> SafetyRun:
    """Run the curve scenario once and return its speed profiles/events."""
    scenario = _CurveScenario(attacked=attacked, seed=seed)
    return scenario.run_scenario(duration)


@dataclass
class SafetyComparison:
    """Fig 13: attack-free vs attacked curve scenario."""

    af: SafetyRun
    atk: SafetyRun

    def format(self) -> str:
        return (
            "Fig13: road-safety curve scenario\n"
            f"  {self.af.format()}\n"
            f"  {self.atk.format()}"
        )


def compare_safety(*, seed: int = 1, duration: float = 40.0) -> SafetyComparison:
    """Run the paired attack-free / attacked curve scenarios."""
    return SafetyComparison(
        af=run_safety_case(attacked=False, seed=seed, duration=duration),
        atk=run_safety_case(attacked=True, seed=seed, duration=duration),
    )
