"""``repro-experiments explain``: where do the attack's packets die?

The paper's figures report *how many* packets an attack drops; this module
answers *where*.  It runs seed-paired attack-free/attacked simulations with
a fresh :class:`~repro.observability.PacketLedger` each, renders the
terminal-outcome breakdown side by side, and attributes the attack-induced
loss to the drop reason that grew the most.

For the inter-area attack that attribution is the paper's core claim made
mechanical: GF picks the replayed (unreachable) neighbor as next hop, the
link-layer unicast has no acknowledgement, and the packet is silently
lost — the ledger files it under ``unreachable-next-hop``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    dominant_loss,
    drop_breakdown_table,
    fmt_pct,
)
from repro.experiments.runner import RunResult, run_single
from repro.observability.ledger import PacketLedger, reasons

#: The scenarios ``explain`` knows how to build.
EXPLAIN_TARGETS = ("inter-area", "intra-area")


def _config_for(target: str, *, duration: float, seed: int) -> ExperimentConfig:
    if target == "inter-area":
        return ExperimentConfig.inter_area_default(duration=duration, seed=seed)
    if target == "intra-area":
        return ExperimentConfig.intra_area_default(duration=duration, seed=seed)
    raise ValueError(
        f"unknown explain target {target!r}; expected one of {EXPLAIN_TARGETS}"
    )


@dataclass
class ExplainResult:
    """Seed-paired ledgered A/B runs plus their ledgers (for journeys)."""

    target: str
    af_runs: List[RunResult]
    atk_runs: List[RunResult]
    af_ledgers: List[PacketLedger]
    atk_ledgers: List[PacketLedger]

    def format(self, *, journeys: int = 0) -> str:
        lines = [
            drop_breakdown_table(
                self.af_runs,
                self.atk_runs,
                title=f"explain {self.target}: packet drop breakdown "
                f"({len(self.af_runs)} seed-paired run(s))",
            )
        ]
        af_rate = _mean_rate(self.af_runs)
        atk_rate = _mean_rate(self.atk_runs)
        lines.append(
            f"  reception: af={fmt_pct(af_rate)}  atk={fmt_pct(atk_rate)}"
        )
        attribution = dominant_loss(self.af_runs, self.atk_runs)
        if attribution is None:
            lines.append(
                "  the attack added no packet drops in these runs"
            )
        else:
            reason, excess, share = attribution
            lines.append(
                f"  dominant attack-induced loss: {reason} "
                f"(+{excess} packets, {share:.0%} of the added drops)"
            )
            if reason == reasons.UNREACHABLE_NEXT_HOP:
                lines.append(
                    "  -> GF handed packets to replayed neighbors that were "
                    "never in range; the unacknowledged link-layer unicast "
                    "died silently (paper vulnerability #3)."
                )
            elif reason == reasons.CBF_SUPPRESSED:
                lines.append(
                    "  -> replayed duplicates won CBF contention, so real "
                    "forwarders suppressed their own copies and the flood "
                    "starved (paper vulnerability #4)."
                )
        if journeys > 0:
            lines.append("")
            lines.extend(self._journey_lines(journeys))
        return "\n".join(lines)

    def _journey_lines(self, limit: int) -> List[str]:
        """Per-hop journeys of the first ``limit`` attacked packets that
        were NOT delivered (the interesting ones)."""
        lines = [f"journeys of up to {limit} undelivered attacked packets:"]
        shown = 0
        for ledger in self.atk_ledgers:
            for record in ledger.records():
                if shown >= limit:
                    return lines
                if record.deliveries:
                    continue
                pid = "/".join(str(p) for p in record.packet_id)
                lines.append(f"  [{record.kind}:{pid}] -> {record.outcome}")
                for event in ledger.journey(record.kind, record.packet_id):
                    lines.append(f"    {event.line()}")
                shown += 1
        if shown == 0:
            lines.append("  (none — every attacked packet was delivered)")
        return lines


def _mean_rate(runs: List[RunResult]) -> Optional[float]:
    if not runs:
        return None
    return sum(r.overall_rate for r in runs) / len(runs)


def explain(
    target: str,
    *,
    runs: int = 1,
    duration: float = 200.0,
    seed: int = 1,
    journeys: int = 0,
) -> ExplainResult:
    """Run ledgered seed-paired A/B simulations of ``target``.

    ``journeys > 0`` additionally records per-hop journey events (slightly
    more memory; still zero behaviour change) so that many undelivered
    packets can be printed hop by hop.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    af_runs: List[RunResult] = []
    atk_runs: List[RunResult] = []
    af_ledgers: List[PacketLedger] = []
    atk_ledgers: List[PacketLedger] = []
    want_journeys = journeys > 0
    for k in range(runs):
        run_seed = seed + k
        config = _config_for(target, duration=duration, seed=run_seed)
        for attacked, results, ledgers in (
            (False, af_runs, af_ledgers),
            (True, atk_runs, atk_ledgers),
        ):
            ledger = PacketLedger(journeys=want_journeys)
            results.append(
                run_single(
                    config, attacked=attacked, seed=run_seed, ledger=ledger
                )
            )
            ledgers.append(ledger)
    return ExplainResult(
        target=target,
        af_runs=af_runs,
        atk_runs=atk_runs,
        af_ledgers=af_ledgers,
        atk_ledgers=atk_ledgers,
    )


def conservation_report(result: ExplainResult) -> Dict[str, bool]:
    """Check the ledger invariant on every run: outcome counts sum to the
    number of originated packets.  Keys are ``"af-<seed>"``/``"atk-<seed>"``."""
    report: Dict[str, bool] = {}
    for label, runs, ledgers in (
        ("af", result.af_runs, result.af_ledgers),
        ("atk", result.atk_runs, result.atk_ledgers),
    ):
        for run, ledger in zip(runs, ledgers):
            totals = ledger.outcome_totals()
            report[f"{label}-{run.seed}"] = sum(totals.values()) == len(ledger)
    return report
