"""The A/B experiment runner.

Each *setting* is simulated as seed-paired attack-free (A) and attacked (B)
runs; γ/λ are computed from the mean per-bin reception rates exactly as the
paper defines (§IV-A).  ``processes > 1`` fans runs out over a
multiprocessing pool — every run is an isolated World, so this is safe.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import signal
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.config import AttackKind, ExperimentConfig
from repro.experiments.metrics import (
    BinnedRates,
    PacketOutcome,
    cumulative_drop_rates,
    mean_bin_rates,
    mean_drop_rate,
)
from repro.experiments.world import World
from repro.observability.ledger import PacketLedger


class RunTimeout(RuntimeError):
    """A run exceeded its wall-clock budget (raised in the executing
    process by :func:`alarm_deadline`)."""


@contextmanager
def alarm_deadline(timeout: Optional[float]) -> Iterator[None]:
    """Raise :class:`RunTimeout` in the current process after ``timeout``
    wall-clock seconds (``SIGALRM``-based, single-threaded runs only).

    ``None``/``0`` disables the guard, as does a platform without
    ``SIGALRM``.  Shared by the campaign pool worker and the service
    scheduler's lease workers so both enforce per-run budgets the same
    way; the previous alarm handler is restored on exit.
    """
    if not timeout or timeout <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded {timeout:.0f}s")

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    seed: int
    attacked: bool
    binned: BinnedRates
    overall_rate: float
    n_packets: int
    outcomes: List[PacketOutcome]
    extras: Dict[str, float] = field(default_factory=dict)
    #: Terminal-outcome counts from the packet-lifecycle ledger, keyed by
    #: :data:`repro.observability.OUTCOMES` reason strings.  ``None`` when
    #: the run executed without a ledger (the default).
    drop_breakdown: Optional[Dict[str, int]] = None


def run_single(
    config: ExperimentConfig,
    *,
    attacked: bool,
    seed: Optional[int] = None,
    ledger: Optional[PacketLedger] = None,
) -> RunResult:
    """Build a world, run it, and summarise.

    Pass a fresh :class:`PacketLedger` to additionally account every
    application packet's terminal outcome (``drop_breakdown`` and
    ``ledger_*`` extras).  The ledger is passive: the simulation itself is
    bit-identical with and without it.
    """
    world = World(config, attacked=attacked, seed=seed, ledger=ledger)
    world.run()
    return summarize_world(world)


def summarize_world(world: World) -> RunResult:
    """Fold a *completed* world into a :class:`RunResult`.

    Shared by :func:`run_single` and the checkpoint-resume path
    (:mod:`repro.experiments.checkpointing`), which finishes a restored
    world instead of a freshly built one — both must produce the identical
    record for the identical simulated timeline.
    """
    metrics = world.metrics
    attacked = world.attacked
    ledger = world.ledger
    stats = world.channel.stats
    extras: Dict[str, float] = {
        "frames_sent": float(stats.frames_sent),
        "frames_delivered": float(stats.frames_delivered),
        "unicast_lost": float(stats.unicast_lost),
        "vehicles_final": float(world.traffic.count_on_road()),
        # perf counters (see repro.experiments.reporting.PerfSnapshot)
        "events_fired": float(world.sim.events_fired),
        "wall_time_s": world.sim.wall_time_s,
        "events_per_wall_sec": world.sim.events_per_wall_sec,
        "mean_receivers_per_frame": stats.mean_receivers_per_frame,
        "mean_candidates_per_frame": stats.mean_candidates_per_frame,
    }
    if world.attacker is not None:
        # Summed over every deployed attacker (coordinated runs several
        # masts); single-attacker runs read identically to before.
        extras["replays_sent"] = float(
            sum(a.stats.replays_sent for a in world.attackers)
        )
        extras["frames_sniffed"] = float(
            sum(a.stats.frames_sniffed for a in world.attackers)
        )
        extras["attackers_deployed"] = float(len(world.attackers))
        withheld = sum(
            getattr(a, "replays_withheld", 0) for a in world.attackers
        )
        if withheld:
            extras["replays_withheld"] = float(withheld)
    if world.detection is not None:
        extras.update(world.detection.summary().extras())
    if world.fault_injector is not None:
        extras["frames_fault_dropped"] = float(stats.frames_fault_dropped)
        fault_stats = world.fault_injector.stats
        for f in dataclasses.fields(fault_stats):
            extras[f"fault_{f.name}"] = float(getattr(fault_stats, f.name))
    if world.invariant_checker is not None:
        extras["invariant_checks_run"] = float(world.invariant_checker.checks_run)
    for name, value in sorted(world.protocol_stat_totals().items()):
        extras[f"stats_{name}"] = float(value)
    drop_breakdown: Optional[Dict[str, int]] = None
    if ledger is not None:
        drop_breakdown = ledger.outcome_totals()
        for reason, count in drop_breakdown.items():
            extras[f"ledger_{reason}"] = float(count)
    return RunResult(
        seed=world.seed,
        attacked=attacked,
        binned=metrics.binned_rates(),
        overall_rate=metrics.overall_rate(),
        n_packets=len(metrics.outcomes),
        outcomes=list(metrics.outcomes),
        extras=extras,
        drop_breakdown=drop_breakdown,
    )


def _run_worker(args) -> RunResult:
    config, attacked, seed = args
    return run_single(config, attacked=attacked, seed=seed)


#: One unit of simulation work: (config, attacked, seed).
RunJob = Tuple[ExperimentConfig, bool, int]


def expand_jobs(
    config: ExperimentConfig, runs: int, *, base_seed: Optional[int] = None
) -> List[RunJob]:
    """The individual runs an A/B setting needs, in deterministic order.

    Shared by :func:`run_ab` (in-memory execution) and the campaign
    orchestrator (store lookup + pool fan-out), so both agree exactly on
    which ``(config, attacked, seed)`` runs make up a setting.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    base = config.seed if base_seed is None else base_seed
    jobs: List[RunJob] = []
    for k in range(runs):
        seed = base + k
        jobs.append((config, False, seed))
        if config.attack.kind is not AttackKind.NONE:
            jobs.append((config, True, seed))
    return jobs


@dataclass
class AbResult:
    """Aggregated A/B comparison for one setting."""

    config: ExperimentConfig
    af_runs: List[RunResult]
    atk_runs: List[RunResult]

    # ------------------------------------------------------------------
    # aggregated series
    # ------------------------------------------------------------------
    @property
    def af_bin_rates(self) -> List[Optional[float]]:
        """Attack-free mean reception rate per time bin."""
        return mean_bin_rates([r.binned for r in self.af_runs])

    @property
    def atk_bin_rates(self) -> List[Optional[float]]:
        """Attacked mean reception rate per time bin."""
        return mean_bin_rates([r.binned for r in self.atk_runs])

    @property
    def af_overall(self) -> float:
        """Attack-free reception rate over all packets of all runs."""
        return _overall(self.af_runs)

    @property
    def atk_overall(self) -> float:
        """Attacked reception rate over all packets of all runs."""
        return _overall(self.atk_runs)

    def drop_rate(self, *, relative: bool = True) -> Optional[float]:
        """γ (inter-area) / λ (intra-area) for this setting."""
        return mean_drop_rate(
            self.af_bin_rates, self.atk_bin_rates, relative=relative
        )

    def drop_confidence_interval(self) -> Optional[tuple]:
        """(mean, low, high) 95 % interval of the per-run paired reception
        drop — requires >= 2 seed-paired runs."""
        if len(self.af_runs) < 2 or len(self.af_runs) != len(self.atk_runs):
            return None
        from repro.analysis.stats import paired_difference_interval

        return paired_difference_interval(
            [r.overall_rate for r in self.af_runs],
            [r.overall_rate for r in self.atk_runs],
        )

    def cumulative_drops(self, *, relative: bool = True) -> List[Optional[float]]:
        """Accumulated drop rate over time (Fig 8 / Fig 10 series)."""
        return cumulative_drop_rates(
            self.af_bin_rates, self.atk_bin_rates, relative=relative
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        gamma = self.drop_rate()
        gamma_txt = f"{gamma:6.1%}" if gamma is not None else "   n/a"
        return (
            f"{self.config.label or self.config.attack.kind.value:<28} "
            f"af={self.af_overall:6.1%}  atk={self.atk_overall:6.1%}  "
            f"drop={gamma_txt}  runs={len(self.af_runs)}"
        )


def _overall(runs: Sequence[RunResult]) -> float:
    total = sum(r.n_packets for r in runs)
    if total == 0:
        return 0.0
    return sum(r.overall_rate * r.n_packets for r in runs) / total


def run_ab(
    config: ExperimentConfig,
    *,
    runs: int = 3,
    base_seed: Optional[int] = None,
    processes: int = 1,
) -> AbResult:
    """Run seed-paired A/B simulations for one setting.

    The attack-free twin of each attacked run uses the same seed, so the
    traffic and the workload are identical packet-for-packet.
    """
    jobs = expand_jobs(config, runs, base_seed=base_seed)
    if processes > 1 and len(jobs) > 1:
        with multiprocessing.Pool(processes=min(processes, len(jobs))) as pool:
            results = pool.map(_run_worker, jobs)
    else:
        results = [_run_worker(job) for job in jobs]
    af_runs = [r for r in results if not r.attacked]
    atk_runs = [r for r in results if r.attacked]
    return AbResult(config=config, af_runs=af_runs, atk_runs=atk_runs)
