"""Mitigation overhead analysis (paper §V-A's design rationale).

The paper rejects two alternative defences on overhead grounds before
proposing the plausibility check:

* *"Encrypting beacons sent every three seconds introduces non-negligible
  overhead to both beacon senders and receivers"*;
* *"Using acknowledgment for packet forwarding ... reduces communication
  efficiency when ACKs are lost"* and adds a frame per hop.

This module turns those sentences into numbers: given a finished run's
channel statistics, it models the extra on-air bytes and cryptographic
operations each candidate defence would have cost, using the wire-format
sizes from :mod:`repro.geonet.wire` and published cost figures for
ECIES/AES-CCM operations on automotive HSMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.geonet.wire import ENCRYPTION_OVERHEAD, beacon_size
from repro.radio.channel import ChannelStats
from repro.radio.frames import FrameKind

#: Cryptographic cost model (milliseconds per operation, automotive-grade
#: ECDSA/ECIES figures; the ratios are what matters).
SIGN_MS = 1.2
VERIFY_MS = 1.8
ENCRYPT_MS = 0.9
DECRYPT_MS = 0.9


@dataclass(frozen=True)
class MitigationCost:
    """Modelled per-run cost of one defence option."""

    name: str
    extra_bytes_on_air: float
    extra_crypto_ms: float
    extra_frames: float
    notes: str

    def row(self) -> str:
        return (
            f"  {self.name:<24} +{self.extra_bytes_on_air / 1024:8.1f} KiB  "
            f"+{self.extra_crypto_ms:9.1f} ms crypto  "
            f"+{self.extra_frames:6.0f} frames   {self.notes}"
        )


def analyse(
    stats: ChannelStats, *, duration: float, payload: str = "hazard-warning"
) -> Dict[str, MitigationCost]:
    """Model the §V-A defence alternatives for one finished run."""
    beacons_sent = stats.sent_by_kind.get(FrameKind.BEACON, 0)
    beacons_received = stats.delivered_by_kind.get(FrameKind.BEACON, 0)
    unicasts_sent = stats.sent_by_kind.get(FrameKind.GEO_UNICAST, 0)

    encrypt_beacons = MitigationCost(
        name="encrypt beacons",
        extra_bytes_on_air=beacons_sent * ENCRYPTION_OVERHEAD,
        extra_crypto_ms=(
            beacons_sent * ENCRYPT_MS + beacons_received * DECRYPT_MS
        ),
        extra_frames=0,
        notes="every sender encrypts; every receiver decrypts",
    )
    ack_forwarding = MitigationCost(
        name="per-hop ACKs",
        extra_bytes_on_air=unicasts_sent * beacon_size(),  # ACK ≈ header+PV
        extra_crypto_ms=unicasts_sent * (SIGN_MS + VERIFY_MS),
        extra_frames=float(unicasts_sent),
        notes="one signed ACK frame per GF hop; loses efficiency when lost",
    )
    plausibility_check = MitigationCost(
        name="plausibility check",
        extra_bytes_on_air=0.0,
        extra_crypto_ms=0.0,
        extra_frames=0.0,
        notes="one local distance comparison per forwarding decision",
    )
    return {
        cost.name: cost
        for cost in (encrypt_beacons, ack_forwarding, plausibility_check)
    }


def format_analysis(
    stats: ChannelStats, *, duration: float
) -> str:
    """Human-readable §V-A overhead comparison for one run."""
    costs = analyse(stats, duration=duration)
    lines = [
        f"mitigation overhead model over a {duration:.0f}s run "
        f"({stats.frames_sent} frames on air):"
    ]
    lines.extend(cost.row() for cost in costs.values())
    lines.append(
        "  -> the forwarding-time plausibility check is the only option "
        "with zero channel and crypto overhead (paper §V-A)."
    )
    return "\n".join(lines)
