"""Experiment harness: world building, A/B running, metrics, figure drivers.

The paper's methodology (§IV): every setting is simulated with A/B testing —
A is the attacker-free scenario, B the attacked one, with identical seeds so
the traffic and the workload are the same packet-for-packet.  Reception
rates are computed per 5 s time bin over 200 s; the interception rate γ
(inter-area) and blockage rate λ (intra-area) are the average attack-free →
attacked drop across the bins, averaged over runs.

One driver module per paper artefact lives in
:mod:`repro.experiments.figures`.
"""

from repro.experiments.config import (
    AttackConfig,
    AttackKind,
    ExperimentConfig,
    RoadConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.experiments.metrics import (
    BinnedRates,
    PacketOutcome,
    RunMetrics,
    cumulative_drop_rates,
    mean_drop_rate,
)
from repro.experiments.runner import AbResult, RunResult, run_ab, run_single
from repro.experiments.world import World

__all__ = [
    "AbResult",
    "AttackConfig",
    "AttackKind",
    "BinnedRates",
    "ExperimentConfig",
    "PacketOutcome",
    "RoadConfig",
    "RunMetrics",
    "RunResult",
    "WorkloadConfig",
    "WorkloadKind",
    "World",
    "cumulative_drop_rates",
    "mean_drop_rate",
    "run_ab",
    "run_single",
]
