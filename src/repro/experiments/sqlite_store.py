"""SQLite result-store backend: one WAL-mode database instead of 10^6 files.

Records are byte-identical to the JSON backend's — the same schema-versioned
dict, serialised as canonical JSON into a ``payload`` column keyed by
``(target, config_hash, seed, attacked)`` — so the two backends are
interchangeable run for run (the store contract tests pin this parity).
What changes is the medium:

* **WAL mode** — readers never block writers; independent worker
  processes append concurrently through their own connections, serialised
  only at commit (``busy_timeout`` absorbs contention instead of erroring).
* **Batched atomic appends** — :meth:`SqliteResultStore.batch` coalesces
  every write inside the block into one transaction.  The lease queue
  (:mod:`repro.experiments.service.leases`) rides the same connection, so
  a worker can persist a result *and* complete its lease atomically: a
  SIGKILL mid-commit leaves either both or neither, never a half state.
* **Quarantine parity** — a row whose payload no longer parses is moved
  to a ``quarantine`` table (evidence preserved, key reads as absent and
  is rewritable), mirroring the JSON backend's ``*.json.corrupt`` rename.
* **Schema versioning** — rows from an incompatible ``schema`` read as
  absent but stay in place, exactly like the JSON backend.

Connections are per-thread and per-process: a store object that crosses
a ``fork`` (the campaign pool, service workers) transparently reopens
its connection in the child, and every thread (status-endpoint handlers,
lease heartbeats) gets its own connection — SQLite connections must not
be shared across forks or threads.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.experiments.store import (
    ResultStoreBase,
    RunKey,
    SCHEMA_VERSION,
    StoreError,
)

#: Bumped when the *database* layout (tables/columns) changes incompatibly.
#: Independent of the record SCHEMA_VERSION, which versions payload dicts.
DB_FORMAT_VERSION = 1

_CREATE_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    target      TEXT    NOT NULL,
    config_hash TEXT    NOT NULL,
    seed        INTEGER NOT NULL,
    attacked    INTEGER NOT NULL,
    kind        TEXT    NOT NULL,
    schema      INTEGER NOT NULL,
    payload     TEXT    NOT NULL,
    PRIMARY KEY (target, config_hash, seed, attacked)
);
CREATE TABLE IF NOT EXISTS quarantine (
    target      TEXT    NOT NULL,
    config_hash TEXT    NOT NULL,
    seed        INTEGER NOT NULL,
    attacked    INTEGER NOT NULL,
    payload     TEXT    NOT NULL,
    reason      TEXT    NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id   TEXT PRIMARY KEY,
    state    TEXT    NOT NULL,
    worker   TEXT,
    deadline REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    error    TEXT
);
CREATE TABLE IF NOT EXISTS checkpoints (
    target      TEXT    NOT NULL,
    config_hash TEXT    NOT NULL,
    seed        INTEGER NOT NULL,
    attacked    INTEGER NOT NULL,
    sim_time    REAL    NOT NULL,
    payload     TEXT    NOT NULL,
    PRIMARY KEY (target, config_hash, seed, attacked)
);
CREATE TABLE IF NOT EXISTS checkpoint_quarantine (
    target      TEXT    NOT NULL,
    config_hash TEXT    NOT NULL,
    seed        INTEGER NOT NULL,
    attacked    INTEGER NOT NULL,
    payload     TEXT    NOT NULL,
    reason      TEXT    NOT NULL
);
"""


class SqliteResultStore(ResultStoreBase):
    """Result store backed by one SQLite database file (WAL mode)."""

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        *,
        busy_timeout_s: float = 30.0,
    ):
        self.path = Path(path)
        self.busy_timeout_s = busy_timeout_s
        # One connection per (thread, process): SQLite connections are
        # neither fork- nor thread-shareable.  Batch state rides with the
        # connection, so a batch is a property of the thread that opened it.
        self._tls = threading.local()
        # Open eagerly so a bad path fails at construction, not first write.
        self._conn()

    def describe(self) -> str:
        return f"sqlite:{self.path}"

    @property
    def _in_batch(self) -> bool:
        return getattr(self._tls, "in_batch", False)

    @_in_batch.setter
    def _in_batch(self, value: bool) -> None:
        self._tls.in_batch = value

    # -- connection management ------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        """This thread's connection, (re)opened after a fork.

        Thread-local so the status endpoint's HTTP handler threads (and
        the workers' heartbeat threads) read through their own
        connections while the executing thread's transactions stay
        isolated to its connection."""
        pid = os.getpid()
        if (
            getattr(self._tls, "connection", None) is None
            or self._tls.connection_pid != pid
        ):
            # A connection inherited over fork must never be used (or even
            # closed) in the child; drop the reference and open fresh.
            self._tls.connection = None
            self._tls.in_batch = False
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path, isolation_level=None)
            conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}")
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_CREATE_SQL)
            conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("db_format", str(DB_FORMAT_VERSION)),
            )
            row = conn.execute(
                "SELECT value FROM meta WHERE key='db_format'"
            ).fetchone()
            if row is not None and int(row[0]) != DB_FORMAT_VERSION:
                conn.close()
                raise StoreError(
                    f"{self.path} uses database format {row[0]}, "
                    f"this code expects {DB_FORMAT_VERSION}"
                )
            self._tls.connection = conn
            self._tls.connection_pid = pid
        return self._tls.connection

    def close(self) -> None:
        """Close this thread's connection (other threads' stay open)."""
        conn = getattr(self._tls, "connection", None)
        if conn is not None and self._tls.connection_pid == os.getpid():
            conn.close()
        self._tls.connection = None
        self._tls.connection_pid = None

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One IMMEDIATE transaction — or the enclosing batch's, if open."""
        conn = self._conn()
        if self._in_batch:
            yield conn
            return
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    @contextmanager
    def batch(self) -> Iterator["SqliteResultStore"]:
        """Coalesce all writes in the block into one atomic transaction."""
        conn = self._conn()
        if self._in_batch:  # nested batches join the outer transaction
            yield self
            return
        conn.execute("BEGIN IMMEDIATE")
        self._in_batch = True
        try:
            yield self
        except BaseException:
            self._in_batch = False
            conn.execute("ROLLBACK")
            raise
        self._in_batch = False
        conn.execute("COMMIT")

    # -- raw records ----------------------------------------------------
    def _write_record(self, key: RunKey, record: Dict[str, Any]) -> RunKey:
        payload = json.dumps(record, separators=(",", ":"))
        with self._txn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO records "
                "(target, config_hash, seed, attacked, kind, schema, payload) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    key.target,
                    key.config_hash,
                    key.seed,
                    int(key.attacked),
                    str(record.get("kind", "")),
                    int(record.get("schema", -1)),
                    payload,
                ),
            )
        return key

    def get_record(self, key: RunKey) -> Optional[Dict[str, Any]]:
        """The raw record for ``key``; None if absent, quarantined, or from
        an incompatible schema version (kept in place, like the JSON
        backend).  An unparseable payload is moved to the ``quarantine``
        table so the key reads as absent and is re-run on resume."""
        row = self._conn().execute(
            "SELECT schema, payload FROM records "
            "WHERE target=? AND config_hash=? AND seed=? AND attacked=?",
            (key.target, key.config_hash, key.seed, int(key.attacked)),
        ).fetchone()
        if row is None:
            return None
        schema, payload = row
        try:
            record = json.loads(payload)
        except (TypeError, json.JSONDecodeError):
            self._quarantine(key, payload, "unparseable payload")
            return None
        if not isinstance(record, dict):
            self._quarantine(key, payload, "non-dict payload")
            return None
        if record.get("schema") != SCHEMA_VERSION or schema != SCHEMA_VERSION:
            return None
        return record

    def _quarantine(self, key: RunKey, payload: Any, reason: str) -> None:
        """Move a corrupt row aside; best-effort, never raises."""
        try:
            with self._txn() as conn:
                conn.execute(
                    "INSERT INTO quarantine "
                    "(target, config_hash, seed, attacked, payload, reason) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        key.target,
                        key.config_hash,
                        key.seed,
                        int(key.attacked),
                        str(payload),
                        reason,
                    ),
                )
                conn.execute(
                    "DELETE FROM records "
                    "WHERE target=? AND config_hash=? AND seed=? AND attacked=?",
                    (key.target, key.config_hash, key.seed, int(key.attacked)),
                )
        except sqlite3.Error:
            pass

    def quarantine_count(self) -> int:
        return int(
            self._conn().execute("SELECT COUNT(*) FROM quarantine").fetchone()[0]
        )

    # -- checkpoints -----------------------------------------------------
    def put_checkpoint(self, key: RunKey, envelope: Dict[str, Any]) -> RunKey:
        payload = json.dumps(envelope, separators=(",", ":"))
        try:
            sim_time = float(envelope.get("sim_time", 0.0))
        except (TypeError, ValueError):
            sim_time = 0.0
        with self._txn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO checkpoints "
                "(target, config_hash, seed, attacked, sim_time, payload) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    key.target,
                    key.config_hash,
                    key.seed,
                    int(key.attacked),
                    sim_time,
                    payload,
                ),
            )
        return key

    def get_checkpoint(self, key: RunKey) -> Optional[Dict[str, Any]]:
        row = self._conn().execute(
            "SELECT payload FROM checkpoints "
            "WHERE target=? AND config_hash=? AND seed=? AND attacked=?",
            (key.target, key.config_hash, key.seed, int(key.attacked)),
        ).fetchone()
        if row is None:
            return None
        try:
            envelope = json.loads(row[0])
        except (TypeError, json.JSONDecodeError):
            self.quarantine_checkpoint(key, "unparseable checkpoint payload")
            return None
        if not isinstance(envelope, dict):
            self.quarantine_checkpoint(key, "non-dict checkpoint payload")
            return None
        return envelope

    def delete_checkpoint(self, key: RunKey) -> None:
        with self._txn() as conn:
            conn.execute(
                "DELETE FROM checkpoints "
                "WHERE target=? AND config_hash=? AND seed=? AND attacked=?",
                (key.target, key.config_hash, key.seed, int(key.attacked)),
            )

    def quarantine_checkpoint(self, key: RunKey, reason: str) -> None:
        try:
            with self._txn() as conn:
                row = conn.execute(
                    "SELECT payload FROM checkpoints "
                    "WHERE target=? AND config_hash=? AND seed=? AND attacked=?",
                    (key.target, key.config_hash, key.seed, int(key.attacked)),
                ).fetchone()
                if row is None:
                    return
                conn.execute(
                    "INSERT INTO checkpoint_quarantine "
                    "(target, config_hash, seed, attacked, payload, reason) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        key.target,
                        key.config_hash,
                        key.seed,
                        int(key.attacked),
                        str(row[0]),
                        reason,
                    ),
                )
                conn.execute(
                    "DELETE FROM checkpoints "
                    "WHERE target=? AND config_hash=? AND seed=? AND attacked=?",
                    (key.target, key.config_hash, key.seed, int(key.attacked)),
                )
        except sqlite3.Error:
            pass

    def checkpoint_quarantine_count(self) -> int:
        return int(
            self._conn().execute(
                "SELECT COUNT(*) FROM checkpoint_quarantine"
            ).fetchone()[0]
        )

    def checkpoint_sim_time(self, key: RunKey) -> Optional[float]:
        """Answered from the indexed ``sim_time`` column — the status
        endpoint polls this per job, so the multi-MiB payload stays cold."""
        row = self._conn().execute(
            "SELECT sim_time FROM checkpoints "
            "WHERE target=? AND config_hash=? AND seed=? AND attacked=?",
            (key.target, key.config_hash, key.seed, int(key.attacked)),
        ).fetchone()
        if row is None:
            return None
        return float(row[0])

    # -- queries --------------------------------------------------------
    def iter_keys(self) -> Iterator[RunKey]:
        rows = self._conn().execute(
            "SELECT target, config_hash, seed, attacked FROM records "
            "ORDER BY target, config_hash, seed, attacked"
        ).fetchall()
        for target, config_hash, seed, attacked in rows:
            try:
                yield RunKey(
                    target=target,
                    config_hash=config_hash,
                    seed=int(seed),
                    attacked=bool(attacked),
                )
            except StoreError:  # pragma: no cover - defensive
                continue

    def count(self) -> int:
        return int(
            self._conn().execute("SELECT COUNT(*) FROM records").fetchone()[0]
        )

    def kind_counts(self) -> Dict[str, int]:
        """``{kind: row count}`` in one query (status-endpoint helper)."""
        rows = self._conn().execute(
            "SELECT kind, COUNT(*) FROM records GROUP BY kind"
        ).fetchall()
        return {str(kind): int(n) for kind, n in rows}
