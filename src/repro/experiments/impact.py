"""Traffic-efficiency impact study (paper §IV-B, Fig 11a / Fig 12).

A hazard blocks both eastbound lanes 3 600 m into the segment at t=5 s.
The stopped vehicle at the event site broadcasts a warning once per second;
an entrance gate node (standing for the drivers about to enter) stops
admission when it receives the warning:

* **case 1 (GF)** — the road starts *empty* and fills from the entrance,
  so the warning can only hop westward once entering traffic bridges the
  hazard-to-entrance gap (the paper's attack-free notification lands after
  ~60 s "due to the low efficiency of the GF algorithm"; in our substrate
  the delay is the network-fill time, ~110-190 s).  The warning is
  GeoBroadcast toward a destination area at the road entrance and the
  attacker runs the *inter-area interception attack*.  Substitution note:
  the paper runs this case on a two-direction road.  Strictly standard GF
  (rank by distance to destination over all live-TTL LocT entries, no
  reachability check — that absence is vulnerability #2) systematically
  prefers opposing-direction vehicles that have just receded out of range,
  so westward relaying over mixed traffic never delivers at all and the
  paper's attack-free/attacked contrast would vanish.  A single-direction
  road preserves the demonstrated mechanism: GF delivers (late) when
  attack-free and never under the interception attack.
* **case 2 (CBF)** — the road starts populated; the warning floods the whole
  segment and is received "immediately" attack-free.  The gate sits inside
  the area and the attacker runs the *intra-area blockage attack* with the
  500 m optimum range.

The reported series is the number of eastbound vehicles on the road over
time: attack-free runs plateau once the warning gets through; attacked runs
keep growing — the traffic jam the paper shows in Fig 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.config import (
    AttackConfig,
    AttackKind,
    ExperimentConfig,
    RoadConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.experiments.world import World
from repro.geo.position import Position
from repro.geonet.node import GeoNode, StaticMobility
from repro.radio.technology import DSRC
from repro.sim.process import every
from repro.traffic.hazard import HazardEvent
from repro.traffic.road import Direction

HAZARD_X = 3600.0
HAZARD_TIME = 5.0
WARNING_PAYLOAD = "hazard-at-3600m"


@dataclass
class ImpactRun:
    """One run's vehicle-count series and notification outcome."""

    attacked: bool
    times: List[float] = field(default_factory=list)
    east_counts: List[int] = field(default_factory=list)
    block_time: Optional[float] = None
    warnings_sent: int = 0

    @property
    def final_count(self) -> int:
        return self.east_counts[-1] if self.east_counts else 0


@dataclass
class ImpactComparison:
    """Seed-paired A/B series for one case (a Fig 12 panel)."""

    case: str
    af: ImpactRun
    atk: ImpactRun

    def format(self) -> str:
        def block(run: ImpactRun) -> str:
            return (
                f"entrance blocked at t={run.block_time:.1f}s"
                if run.block_time is not None
                else "entrance never blocked"
            )

        return (
            f"Fig12 case {self.case}: eastbound vehicles on road\n"
            f"  attack-free: final={self.af.final_count:3d}  {block(self.af)}\n"
            f"  attacked:    final={self.atk.final_count:3d}  {block(self.atk)}\n"
            f"  jam delta:   +{self.atk.final_count - self.af.final_count} vehicles"
        )


def impact_config(
    case: str,
    *,
    duration: float = 200.0,
    seed: int = 1,
    spawn_gap: Optional[float] = None,
    attack_range: Optional[float] = None,
) -> ExperimentConfig:
    """Scenario config for case '1' (GF / inter-area) or '2' (CBF / intra).

    ``spawn_gap`` defaults to 55 m (an entry rate of ~1 veh/s/direction,
    matching the vehicle counts the paper's Fig 12 implies).
    """
    if spawn_gap is None:
        spawn_gap = 55.0
    if case == "1":
        base = ExperimentConfig.inter_area_default(duration=duration, seed=seed)
        attack = AttackConfig(
            kind=AttackKind.INTER_AREA,
            attack_range=DSRC.nlos_median_m if attack_range is None else attack_range,
        )
        workload = WorkloadConfig(kind=WorkloadKind.INTER_AREA)
    elif case == "2":
        base = ExperimentConfig.intra_area_default(duration=duration, seed=seed)
        attack = AttackConfig(
            kind=AttackKind.INTRA_AREA,
            attack_range=500.0 if attack_range is None else attack_range,
        )
        workload = WorkloadConfig(kind=WorkloadKind.INTRA_AREA)
    else:
        raise ValueError(f"case must be '1' or '2', got {case!r}")
    return base.with_(
        road=RoadConfig(
            # Case 1 runs one-way and starts empty (see module docstring);
            # case 2 keeps the two-direction road and starts populated, as
            # its immediate CBF reception implies.
            directions=1 if case == "1" else 2,
            inter_vehicle_space=spawn_gap,
            prepopulate=(case == "2"),
            spawn=True,
        ),
        attack=attack,
        workload=workload,
        label=f"fig12-case{case}",
    )


class _ImpactScenario:
    """Installs hazard, warning source, entrance gate and sampler in a world."""

    def __init__(self, case: str, run: ImpactRun):
        self.case = case
        self.run = run
        self.gate: Optional[GeoNode] = None
        self.reporter: Optional[GeoNode] = None
        self.world: Optional[World] = None

    def build(self, world: World) -> None:
        self.world = world
        world.traffic.add_hazard(
            HazardEvent(x=HAZARD_X, direction=Direction.EAST, start_time=HAZARD_TIME)
        )
        # The stopped vehicle at the event site reports the hazard.
        east_lane_y = world.road.eastbound_lanes[0].y
        self.reporter = GeoNode(
            sim=world.sim,
            channel=world.channel,
            config=world.config.geonet,
            credentials=world.ca.enroll("hazard-reporter"),
            mobility=StaticMobility(Position(HAZARD_X - 5.0, east_lane_y)),
            tx_range=world.config.vehicle_range,
            rng=world.streams.get("beacon:reporter"),
            name="hazard-reporter",
        )
        if self.case == "1":
            # The west destination node doubles as the entrance gate: it
            # stands for the drivers waiting to enter at x=0.
            self.gate = next(
                node for node in world.dest_nodes if node.name == "dest-west"
            )
        else:
            width = world.road.total_width
            self.gate = GeoNode(
                sim=world.sim,
                channel=world.channel,
                config=world.config.geonet,
                credentials=world.ca.enroll("entrance-gate"),
                mobility=StaticMobility(Position(2.0, width / 2)),
                tx_range=world.config.vehicle_range,
                rng=world.streams.get("beacon:gate"),
                name="entrance-gate",
            )
        self.gate.router.on_deliver.append(self._on_gate_delivery)
        every(
            world.sim,
            1.0,
            self._send_warning_tick,
            start_delay=HAZARD_TIME,
        )
        every(world.sim, 1.0, self._sample_tick, start_delay=0.0)

    # ------------------------------------------------------------------
    def _send_warning_tick(self) -> None:
        self._send_warning(self.world)

    def _sample_tick(self) -> None:
        self._sample(self.world)

    # ------------------------------------------------------------------
    def _on_gate_delivery(self, node: GeoNode, packet) -> None:
        if packet.body.payload != WARNING_PAYLOAD:
            return
        if self.run.block_time is None:
            self.run.block_time = node.sim.now
        # Drivers at the entrance refuse to enter the blocked direction.
        if self.world is not None and self.world.spawner is not None:
            self.world.spawner.block(Direction.EAST)

    # ------------------------------------------------------------------
    def _send_warning(self, world: World) -> None:
        """The stopped vehicle at the event site warns upstream traffic."""
        if self.case == "1":
            area = world.dest_areas[Direction.WEST]
        else:
            area = world.flood_area
        self.reporter.originate(area, WARNING_PAYLOAD)
        self.run.warnings_sent += 1

    def _sample(self, world: World) -> None:
        self.run.times.append(world.sim.now)
        self.run.east_counts.append(world.traffic.count_on_road(Direction.EAST))


def run_impact_case(
    case: str,
    *,
    attacked: bool,
    duration: float = 200.0,
    seed: int = 1,
    spawn_gap: Optional[float] = None,
    attack_range: Optional[float] = None,
) -> ImpactRun:
    """Run one impact scenario and return its vehicle-count series."""
    config = impact_config(
        case,
        duration=duration,
        seed=seed,
        spawn_gap=spawn_gap,
        attack_range=attack_range,
    )
    run = ImpactRun(attacked=attacked)
    scenario = _ImpactScenario(case, run)
    world = World(config, attacked=attacked, seed=seed, build_workload=scenario.build)
    world.run()
    return run


def compare_impact(
    case: str,
    *,
    duration: float = 200.0,
    seed: int = 1,
    spawn_gap: Optional[float] = None,
    attack_range: Optional[float] = None,
) -> ImpactComparison:
    """Seed-paired A/B comparison for one Fig 12 panel."""
    af = run_impact_case(
        case,
        attacked=False,
        duration=duration,
        seed=seed,
        spawn_gap=spawn_gap,
        attack_range=attack_range,
    )
    atk = run_impact_case(
        case,
        attacked=True,
        duration=duration,
        seed=seed,
        spawn_gap=spawn_gap,
        attack_range=attack_range,
    )
    return ImpactComparison(case=case, af=af, atk=atk)
