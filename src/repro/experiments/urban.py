"""Urban sweep: both attacks across scenario × DCC × forwarder.

The paper evaluates its attacks on a straight 4 000 m highway with plain
CBF and no congestion control.  This target re-runs the inter-area
interception and intra-area blockage A/B comparisons over the full
mitigation-relevant grid: {highway, urban Manhattan grid} × {DCC off, on}
× {CBF, S-FoT+}.  The questions it answers:

* does corner shadowing (urban) blunt or amplify each attack?  The
  attacker sits on-street with LoS down two corridors, while victim
  traffic is fragmented by NLoS corners;
* does DCC throttling change the attack picture (a gated forwarder is a
  free suppression the attacker didn't have to pay for);
* does S-FoT+'s duplicate-count cancellation actually resist the
  single-replay CBF suppression that powers the intra-area attack.

Levels are module constants so tests can shrink the grid by monkeypatching
(worker processes inherit the patched values through fork), and
:data:`URBAN_OVERRIDES` lets tests swap in a small grid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures.fig7 import AbRunner
from repro.experiments.reporting import fmt_pct
from repro.experiments.runner import AbResult, run_ab

#: Attacks swept (each with its paper-default workload and attacker).
ATTACKS: Tuple[str, ...] = ("inter-area", "intra-area")

#: Road scenarios swept ("highway" is the paper's setting).
SCENARIOS: Tuple[str, ...] = ("highway", "urban")

#: DCC gate levels swept (False = the paper's uncongested-channel setting).
DCC_LEVELS: Tuple[bool, ...] = (False, True)

#: GBC forwarder variants swept ("cbf" is the paper's).
FORWARDERS: Tuple[str, ...] = ("cbf", "sfot+")

#: :class:`~repro.experiments.config.UrbanConfig` overrides applied to the
#: urban cells (empty = the 4×4 / 250 m defaults); tests shrink the grid
#: here.
URBAN_OVERRIDES: Dict[str, Any] = {}


@dataclass
class UrbanCell:
    """One (attack, scenario, dcc, forwarder) grid point."""

    attack: str
    scenario: str
    dcc: bool
    forwarder: str
    result: AbResult

    def row(self) -> str:
        r = self.result
        return (
            f"  {self.attack:<10} {self.scenario:<7} "
            f"dcc={'on ' if self.dcc else 'off'} fwd={self.forwarder:<5} "
            f"af={fmt_pct(r.af_overall)}  atk={fmt_pct(r.atk_overall)}  "
            f"drop={fmt_pct(r.drop_rate())} "
            f"(abs {fmt_pct(r.drop_rate(relative=False))})"
        )


@dataclass
class UrbanSweepResult:
    """The full attack × scenario × DCC × forwarder grid."""

    cells: List[UrbanCell]

    def get(
        self, attack: str, scenario: str, dcc: bool, forwarder: str
    ) -> UrbanCell:
        for cell in self.cells:
            if (
                cell.attack == attack
                and cell.scenario == scenario
                and cell.dcc == dcc
                and cell.forwarder == forwarder
            ):
                return cell
        raise KeyError((attack, scenario, dcc, forwarder))

    def format(self) -> str:
        lines = [
            "urban: attack effectiveness across scenario x DCC x forwarder",
            "  (af = attack-free success, atk = attacked, drop = relative "
            "attack-induced loss)",
        ]
        lines.extend(cell.row() for cell in self.cells)
        if any(
            c.scenario == "highway" and not c.dcc and c.forwarder == "cbf"
            for c in self.cells
        ):
            lines.append(
                "  note: the highway/dcc=off/cbf rows reproduce the paper's "
                "baseline setting"
            )
        return "\n".join(lines)


def _base_config(attack: str, *, duration: float, seed: int) -> ExperimentConfig:
    if attack == "inter-area":
        return ExperimentConfig.inter_area_default(duration=duration, seed=seed)
    return ExperimentConfig.intra_area_default(duration=duration, seed=seed)


def urban_sweep(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> UrbanSweepResult:
    """Sweep both attacks over :data:`SCENARIOS` × :data:`DCC_LEVELS` ×
    :data:`FORWARDERS`."""
    cells: List[UrbanCell] = []
    for attack in ATTACKS:
        base = _base_config(attack, duration=duration, seed=seed)
        for scenario in SCENARIOS:
            scen_cfg = (
                base.urbanized(**URBAN_OVERRIDES)
                if scenario == "urban"
                else base
            )
            for dcc in DCC_LEVELS:
                for forwarder in FORWARDERS:
                    config = scen_cfg.with_(
                        geonet=replace(
                            scen_cfg.geonet,
                            dcc_enabled=dcc,
                            cbf_variant=forwarder,
                        ),
                        label=(
                            f"{attack}-{scenario}-"
                            f"dcc{'on' if dcc else 'off'}-{forwarder}"
                        ),
                    )
                    result = runner(config, runs=runs, processes=processes)
                    cells.append(
                        UrbanCell(
                            attack=attack,
                            scenario=scenario,
                            dcc=dcc,
                            forwarder=forwarder,
                            result=result,
                        )
                    )
    return UrbanSweepResult(cells=cells)
