"""Checkpoint-aware run execution: interval snapshots, drain, resume.

:func:`run_single_resumable` is the preemption-safe counterpart of
:func:`~repro.experiments.runner.run_single`.  It simulates the same world
but in segments: every ``interval`` seconds of *simulation* time the whole
world is snapshotted (:mod:`repro.sim.checkpoint`) and persisted as the
run's single checkpoint envelope in the result store — atomically
overwritten in place, so the newest valid checkpoint is always the one on
record.  Because segmented ``run_until`` calls are bit-identical to one
uninterrupted call, a run that resumes from any of these checkpoints
produces the byte-identical final record.

Resume is automatic: if the store holds a valid checkpoint for the run's
key, execution continues from its simulation time instead of t=0.  A
checkpoint that fails validation (unknown version, digest mismatch,
identity mismatch, unpicklable payload) is *quarantined* and the run falls
back to from-scratch execution — a bad checkpoint can cost time, never
correctness.

Preemption: a SIGTERM received mid-run triggers a graceful drain — the
event loop stops at the next event boundary, a final checkpoint is saved,
and :class:`GracefulPreemption` (a ``SystemExit``) unwinds the worker.  The
successor process adopts the checkpoint and re-simulates only the tail.
Checkpoints are garbage-collected when the run completes (the service
worker deletes them in the same transaction that commits the result).
"""

from __future__ import annotations

import math
import signal
from typing import Any, Callable, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunResult, summarize_world
from repro.experiments.store import (
    ResultStoreBase,
    RunKey,
    SCHEMA_VERSION,
)
from repro.experiments.world import World
from repro.observability.ledger import PacketLedger
from repro.sim.checkpoint import (
    CheckpointError,
    decode_envelope,
    encode_envelope,
)

#: Simulation seconds between checkpoints when checkpointing is enabled
#: without an explicit interval.  Re-simulated time after a crash is less
#: than one interval by construction.  120 sim-seconds keeps the
#: steady-state overhead well under 5% wall on the heaviest (dense-500)
#: scenario — one ~0.25s snapshot per ~9s of simulation wall — while a
#: lost worker re-simulates at most ~10s of wall-clock work.
DEFAULT_CHECKPOINT_INTERVAL = 120.0


class GracefulPreemption(SystemExit):
    """Raised after a SIGTERM-triggered drain checkpoint has been saved.

    A ``SystemExit`` subclass so worker loops treat it as an exit request
    (fail the lease for the successor, then terminate) rather than a
    simulation error.
    """


#: Test seams (module-level so fork-inherited monkeypatches reach worker
#: processes): called as ``hook(key, sim_time)`` after every persisted
#: checkpoint / after a successful checkpoint adoption.  Production leaves
#: both as None.
_post_checkpoint_hook: Optional[Callable[[RunKey, float], None]] = None
_on_resume_hook: Optional[Callable[[RunKey, float], None]] = None


def save_checkpoint(
    store: ResultStoreBase, key: RunKey, world: World
) -> None:
    """Snapshot ``world`` and persist it as ``key``'s checkpoint."""
    envelope = encode_envelope(
        world.snapshot(),
        sim_time=world.sim.now,
        meta={
            "schema": SCHEMA_VERSION,
            "target": key.target,
            "config_hash": key.config_hash,
            "seed": key.seed,
            "attacked": key.attacked,
        },
    )
    store.put_checkpoint(key, envelope)
    if _post_checkpoint_hook is not None:
        _post_checkpoint_hook(key, world.sim.now)


def load_checkpoint(
    store: ResultStoreBase, key: RunKey
) -> Optional[World]:
    """The restored world for ``key``'s stored checkpoint, or None.

    Anything invalid — wrong version, digest mismatch, an envelope written
    for a different run identity, an unpicklable payload — is quarantined
    (evidence preserved) and reads as "no checkpoint": the caller runs
    from scratch.
    """
    envelope = store.get_checkpoint(key)
    if envelope is None:
        return None
    try:
        for field_name, expected in (
            ("target", key.target),
            ("config_hash", key.config_hash),
            ("seed", key.seed),
            ("attacked", key.attacked),
        ):
            if envelope.get(field_name) != expected:
                raise CheckpointError(
                    f"checkpoint {field_name}={envelope.get(field_name)!r} "
                    f"does not match run {field_name}={expected!r}"
                )
        world = World.restore(decode_envelope(envelope))
    except CheckpointError as exc:
        store.quarantine_checkpoint(key, str(exc))
        return None
    if _on_resume_hook is not None:
        _on_resume_hook(key, world.sim.now)
    return world


def run_single_resumable(
    config: ExperimentConfig,
    *,
    attacked: bool,
    seed: Optional[int],
    store: ResultStoreBase,
    key: RunKey,
    interval: float = DEFAULT_CHECKPOINT_INTERVAL,
    ledger: Optional[PacketLedger] = None,
) -> RunResult:
    """Run one simulation with interval checkpoints and automatic resume.

    Produces a :class:`RunResult` byte-identical to
    :func:`~repro.experiments.runner.run_single` for the same run (wall-
    clock extras excepted — those describe the executing process, not the
    simulated timeline).  The run's checkpoint is left in the store on
    completion; callers that persist the result delete it alongside
    (``store.delete_checkpoint(key)``) so completed runs carry no
    checkpoint debris.
    """
    if interval <= 0:
        raise ValueError(f"checkpoint interval must be > 0, got {interval!r}")
    world = load_checkpoint(store, key)
    if world is None:
        world = World(config, attacked=attacked, seed=seed, ledger=ledger)

    end_time = world.config.duration
    preempted = False

    def _on_sigterm(signum, frame):
        nonlocal preempted
        preempted = True
        world.sim.stop()

    previous_handler: Any = None
    try:
        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        # Not the main thread (e.g. direct calls from tests) — run without
        # the drain hook; interval checkpointing still works.
        previous_handler = None
    try:
        while world.sim.now < end_time:
            # Next checkpoint boundary strictly after "now" (a restored
            # world starts exactly on one).
            boundary = (math.floor(world.sim.now / interval) + 1) * interval
            segment_end = min(end_time, boundary)
            world.run(duration=segment_end)
            if preempted:
                save_checkpoint(store, key, world)
                raise GracefulPreemption(
                    f"preempted at t={world.sim.now:.3f}; checkpoint saved"
                )
            if world.sim.now < end_time:
                save_checkpoint(store, key, world)
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
    return summarize_world(world)


__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "GracefulPreemption",
    "load_checkpoint",
    "run_single_resumable",
    "save_checkpoint",
]
