"""World building: one fully-wired simulated scenario.

A :class:`World` assembles the whole system for one run: the event engine,
the broadcast channel, the road traffic (pre-populated and/or spawning), a
GeoNode per vehicle, static destination nodes beyond the road ends (for the
inter-area workload), the attacker (B-runs only) and the metric recorder.

A/B pairing: the attacker draws from its own random streams and never
influences vehicle motion, so an attacked run with the same seed sees the
same traffic and the same generated packets as its attack-free twin.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Callable, Dict, List, Optional

from repro.core.attacks import (
    AdaptiveInterceptor,
    InterAreaInterceptor,
    IntraAreaBlocker,
    MobileInterceptor,
    RoadsideAttacker,
    deploy_coordinated_masts,
)
from repro.core.online_detection import DetectionPipeline
from repro.core.vulnerability import VulnerabilityModel, greedy_mast_placement
from repro.experiments.config import AttackKind, ExperimentConfig, WorkloadKind
from repro.experiments.metrics import PacketOutcome, RunMetrics
from repro.faults.injector import FaultInjector
from repro.geo.areas import CircularArea, DestinationArea, RectangularArea
from repro.geo.position import Position
from repro.geonet.fleet import FleetBeaconScheduler, FleetState
from repro.geonet.node import GeoNode, StaticMobility, VehicleMobility, ledger_kind
from repro.geonet.packets import BeaconBody, GeoBroadcastPacket, PacketId
from repro.observability.invariants import InvariantChecker
from repro.observability.ledger import PacketLedger, reasons
from repro.radio.channel import BroadcastChannel
from repro.radio.shadowing import ManhattanShadowing
from repro.security.ca import CertificateAuthority
from repro.security.signing import sign, verify
from repro.sim.engine import Simulator
from repro.sim.process import every
from repro.sim.random import RandomStreams
from repro.traffic.grid import GridRoadNetwork, GridTrafficSimulation
from repro.traffic.idm import IdmParameters
from repro.traffic.road import Direction, RoadSegment
from repro.traffic.simulation import TrafficSimulation
from repro.traffic.spawner import EntranceSpawner


def reset_id_counters() -> None:
    """Reset every process-global id counter to its fresh-process value.

    Vehicle ids, link-layer addresses and frame ids are allocated from
    module-level counters, so a process that simulates several runs back
    to back numbers them differently from a freshly forked worker — the
    ids are pure labels (they never influence behaviour), but they are
    recorded in the store (``packet_id``), where they would break the
    bit-identity of records across execution strategies.  The campaign
    pool sidesteps this with one process per run
    (``maxtasksperchild=1``); the lease-service workers, which execute
    many runs per process, call this before each run instead."""
    from repro.radio.channel import reset_addresses
    from repro.radio.frames import reset_frame_ids
    from repro.traffic.grid import reset_grid_vehicle_ids
    from repro.traffic.vehicle import reset_vehicle_ids

    reset_vehicle_ids()
    reset_grid_vehicle_ids()
    reset_addresses()
    reset_frame_ids()


def _fleet_member_active(node: GeoNode) -> bool:
    return not (node.is_shut_down or node.is_down)


def _member_extra_jitter(node: GeoNode) -> float:
    return node._draw_beacon_extra_jitter()


class World:
    """One assembled scenario, attack-free (A) or attacked (B)."""

    def __init__(
        self,
        config: ExperimentConfig,
        *,
        attacked: bool,
        seed: Optional[int] = None,
        build_workload: Optional[Callable[["World"], None]] = None,
        ledger: Optional[PacketLedger] = None,
    ):
        self.config = config
        self.attacked = attacked
        self.seed = config.seed if seed is None else seed
        #: Optional packet-lifecycle ledger, shared by every node of this
        #: world.  Strictly passive: runs are bit-identical with and
        #: without it (golden-tested).
        self.ledger = ledger
        self.sim = Simulator()
        self.streams = RandomStreams(self.seed)
        self.ca = CertificateAuthority()
        self.channel = BroadcastChannel(
            self.sim,
            self.streams,
            loss_rate=config.channel_loss_rate,
            use_spatial_index=config.channel_use_spatial_index,
        )
        if ledger is not None:
            self.channel.on_unicast_lost.append(self._on_unicast_lost)

        # --- fault injection ----------------------------------------------
        # Built before any node exists so adoption covers the prepopulated
        # fleet.  A zero plan constructs nothing: no hooks, no RNG streams,
        # bit-identical to a plan-less run (golden-tested).
        self.fault_injector: Optional[FaultInjector] = None
        if config.faults is not None and not config.faults.is_zero:
            self.fault_injector = FaultInjector(
                config.faults,
                sim=self.sim,
                streams=self.streams,
                channel=self.channel,
                ledger=ledger,
            )

        # --- online detection pipeline -------------------------------------
        # Built before the traffic so the spawn hook can attach monitors to
        # the prepopulated fleet.  Disabled (the default) constructs
        # nothing: no detectors, no window timer, bit-identical runs.
        self.detection: Optional[DetectionPipeline] = None
        det_cfg = config.detection
        if det_cfg.enabled:
            self.detection = DetectionPipeline(
                sim=self.sim,
                window=det_cfg.window,
                alert_rate_threshold=det_cfg.alert_rate_threshold,
                ledger=ledger,
                detector_kwargs=dict(
                    plausible_range=(
                        config.vehicle_range
                        if det_cfg.plausible_range is None
                        else det_cfg.plausible_range
                    ),
                    dedup_window=det_cfg.dedup_window,
                    rhl_drop_threshold=det_cfg.rhl_drop_threshold,
                    packet_lifetime=config.geonet.default_lifetime,
                    max_tracked=det_cfg.max_tracked,
                    prune_interval=det_cfg.prune_interval,
                ),
            )

        # --- road traffic ------------------------------------------------
        # The urban scenario swaps the 4 000 m highway for a Manhattan grid
        # (turning traffic) and registers corner shadowing on the channel;
        # everything downstream (nodes, workload, attacker) is scenario-
        # agnostic apart from the geometry branches below.  The highway
        # branch is byte-for-byte the seed wiring: a default config takes
        # none of the urban code paths and stays golden-bit-identical.
        self.urban = config.scenario == "urban"
        road_cfg = config.road
        self.road: Optional[RoadSegment] = None
        self.grid: Optional[GridRoadNetwork] = None
        self.shadowing: Optional[ManhattanShadowing] = None
        # --- batched fleet (fleet_use_batched) -----------------------------
        # Built before the traffic so the spawn callbacks can claim slots.
        # On this path vehicles carry no per-node BeaconService: one
        # FleetBeaconScheduler tick beacons for everybody, and the mobility
        # loop pushes positions into the channel grid in bulk instead of
        # invalidating the whole cache.
        self.fleet: Optional[FleetState] = None
        self.fleet_scheduler: Optional[FleetBeaconScheduler] = None
        if config.fleet_use_batched:
            self.fleet = FleetState(self.channel)
        if self.urban:
            urban_cfg = config.urban
            self.grid = GridRoadNetwork(
                streets_x=urban_cfg.streets_x,
                streets_y=urban_cfg.streets_y,
                block_size=urban_cfg.block_size,
                lane_width=urban_cfg.lane_width,
            )
            self.shadowing = ManhattanShadowing.for_grid(
                urban_cfg.streets_x,
                urban_cfg.streets_y,
                urban_cfg.block_size,
                half_width=urban_cfg.los_half_width,
                corner_clearance=urban_cfg.corner_clearance,
            )
            self.channel.add_obstruction(self.shadowing)
            self.spawner = (
                EntranceSpawner(
                    spawn_gap=urban_cfg.spawn_gap,
                    entry_speed=urban_cfg.entry_speed,
                    gap_jitter=0.3,
                    rng=self.streams.get("spawner"),
                )
                if urban_cfg.spawn
                else None
            )
            self.traffic = GridTrafficSimulation(
                self.grid,
                IdmParameters(desired_velocity=urban_cfg.desired_speed),
                dt=config.mobility_dt,
                spawner=self.spawner,
                rng=self.streams.get("traffic"),
                # One LocT lifetime at urban speed past the grid edge.
                runout=config.geonet.loct_ttl * urban_cfg.desired_speed,
                turn_probability=urban_cfg.turn_probability,
                fleet=self.fleet,
            )
        else:
            self.road = RoadSegment(
                length=road_cfg.length,
                lanes_per_direction=road_cfg.lanes_per_direction,
                lane_width=road_cfg.lane_width,
                directions=road_cfg.directions,
            )
            self.spawner = (
                EntranceSpawner(
                    spawn_gap=road_cfg.inter_vehicle_space,
                    entry_speed=road_cfg.entry_speed,
                    gap_jitter=0.3,
                    rng=self.streams.get("spawner"),
                )
                if road_cfg.spawn
                else None
            )
            self.traffic = TrafficSimulation(
                self.road,
                IdmParameters(),
                dt=config.mobility_dt,
                spawner=self.spawner,
                rng=self.streams.get("traffic"),
                # Keep radios alive past the segment for one LocT lifetime,
                # so exiting vehicles don't become phantom GF targets.
                runout=config.geonet.loct_ttl * 30.0,
                fleet=self.fleet,
            )
        if self.fleet is not None:
            fleet = self.fleet
            self.traffic.on_step.append(self._push_fleet_positions)
            tick = (
                config.mobility_dt
                if config.fleet_beacon_tick is None
                else config.fleet_beacon_tick
            )
            self.fleet_scheduler = FleetBeaconScheduler(
                self.sim,
                fleet,
                self.channel,
                self.streams.get_numpy("fleet-beacon"),
                period=config.geonet.beacon_period,
                jitter=config.geonet.beacon_jitter,
                tick=tick,
                make_beacon=self._make_fleet_beacon,
                bulk_sink=self._fleet_beacon_sink,
                member_active=_fleet_member_active,
                extra_delay=(
                    _member_extra_jitter
                    if self.fault_injector is not None
                    else None
                ),
            )
        else:
            self.traffic.on_step.append(self._invalidate_channel_positions)

        # --- nodes --------------------------------------------------------
        self.nodes: Dict[int, GeoNode] = {}  # vehicle_id -> node
        self.node_by_addr: Dict[int, GeoNode] = {}
        #: Protocol counters of nodes already torn down (exited vehicles) —
        #: without this, per-node GF/CBF/GUC stats vanish with the node.
        self._detached_stats: Counter = Counter()
        self._veh_seq = 0
        self.traffic.on_spawn.append(self._attach_node)
        self.traffic.on_exit.append(self._detach_node)
        if self.urban:
            if config.urban.prepopulate:
                self.traffic.populate(
                    spacing=config.urban.inter_vehicle_space,
                    speed=config.urban.entry_speed,
                )
        elif road_cfg.prepopulate:
            self.traffic.populate(
                spacing=road_cfg.inter_vehicle_space, speed=road_cfg.entry_speed
            )

        # --- destinations (inter-area workload) ----------------------------
        self.dest_nodes: List[GeoNode] = []
        self.dest_areas: Dict[Direction, DestinationArea] = {}
        if config.workload.kind is WorkloadKind.INTER_AREA:
            self._build_destinations()
        if self.urban:
            # The flood covers the grid plus the LoS corridor margin, so a
            # vehicle rounding the outermost corner still counts.
            margin = config.urban.los_half_width
            self.flood_area = RectangularArea(
                -margin, self.grid.width + margin, -margin, self.grid.height + margin
            )
        else:
            self.flood_area = RectangularArea(
                0.0, self.road.length, 0.0, self.road.total_width
            )

        # --- vulnerability geometry (drives paired workload selection) -----
        # On the grid the 1-D covered/vulnerable partition of the highway
        # analysis does not transfer (shadowing breaks range circles), so
        # the urban world keeps the model only for its range bookkeeping and
        # sources packets from *any* active vehicle instead.
        extent_x = self.grid.width if self.urban else self.road.length
        self.vulnerability = VulnerabilityModel(
            attacker_x=(
                config.attack.x if config.attack.x is not None else extent_x / 2
            ),
            attack_range=config.attack.attack_range,
            vehicle_range=config.vehicle_range,
            road_length=extent_x,
        )

        # --- attacker (B runs) ---------------------------------------------
        #: All deployed attackers (one for ``single``/``mobile``/
        #: ``adaptive``, ``n_masts`` for ``coordinated``); ``attacker``
        #: stays the first one for back-compat with single-mast callers.
        self.attackers: List[RoadsideAttacker] = []
        self.attacker: Optional[RoadsideAttacker] = None
        if attacked and config.attack.kind is not AttackKind.NONE:
            self.attackers = self._build_attackers()
            self.attacker = self.attackers[0] if self.attackers else None

        # --- metrics & workload ---------------------------------------------
        self.metrics = RunMetrics(
            duration=config.duration, bin_width=config.bin_width
        )
        self._outcomes: Dict[PacketId, PacketOutcome] = {}
        self._snapshots: Dict[PacketId, frozenset] = {}
        self._started = False
        self.invariant_checker: Optional[InvariantChecker] = None
        if config.invariant_check_interval is not None:
            self.invariant_checker = InvariantChecker(
                self.sim,
                iter_nodes=self._iter_all_nodes,
                channel=self.channel,
                ledger=ledger,
            )
            every(
                self.sim,
                config.invariant_check_interval,
                self.invariant_checker.run,
            )
        if build_workload is not None:
            build_workload(self)
        else:
            self._workload_rng = self.streams.get("workload")
            every(
                self.sim,
                config.workload.packet_interval,
                self._generate_packet,
                start_delay=1.0,
            )

    # ------------------------------------------------------------------
    # traffic-step hooks (named so a checkpointed world stays picklable)
    # ------------------------------------------------------------------
    def _push_fleet_positions(self, _now: float) -> None:
        self.fleet.push_positions_to_channel()

    def _invalidate_channel_positions(self, _now: float) -> None:
        self.channel.invalidate_positions()

    def _iter_all_nodes(self):
        return list(self.nodes.values()) + self.dest_nodes

    # ------------------------------------------------------------------
    # node lifecycle
    # ------------------------------------------------------------------
    def _attach_node(self, vehicle) -> None:
        # ``vehicle`` is a highway Vehicle or a GridVehicle — both expose
        # vehicle_id / position / speed / heading / fleet_slot.
        self._veh_seq += 1
        seq = self._veh_seq
        node = GeoNode(
            sim=self.sim,
            channel=self.channel,
            config=self.config.geonet,
            credentials=self.ca.enroll(f"veh-{seq}"),
            mobility=VehicleMobility(vehicle),
            tx_range=self.config.vehicle_range,
            # The per-node stream stays on both paths: CBF timer draws come
            # from it, and keeping the allocation identical preserves the
            # legacy path's bit-identity.
            rng=self.streams.get(f"beacon:{seq}"),
            # Batched mode: the FleetBeaconScheduler beacons for everybody.
            beaconing=self.fleet is None,
            name=f"veh-{seq}",
            ledger=self.ledger,
        )
        node.router.on_deliver.append(self._on_deliver)
        self.nodes[vehicle.vehicle_id] = node
        self.node_by_addr[node.address] = node
        if self.fleet is not None:
            position = vehicle.position
            vehicle.fleet_slot = self.fleet.add(
                node,
                node.iface,
                x=position.x,
                y=position.y,
                speed=vehicle.speed,
                heading=vehicle.heading,
                tx_range=self.config.vehicle_range,
            )
        if self.fault_injector is not None:
            # Vehicles only: destinations are surveyed roadside units
            # (no GPS error) on wired power (no churn).
            self.fault_injector.adopt(node)
        if (
            self.detection is not None
            and (seq - 1) % self.config.detection.monitor_stride == 0
        ):
            self.detection.attach(node)

    def _detach_node(self, vehicle) -> None:
        node = self.nodes.pop(vehicle.vehicle_id, None)
        if node is not None:
            self.node_by_addr.pop(node.address, None)
            if self.detection is not None:
                self.detection.detach(node)
            if self.fault_injector is not None:
                self.fault_injector.release(node)
            if self.fleet is not None and vehicle.fleet_slot is not None:
                # Before shutdown(): unmarking the still-registered radio
                # keeps the channel's fleet/non-fleet sets consistent.
                self.fleet.remove(vehicle.fleet_slot)
                vehicle.fleet_slot = None
            self._detached_stats.update(node_stat_counters(node))
            node.shutdown()

    # ------------------------------------------------------------------
    # batched beaconing callbacks
    # ------------------------------------------------------------------
    def _make_fleet_beacon(self, node: GeoNode, pv, now: float):
        """Build one due member's beacon for the batched tick.

        Mirrors :meth:`GeoNode.send_beacon`: the advertised PV passes
        through the fault layer's ``pv_fault`` transform, the body is
        signed once — and verified immediately, memoizing the verdict so
        no receiver pays for re-verification (the per-object path memoizes
        on first reception instead; same single verify call per beacon).
        DCC gating happens here too: a throttled member skips this cycle
        exactly as :meth:`GeoNode.send_beacon` would.
        """
        if node.dcc is not None and not node.dcc.allow(now):
            node.dcc.stats.beacons_throttled += 1
            return None
        if node.pv_fault is not None:
            pv = node.pv_fault(pv)
        payload = sign(
            BeaconBody(source_addr=node.address, pv=pv), node.credentials
        )
        verify(payload)
        return payload, (node.address, pv)

    def _fleet_beacon_sink(self, node: GeoNode, batch, now: float) -> int:
        """Deliver one receiver's beacon batch (fleet side of the tick).

        A powered-off or shut-down radio hears nothing (its interface
        would have left the channel on the per-object path); a live one
        counts the whole batch as delivered — router-level rejection
        (staleness) is not a channel event, exactly as with real frames.
        """
        if node.is_shut_down or node.is_down:
            return 0
        # Passive monitors see the batch *before* the router, mirroring the
        # per-frame path where the detector interposes ahead of the handler
        # — without this, batched fleet-to-fleet delivery bypasses every
        # detector (the PR-9 blind-spot fix).
        if node.bulk_beacon_taps:
            for tap in node.bulk_beacon_taps:
                tap(batch, now)
        node.router.receive_beacons_bulk(batch, now)
        return len(batch)

    def _build_destinations(self) -> None:
        offset = self.config.workload.dest_offset
        radius = self.config.workload.dest_radius
        if self.urban:
            # Roadside units just beyond the grid's east/west edges, on the
            # centerline of the central horizontal street: in LoS along the
            # street corridor, shadowed from everywhere else — reaching them
            # requires routing *along* streets.
            y_center = self.grid.ys[len(self.grid.ys) // 2]
            east_center = Position(self.grid.width + offset, y_center)
            west_center = Position(-offset, y_center)
        else:
            y_center = self.road.total_width / 2
            east_center = Position(self.road.length + offset, y_center)
            west_center = Position(-offset, y_center)
        self.dest_areas[Direction.EAST] = CircularArea(east_center, radius)
        self.dest_areas[Direction.WEST] = CircularArea(west_center, radius)
        for label, center in (("east", east_center), ("west", west_center)):
            node = GeoNode(
                sim=self.sim,
                channel=self.channel,
                config=self.config.geonet,
                credentials=self.ca.enroll(f"dest-{label}"),
                mobility=StaticMobility(center),
                tx_range=self.config.vehicle_range,
                rng=self.streams.get(f"beacon:dest-{label}"),
                name=f"dest-{label}",
                ledger=self.ledger,
            )
            node.router.on_deliver.append(self._on_deliver)
            self.dest_nodes.append(node)
            self.node_by_addr[node.address] = node

    def _attacker_anchor(self) -> Position:
        """The single-mast position (paper Fig 6: mid-road / central
        intersection, laterally offset by ``y_offset``)."""
        cfg = self.config.attack
        if self.urban:
            # Curbside mast on the central vertical street, offset along it
            # from the central intersection — on-street, so the shadowing
            # model gives it LoS down two full corridors plus every corner
            # within clearance.
            cx = (
                self.grid.xs[len(self.grid.xs) // 2] if cfg.x is None else cfg.x
            )
            cy = self.grid.ys[len(self.grid.ys) // 2]
            return Position(cx, cy + cfg.y_offset)
        return Position(self.config.attacker_x, cfg.y_offset)

    def _build_attackers(self) -> List[RoadsideAttacker]:
        cfg = self.config.attack
        common = dict(
            sim=self.sim,
            channel=self.channel,
            streams=self.streams,
            attack_range=cfg.attack_range,
            reaction_delay=cfg.reaction_delay,
        )
        if cfg.kind is AttackKind.INTRA_AREA:
            return [
                IntraAreaBlocker(
                    position=self._attacker_anchor(),
                    rewrite_rhl=cfg.rewrite_rhl,
                    replay_range=cfg.replay_range,
                    **common,
                )
            ]
        if cfg.variant == "coordinated":
            # Greedy coverage-maximising placement along the road (highway)
            # or along the central horizontal street (grid) — each mast
            # keeps the single mast's lateral offset.
            extent_x = self.grid.width if self.urban else self.road.length
            xs = greedy_mast_placement(
                n_masts=cfg.n_masts,
                attack_range=cfg.attack_range,
                road_length=extent_x,
            )
            if self.urban:
                y = self.grid.ys[len(self.grid.ys) // 2] + cfg.y_offset
            else:
                y = cfg.y_offset
            return deploy_coordinated_masts(
                positions=[Position(x, y) for x in xs], **common
            )
        if cfg.variant == "mobile":
            # Ride the flow end-to-end on the road centerline (highway) or
            # along the central horizontal street (grid), wrapping at the
            # far end like a fresh attacker vehicle entering.
            if self.urban:
                y = self.grid.ys[len(self.grid.ys) // 2]
                path = [Position(0.0, y), Position(self.grid.width, y)]
            else:
                y = self.road.total_width / 2
                path = [Position(0.0, y), Position(self.road.length, y)]
            return [
                MobileInterceptor(
                    path=path,
                    speed=cfg.mobile_speed,
                    update_interval=cfg.mobile_update_interval,
                    **common,
                )
            ]
        if cfg.variant == "adaptive":
            return [
                AdaptiveInterceptor(
                    position=self._attacker_anchor(),
                    max_replays_per_window=cfg.adaptive_max_replays_per_window,
                    alert_window=cfg.adaptive_window,
                    per_source_cooldown=cfg.adaptive_cooldown,
                    **common,
                )
            ]
        return [
            InterAreaInterceptor(position=self._attacker_anchor(), **common)
        ]

    # ------------------------------------------------------------------
    # workload
    # ------------------------------------------------------------------
    def _generate_packet(self) -> None:
        # Packets sourced in the run's final second have no time to complete
        # and would only add identical truncation noise to both A and B.
        if self.sim.now > self.config.duration - 1.0:
            return
        if self.config.workload.kind is WorkloadKind.INTER_AREA:
            self._generate_inter_area_packet()
        else:
            self._generate_intra_area_packet()

    def _active_vehicle_nodes(self) -> List[tuple]:
        """(vehicle, node) pairs on the segment proper, in deterministic
        (lane, progress) order.  Runout vehicles still forward but neither
        source packets nor count in reception denominators."""
        pairs = []
        for vehicle in self.traffic.vehicles(on_road_only=True):
            node = self.nodes.get(vehicle.vehicle_id)
            if node is not None and not node.is_shut_down and not node.is_down:
                pairs.append((vehicle, node))
        return pairs

    def _generate_inter_area_packet(self) -> None:
        """Source one *vulnerable* GF packet (paper §IV-A).

        Urban: the highway's 1-D vulnerability partition has no grid
        analogue, so any active vehicle sources toward a uniformly chosen
        east/west roadside destination (same two draws per packet).
        """
        if self.urban:
            candidates = [
                (vehicle, node, (Direction.EAST, Direction.WEST))
                for vehicle, node in self._active_vehicle_nodes()
            ]
        else:
            candidates = []
            for vehicle, node in self._active_vehicle_nodes():
                directions = self.vulnerability.vulnerable_directions(vehicle.x)
                if directions:
                    candidates.append((vehicle, node, directions))
        if not candidates:
            return
        vehicle, node, directions = candidates[
            self._workload_rng.randrange(len(candidates))
        ]
        direction = directions[self._workload_rng.randrange(len(directions))]
        area = self.dest_areas[direction]
        pid = node.originate(area, self.config.workload.payload)
        self._outcomes[pid] = outcome = PacketOutcome(
            packet_id=pid,
            send_time=self.sim.now,
            source_x=vehicle.x,
            direction=int(direction),
            success=0.0,
            in_fully_covered_area=(
                False
                if self.urban
                else self.vulnerability.in_fully_covered_area(vehicle.x)
            ),
        )
        self.metrics.record(outcome)

    def _generate_intra_area_packet(self) -> None:
        """Source one CBF flood over the whole segment (paper §IV-A)."""
        pairs = self._active_vehicle_nodes()
        if not pairs:
            return
        workload = self.config.workload
        candidates = pairs
        if workload.source_xmin is not None or workload.source_xmax is not None:
            lo = workload.source_xmin if workload.source_xmin is not None else 0.0
            hi = (
                workload.source_xmax
                if workload.source_xmax is not None
                else (self.grid.width if self.urban else self.road.length)
            )
            candidates = [(v, n) for v, n in pairs if lo <= v.x <= hi]
            if not candidates:
                return  # nobody currently inside the requested region
        vehicle, node = candidates[self._workload_rng.randrange(len(candidates))]
        snapshot = frozenset(n.address for _v, n in pairs)
        pid = node.originate(self.flood_area, self.config.workload.payload)
        self._snapshots[pid] = snapshot
        self._outcomes[pid] = outcome = PacketOutcome(
            packet_id=pid,
            send_time=self.sim.now,
            source_x=vehicle.x,
            direction=int(vehicle.direction),
            success=0.0,
            receivers=0,
            denominator=len(snapshot),
            in_fully_covered_area=(
                False
                if self.urban
                else self.vulnerability.in_fully_covered_area(vehicle.x)
            ),
        )
        self.metrics.record(outcome)

    # ------------------------------------------------------------------
    # delivery recording
    # ------------------------------------------------------------------
    def _on_deliver(self, node: GeoNode, packet: GeoBroadcastPacket) -> None:
        outcome = self._outcomes.get(packet.packet_id)
        if outcome is None:
            return
        if self.config.workload.kind is WorkloadKind.INTER_AREA:
            if node in self.dest_nodes and outcome.success == 0.0:
                outcome.success = 1.0
                outcome.delivery_latency = self.sim.now - outcome.send_time
        else:
            snapshot = self._snapshots.get(packet.packet_id)
            if snapshot is not None and node.address in snapshot:
                outcome.receivers += 1
                outcome.success = outcome.receivers / outcome.denominator

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _on_unicast_lost(self, frame, why: str) -> None:
        """Channel hook: a unicast frame missed its addressee.

        This is the paper's silent interception loss — the frame went on
        the air, nobody (reachable) was listening.  Only application
        packets are tracked; beacons and LS floods resolve to ``None``.
        """
        kind = ledger_kind(frame.payload)
        if kind is None or self.ledger is None:
            return
        if why == "faulted":
            reason = reasons.FAULTED_LINK_LOSS
        elif self.fault_injector is not None and self.fault_injector.is_down_addr(
            frame.dest_addr
        ):
            # The addressee's radio is powered off: the frame was doomed by
            # churn, not by a geographic-routing failure.
            reason = reasons.NODE_DOWN
        else:
            reason = reasons.UNREACHABLE_NEXT_HOP
        self.ledger.dropped(
            kind,
            frame.payload.packet_id,
            self.sim.now,
            frame.sender_addr,
            reason,
            detail=f"{why}:dest={frame.dest_addr}",
        )

    def protocol_stat_totals(self) -> Counter:
        """Per-node protocol counters summed over *every* node of the run:
        live vehicles, static destinations, and vehicles already torn down
        (whose stats are accumulated at detach time)."""
        totals = Counter(self._detached_stats)
        for node in list(self.nodes.values()) + list(self.dest_nodes):
            totals.update(node_stat_counters(node))
        return totals

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, duration: Optional[float] = None) -> RunMetrics:
        """Run the scenario to completion and return the metrics."""
        if not self._started:
            self.traffic.start(self.sim)
            self._started = True
        self.sim.run_until(self.config.duration if duration is None else duration)
        return self.metrics

    def snapshot(self) -> bytes:
        """Serialize the whole world (plus global allocators) to bytes.

        The inverse is :meth:`restore`; the restored world continues the
        run bit-identically to this process (see
        :mod:`repro.sim.checkpoint` for the contract and its rules).
        """
        from repro.sim.checkpoint import snapshot_world

        return snapshot_world(self)

    @staticmethod
    def restore(blob: bytes) -> "World":
        """Rebuild a :meth:`snapshot` world, reinstating global counters."""
        from repro.sim.checkpoint import CheckpointError, restore_world

        world = restore_world(blob)
        if not isinstance(world, World):
            raise CheckpointError(
                f"checkpoint does not contain a World (got {type(world).__name__})"
            )
        return world

    def vehicles_on_road(self, direction: Optional[Direction] = None) -> int:
        """Convenience passthrough for impact studies."""
        return self.traffic.count_on_road(direction)

    def nodes_near(self, position: Position, radius: float) -> List[GeoNode]:
        """GeoNodes whose radios are within ``radius`` of ``position``.

        Reuses the channel's spatial index (the one every transmit
        consults), so the lookup is O(k) in the ~k nearby nodes; results
        are in interface registration order.
        """
        return [
            node
            for iface in self.channel.neighbors_within(position, radius)
            if (node := self.node_by_addr.get(iface.address)) is not None
        ]


#: Stats dataclasses aggregated per node, with the prefix their counters
#: carry in :meth:`World.protocol_stat_totals` / ``RunResult.extras``.
_STAT_SOURCES = (
    ("router", lambda node: node.router.stats),
    ("gf", lambda node: node.router.gf.stats),
    ("cbf", lambda node: node.router.cbf.stats),
    ("guc", lambda node: node.router.unicast.stats),
)


def node_stat_counters(node: GeoNode) -> Counter:
    """One node's protocol counters, flattened to ``prefix_field`` keys."""
    counters: Counter = Counter()
    for prefix, getter in _STAT_SOURCES:
        stats = getter(node)
        for f in dataclasses.fields(stats):
            counters[f"{prefix}_{f.name}"] += getattr(stats, f.name)
    # DCC gates only exist with dcc_enabled; absent keys keep default-run
    # extras byte-identical.
    if node.dcc is not None:
        for f in dataclasses.fields(node.dcc.stats):
            counters[f"dcc_{f.name}"] += getattr(node.dcc.stats, f.name)
    return counters
