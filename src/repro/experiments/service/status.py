"""Read-only HTTP status endpoint for running campaigns.

A thin stdlib ``http.server`` wrapper: ``GET /status`` returns the live
progress counters as JSON, ``GET /healthz`` returns ``ok``.  Strictly
read-only — there is deliberately no mutation surface — and bound to
localhost by default; point a dashboard, ``curl``/``watch``, or another
host's aggregator at it::

    $ curl -s localhost:8642/status | python -m json.tool
    {
        "planned": 48,
        "stored": 31,
        "failures": 1,
        ...
    }

The snapshot function is injected, so the server knows nothing about
stores or queues; :func:`progress_snapshot` builds the standard campaign
snapshot from a store, the planned specs and (optionally) a lease queue.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Sequence


def progress_snapshot(
    store,
    specs: Sequence,
    *,
    queue=None,
    lease_ttl: Optional[float] = None,
) -> Dict[str, object]:
    """The standard progress counters of a (possibly running) campaign.

    ``stored``/``failures`` come from the result store (ground truth),
    the lease-state counters from the queue when one is attached.  All
    values are plain JSON scalars, ready for the status endpoint.

    For each unfinished run that has a checkpoint or a live lease, a
    ``jobs`` entry reports the newest checkpoint's simulation time
    (``checkpoint_sim_time``, None when the run has never checkpointed)
    and — when both ``queue`` and ``lease_ttl`` are given — how long ago
    the lease holder last heartbeat (``heartbeat_age_s``, reconstructed
    as ``lease_ttl - (deadline - now)``).
    """
    from repro.experiments.service.leases import job_id_for

    stored = 0
    failures = 0
    in_flight = []
    for spec in specs:
        if store.has(spec.key):
            stored += 1
        elif store.get_failure(spec.key) is not None:
            failures += 1
        else:
            in_flight.append(spec)
    planned = len(specs)
    snapshot: Dict[str, object] = {
        "backend": store.describe(),
        "planned": planned,
        "stored": stored,
        "failures": failures,
        "remaining": planned - stored,
        "percent": round(100.0 * stored / planned, 2) if planned else 100.0,
        "quarantined": store.quarantine_count(),
        "checkpoints_quarantined": store.checkpoint_quarantine_count(),
    }
    deadlines: Dict[str, float] = {}
    if queue is not None:
        counts = queue.counts()
        snapshot["queue"] = counts
        snapshot["workers_active"] = counts.get("leased", 0)
        deadlines = queue.deadlines()
    now = queue.clock() if queue is not None else 0.0
    jobs = []
    for spec in in_flight:
        if spec.kind == "text":
            continue  # text artifacts never checkpoint
        sim_time = store.checkpoint_sim_time(spec.key)
        job_id = job_id_for(spec.key)
        leased = job_id in deadlines
        if sim_time is None and not leased:
            continue  # nothing to report: never checkpointed, not running
        entry: Dict[str, object] = {
            "job": job_id,
            "checkpoint_sim_time": sim_time,
        }
        if leased and lease_ttl is not None:
            entry["heartbeat_age_s"] = round(
                max(0.0, lease_ttl - (deadlines[job_id] - now)), 3
            )
        jobs.append(entry)
    snapshot["jobs"] = jobs
    return snapshot


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-campaign-status/1"

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path in ("/", "/status"):
            try:
                body = json.dumps(self.server.snapshot_fn(), indent=2).encode()
            except Exception as exc:  # snapshot races are non-fatal
                self.send_error(500, f"snapshot failed: {type(exc).__name__}")
                return
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "unknown path (try /status)")

    def log_message(self, format, *args):  # silence per-request stderr noise
        pass


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    snapshot_fn: Callable[[], Dict[str, object]]


class StatusServer:
    """Serve ``snapshot_fn()`` as JSON on a background thread.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` after
    :meth:`start`).  The server thread is a daemon, so a crashing
    campaign never hangs on it; call :meth:`stop` for an orderly end.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Dict[str, object]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._server = _Server((host, port), _Handler)
        self._server.snapshot_fn = snapshot_fn
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "StatusServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="campaign-status",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
