"""The lease-based job queue behind the distributed campaign scheduler.

The queue holds one *job* per planned campaign run (keyed by the run's
store path, ``target/config-hash/s<seed>-<af|atk>``).  Workers *lease* a
job for a TTL, *heartbeat* to keep the lease while the simulation runs,
and either *complete* or *fail* it.  A worker that dies silently — power
loss, OOM kill, SIGKILL — simply stops heartbeating: its lease expires
and the job returns to the queue for any other worker, which is the whole
crash-recovery story.  Attempts are counted per lease, so a job that
keeps killing its workers ends ``failed`` after ``max_attempts`` instead
of looping forever (the PR 2 watchdog's bounded retry, generalised).

The transition rules live in one pure, clock-free class —
:class:`LeaseStateMachine` — which the property-based suite
(``tests/properties/test_lease_properties.py``) drives through arbitrary
event interleavings.  The two persistent queues wrap that machine in a
durable medium:

* :class:`FileLeaseQueue` — queue state in one atomically-rewritten JSON
  file, with every operation serialised by an ``flock`` on a sidecar lock
  file.  Pairs with the per-file JSON result store.
* :class:`SqliteLeaseQueue` — queue state in the ``jobs`` table of the
  SQLite result store's own database, every operation one ``BEGIN
  IMMEDIATE`` transaction.  Because it shares the store's connection, a
  worker can commit "result stored + lease completed" atomically.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional


class JobState:
    """The four job states.  String constants: they serialise as-is."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    FAILED = "failed"

    ALL = (PENDING, LEASED, DONE, FAILED)
    TERMINAL = (DONE, FAILED)


@dataclass(frozen=True)
class Lease:
    """A granted lease: which job, which attempt, until when."""

    job_id: str
    attempt: int
    deadline: float


@dataclass
class _Job:
    state: str = JobState.PENDING
    worker: Optional[str] = None
    deadline: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None


class LeaseStateMachine:
    """The pure lease protocol: every queue op as an explicit transition.

    Time is a parameter, never read from a clock, so any interleaving of
    ``lease`` / ``heartbeat`` / ``complete`` / ``fail`` at any timestamps
    is replayable — the property tests exploit exactly that.  Invariants
    the transitions maintain (and the tests assert):

    * every job is in exactly one of the four states;
    * at most one worker holds a live (unexpired) lease on a job;
    * ``done`` and ``failed`` are terminal — no transition leaves them;
    * operations by a worker whose lease has expired or was re-granted
      are rejected (returned ``False``), never half-applied.
    """

    def __init__(self, *, max_attempts: int = 3):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self._jobs: Dict[str, _Job] = {}

    # -- setup ----------------------------------------------------------
    def add(self, job_id: str) -> bool:
        """Register a pending job; False if it already exists (unchanged)."""
        if job_id in self._jobs:
            return False
        self._jobs[job_id] = _Job()
        return True

    # -- transitions ----------------------------------------------------
    def _expired(self, job: _Job, now: float) -> bool:
        return (
            job.state == JobState.LEASED
            and job.deadline is not None
            and job.deadline <= now
        )

    def lease(self, worker: str, now: float, ttl: float) -> Optional[Lease]:
        """Grant the first leasable job to ``worker``; None when drained.

        Leasable: ``pending``, or ``leased`` with an expired deadline (the
        crashed-worker path).  Expired jobs whose attempts are exhausted
        flip to ``failed`` here rather than being granted again.
        """
        for job_id in sorted(self._jobs):
            job = self._jobs[job_id]
            if self._expired(job, now):
                if job.attempts >= self.max_attempts:
                    self._fail_terminal(job, "lease expired; attempts exhausted")
                    continue
                job.state = JobState.PENDING
                job.worker = None
                job.deadline = None
            if job.state != JobState.PENDING:
                continue
            job.state = JobState.LEASED
            job.worker = worker
            job.deadline = now + ttl
            job.attempts += 1
            return Lease(job_id=job_id, attempt=job.attempts, deadline=job.deadline)
        return None

    def heartbeat(self, worker: str, job_id: str, now: float, ttl: float) -> bool:
        """Extend ``worker``'s lease; False when it no longer holds one."""
        job = self._jobs.get(job_id)
        if job is None or job.state != JobState.LEASED or job.worker != worker:
            return False
        if self._expired(job, now):
            return False
        job.deadline = now + ttl
        return True

    def complete(self, worker: str, job_id: str) -> bool:
        """Mark ``worker``'s leased job done; False when it lost the lease.

        Deliberately accepted even past the deadline *if nobody re-leased
        the job yet*: the result is already persisted and deterministic,
        so completing late loses nothing — only a lease actually re-granted
        to someone else rejects the stale completer.
        """
        job = self._jobs.get(job_id)
        if job is None or job.state != JobState.LEASED or job.worker != worker:
            return False
        job.state = JobState.DONE
        job.worker = None
        job.deadline = None
        return True

    def fail(self, worker: str, job_id: str, error: str) -> Optional[str]:
        """Report a failed attempt; the job retries or turns terminal.

        Returns the job's resulting state, or None when ``worker`` no
        longer held the lease (the report is then discarded).
        """
        job = self._jobs.get(job_id)
        if job is None or job.state != JobState.LEASED or job.worker != worker:
            return None
        if job.attempts >= self.max_attempts:
            self._fail_terminal(job, error)
        else:
            job.state = JobState.PENDING
            job.worker = None
            job.deadline = None
            job.error = error
        return job.state

    def _fail_terminal(self, job: _Job, error: str) -> None:
        job.state = JobState.FAILED
        job.worker = None
        job.deadline = None
        job.error = error

    # -- queries --------------------------------------------------------
    def state_of(self, job_id: str) -> Optional[str]:
        job = self._jobs.get(job_id)
        return None if job is None else job.state

    def holder_of(self, job_id: str, now: float) -> Optional[str]:
        """The worker holding a live lease on ``job_id``, if any."""
        job = self._jobs.get(job_id)
        if job is None or job.state != JobState.LEASED or self._expired(job, now):
            return None
        return job.worker

    def counts(self, now: Optional[float] = None) -> Dict[str, int]:
        """Jobs per state; with ``now``, expired leases count as pending."""
        result = {state: 0 for state in JobState.ALL}
        for job in self._jobs.values():
            if now is not None and self._expired(job, now):
                result[JobState.PENDING] += 1
            else:
                result[job.state] += 1
        return result

    def all_terminal(self, now: float) -> bool:
        """True when no job is pending or holds a live lease."""
        counts = self.counts(now)
        return counts[JobState.PENDING] == 0 and counts[JobState.LEASED] == 0

    def errors(self) -> Dict[str, str]:
        """``{job_id: error}`` of the terminally failed jobs."""
        return {
            job_id: job.error or "failed"
            for job_id, job in self._jobs.items()
            if job.state == JobState.FAILED
        }

    def deadlines(self, now: float) -> Dict[str, float]:
        """``{job_id: deadline}`` of the live (unexpired) leases."""
        return {
            job_id: job.deadline
            for job_id, job in self._jobs.items()
            if job.state == JobState.LEASED
            and job.deadline is not None
            and not self._expired(job, now)
        }

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> Dict[str, Dict]:
        return {
            job_id: {
                "state": job.state,
                "worker": job.worker,
                "deadline": job.deadline,
                "attempts": job.attempts,
                "error": job.error,
            }
            for job_id, job in self._jobs.items()
        }

    @classmethod
    def from_dict(
        cls, data: Dict[str, Dict], *, max_attempts: int
    ) -> "LeaseStateMachine":
        machine = cls(max_attempts=max_attempts)
        for job_id, fields in data.items():
            machine._jobs[job_id] = _Job(
                state=fields["state"],
                worker=fields.get("worker"),
                deadline=fields.get("deadline"),
                attempts=int(fields.get("attempts", 0)),
                error=fields.get("error"),
            )
        return machine


# ----------------------------------------------------------------------
# persistent queues
# ----------------------------------------------------------------------
class LeaseQueue:
    """The durable queue contract shared by both backends.

    All methods are safe to call from independent processes; ``clock`` is
    injectable for tests but must be a wall clock in production — lease
    deadlines are compared across processes.
    """

    def __init__(self, *, max_attempts: int = 3, clock: Callable[[], float] = time.time):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.clock = clock

    def seed(self, job_ids: Iterable[str]) -> int:
        """Register jobs as pending; existing jobs are left untouched.
        Returns how many were newly added."""
        raise NotImplementedError

    def lease(self, worker: str, *, ttl: float) -> Optional[Lease]:
        raise NotImplementedError

    def heartbeat(self, worker: str, job_id: str, *, ttl: float) -> bool:
        raise NotImplementedError

    def complete(self, worker: str, job_id: str) -> bool:
        raise NotImplementedError

    def fail(self, worker: str, job_id: str, error: str) -> Optional[str]:
        raise NotImplementedError

    def counts(self) -> Dict[str, int]:
        raise NotImplementedError

    def all_terminal(self) -> bool:
        counts = self.counts()
        return counts[JobState.PENDING] == 0 and counts[JobState.LEASED] == 0

    def errors(self) -> Dict[str, str]:
        raise NotImplementedError

    def deadlines(self) -> Dict[str, float]:
        """``{job_id: lease deadline}`` of the live leases — the status
        surface turns these into last-heartbeat ages."""
        raise NotImplementedError


class FileLeaseQueue(LeaseQueue):
    """Queue state in one JSON file, every operation under an ``flock``.

    Queue operations are per *job* (a few per simulation run), not per
    record, so a single exclusive lock is plenty — simplicity and
    crash-safety over throughput.  The state file is rewritten atomically
    (temp + ``os.replace``), so a worker killed mid-operation leaves the
    previous consistent state behind and merely loses its own transition.
    """

    STATE_NAME = "queue.json"
    LOCK_NAME = "queue.lock"

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        *,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.time,
    ):
        super().__init__(max_attempts=max_attempts, clock=clock)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._state_path = self.root / self.STATE_NAME
        self._lock_path = self.root / self.LOCK_NAME

    def _locked(self):
        import fcntl
        from contextlib import contextmanager

        @contextmanager
        def guard():
            fd = os.open(self._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield
            finally:
                os.close(fd)  # closing releases the flock

        return guard()

    def _load(self) -> LeaseStateMachine:
        try:
            with open(self._state_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            data = {}
        return LeaseStateMachine.from_dict(data, max_attempts=self.max_attempts)

    def _save(self, machine: LeaseStateMachine) -> None:
        import tempfile

        fd, tmp_name = tempfile.mkstemp(
            prefix=self.STATE_NAME + ".", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(machine.to_dict(), handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self._state_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _transact(self, fn):
        with self._locked():
            machine = self._load()
            result = fn(machine)
            self._save(machine)
            return result

    # -- queue ops ------------------------------------------------------
    def seed(self, job_ids: Iterable[str]) -> int:
        ids = list(job_ids)
        return self._transact(lambda m: sum(1 for j in ids if m.add(j)))

    def lease(self, worker: str, *, ttl: float) -> Optional[Lease]:
        now = self.clock()
        return self._transact(lambda m: m.lease(worker, now, ttl))

    def heartbeat(self, worker: str, job_id: str, *, ttl: float) -> bool:
        now = self.clock()
        return self._transact(lambda m: m.heartbeat(worker, job_id, now, ttl))

    def complete(self, worker: str, job_id: str) -> bool:
        return self._transact(lambda m: m.complete(worker, job_id))

    def fail(self, worker: str, job_id: str, error: str) -> Optional[str]:
        return self._transact(lambda m: m.fail(worker, job_id, error))

    def counts(self) -> Dict[str, int]:
        with self._locked():
            return self._load().counts(self.clock())

    def errors(self) -> Dict[str, str]:
        with self._locked():
            return self._load().errors()

    def deadlines(self) -> Dict[str, float]:
        with self._locked():
            return self._load().deadlines(self.clock())


class SqliteLeaseQueue(LeaseQueue):
    """Queue state in the SQLite store's ``jobs`` table.

    Shares the :class:`~repro.experiments.sqlite_store.SqliteResultStore`
    connection, so calls made inside ``store.batch()`` join the store's
    transaction — that is how a worker persists its result and completes
    its lease in one atomic commit.
    """

    def __init__(
        self,
        store,
        *,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.time,
    ):
        super().__init__(max_attempts=max_attempts, clock=clock)
        self.store = store

    # -- queue ops ------------------------------------------------------
    def seed(self, job_ids: Iterable[str]) -> int:
        added = 0
        with self.store._txn() as conn:
            for job_id in job_ids:
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO jobs (job_id, state, attempts) "
                    "VALUES (?, ?, 0)",
                    (job_id, JobState.PENDING),
                )
                added += cursor.rowcount
        return added

    def lease(self, worker: str, *, ttl: float) -> Optional[Lease]:
        now = self.clock()
        with self.store._txn() as conn:
            # Expired leases out of attempts turn failed in the same sweep.
            conn.execute(
                "UPDATE jobs SET state=?, worker=NULL, deadline=NULL, "
                "error='lease expired; attempts exhausted' "
                "WHERE state=? AND deadline<=? AND attempts>=?",
                (JobState.FAILED, JobState.LEASED, now, self.max_attempts),
            )
            row = conn.execute(
                "SELECT job_id, attempts FROM jobs "
                "WHERE state=? OR (state=? AND deadline<=?) "
                "ORDER BY job_id LIMIT 1",
                (JobState.PENDING, JobState.LEASED, now),
            ).fetchone()
            if row is None:
                return None
            job_id, attempts = row
            deadline = now + ttl
            conn.execute(
                "UPDATE jobs SET state=?, worker=?, deadline=?, attempts=? "
                "WHERE job_id=?",
                (JobState.LEASED, worker, deadline, attempts + 1, job_id),
            )
            return Lease(job_id=job_id, attempt=attempts + 1, deadline=deadline)

    def heartbeat(self, worker: str, job_id: str, *, ttl: float) -> bool:
        now = self.clock()
        with self.store._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET deadline=? "
                "WHERE job_id=? AND state=? AND worker=? AND deadline>?",
                (now + ttl, job_id, JobState.LEASED, worker, now),
            )
            return cursor.rowcount == 1

    def complete(self, worker: str, job_id: str) -> bool:
        with self.store._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state=?, worker=NULL, deadline=NULL "
                "WHERE job_id=? AND state=? AND worker=?",
                (JobState.DONE, job_id, JobState.LEASED, worker),
            )
            return cursor.rowcount == 1

    def fail(self, worker: str, job_id: str, error: str) -> Optional[str]:
        with self.store._txn() as conn:
            row = conn.execute(
                "SELECT attempts FROM jobs "
                "WHERE job_id=? AND state=? AND worker=?",
                (job_id, JobState.LEASED, worker),
            ).fetchone()
            if row is None:
                return None
            new_state = (
                JobState.FAILED
                if int(row[0]) >= self.max_attempts
                else JobState.PENDING
            )
            conn.execute(
                "UPDATE jobs SET state=?, worker=NULL, deadline=NULL, error=? "
                "WHERE job_id=?",
                (new_state, error, job_id),
            )
            return new_state

    def counts(self) -> Dict[str, int]:
        now = self.clock()
        rows = self.store._conn().execute(
            "SELECT CASE WHEN state=? AND deadline<=? THEN ? ELSE state END "
            "AS effective, COUNT(*) FROM jobs GROUP BY effective",
            (JobState.LEASED, now, JobState.PENDING),
        ).fetchall()
        result = {state: 0 for state in JobState.ALL}
        for state, n in rows:
            result[str(state)] = result.get(str(state), 0) + int(n)
        return result

    def errors(self) -> Dict[str, str]:
        rows = self.store._conn().execute(
            "SELECT job_id, error FROM jobs WHERE state=?",
            (JobState.FAILED,),
        ).fetchall()
        return {str(job_id): str(error or "failed") for job_id, error in rows}

    def deadlines(self) -> Dict[str, float]:
        now = self.clock()
        rows = self.store._conn().execute(
            "SELECT job_id, deadline FROM jobs "
            "WHERE state=? AND deadline>?",
            (JobState.LEASED, now),
        ).fetchall()
        return {str(job_id): float(deadline) for job_id, deadline in rows}


def job_id_for(key) -> str:
    """The queue job id of a store key: its store path, minus ``.json``."""
    stem = key.filename
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    return f"{key.target}/{key.config_hash}/{stem}"


def queue_for_store(
    store,
    *,
    max_attempts: int = 3,
    clock: Callable[[], float] = time.time,
) -> LeaseQueue:
    """The matching lease queue for a result store backend.

    SQLite stores get the transactional in-database queue; everything
    else gets a :class:`FileLeaseQueue` in a ``_queue/`` directory beside
    the store's records.
    """
    from repro.experiments.sqlite_store import SqliteResultStore
    from repro.experiments.store import ResultStore

    if isinstance(store, SqliteResultStore):
        return SqliteLeaseQueue(store, max_attempts=max_attempts, clock=clock)
    if isinstance(store, ResultStore):
        return FileLeaseQueue(
            Path(store.root) / "_queue", max_attempts=max_attempts, clock=clock
        )
    raise TypeError(f"no lease queue for store type {type(store).__name__}")


# Re-exported for convenience in tests and the scheduler.
__all__ = [
    "FileLeaseQueue",
    "JobState",
    "Lease",
    "LeaseQueue",
    "LeaseStateMachine",
    "SqliteLeaseQueue",
    "job_id_for",
    "queue_for_store",
]
