"""The distributed campaign service layer.

Splits the PR 2 single-process campaign runner into store-agnostic parts
that scale to million-run sweeps:

* :mod:`~repro.experiments.service.leases` — the lease-based job queue:
  a pure state machine (pending → leased → done/failed with TTL expiry
  and bounded attempts) plus two persistent queue implementations, one
  per store backend (flock-serialised file queue, transactional SQLite
  queue).
* :mod:`~repro.experiments.service.scheduler` — worker processes that
  lease jobs, heartbeat while simulating, and survive being SIGKILLed at
  any point; plus :func:`run_service_campaign`, the multi-worker
  counterpart of :func:`~repro.experiments.campaign.run_campaign`.
* :mod:`~repro.experiments.service.status` — a read-only stdlib HTTP
  endpoint serving live campaign progress counters.
"""

from repro.experiments.service.leases import (
    FileLeaseQueue,
    JobState,
    Lease,
    LeaseQueue,
    LeaseStateMachine,
    SqliteLeaseQueue,
)
from repro.experiments.service.scheduler import (
    WorkerSettings,
    run_service_campaign,
    spawn_worker,
)
from repro.experiments.service.status import StatusServer, progress_snapshot

__all__ = [
    "FileLeaseQueue",
    "JobState",
    "Lease",
    "LeaseQueue",
    "LeaseStateMachine",
    "SqliteLeaseQueue",
    "StatusServer",
    "WorkerSettings",
    "progress_snapshot",
    "run_service_campaign",
    "spawn_worker",
]
