"""Leased multi-worker campaign execution.

:func:`run_service_campaign` is the scale-out counterpart of
:func:`~repro.experiments.campaign.run_campaign`: instead of one parent
feeding a ``multiprocessing`` pool, N *independent* worker processes pull
jobs from a shared lease queue and write results to a shared store.  The
workers coordinate through the queue alone — no pipes, no shared memory —
so any of them can be SIGKILLed, OOM-killed or power-cycled at any
instant and the campaign still completes:

* killed **mid-run**: the lease stops being heartbeaten, expires after
  its TTL, and another worker re-leases and re-executes the job (runs are
  deterministic, so the re-execution writes the identical record);
* killed **mid-commit**: the SQLite backend commits "result + lease
  completion" as one transaction (neither or both); the JSON backend
  writes the record first, atomically, so the worst case is a stored
  result with a dangling lease — the next leaseholder sees the record
  already present and completes the job *without re-running it*;
* killed **between jobs**: nothing was held; the parent respawns the
  worker (bounded) or the remaining workers drain the queue.

Attempts are bounded per job (the PR 2 watchdog's bounded retry,
generalised): a job whose workers keep dying turns terminally ``failed``
and is recorded in the store as a ``failure`` record, retried by the next
campaign.

Workers are spawned with the ``fork`` start method so tests can
substitute :func:`repro.experiments.campaign.execute_spec` in the parent
(the same crash-injection idiom the pool tests use).
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.campaign import (
    CampaignReport,
    MissingRunError,
    RunSpec,
    _store_result,
    assemble_target,
    plan_campaign,
    resolve_targets,
)
from repro.experiments.runner import RunTimeout, alarm_deadline
from repro.experiments.service.leases import (
    JobState,
    LeaseQueue,
    job_id_for,
    queue_for_store,
)
from repro.experiments.store import ResultStoreBase


@dataclass(frozen=True)
class WorkerSettings:
    """Per-worker scheduling knobs.

    ``heartbeat_interval`` defaults to a third of the TTL: a worker must
    miss several heartbeats before its lease is stolen, so a briefly
    stalled scheduler does not cause double execution.
    """

    lease_ttl: float = 60.0
    heartbeat_interval: Optional[float] = None
    timeout: Optional[float] = None
    max_attempts: int = 3
    poll_interval: float = 0.2
    #: Simulation seconds between run checkpoints; None (default) disables
    #: checkpointing entirely — runs execute exactly as before.  Lives here
    #: (not in ExperimentConfig) so enabling it never changes config
    #: hashes, run keys or stored records.
    checkpoint_interval: Optional[float] = None

    def __post_init__(self):
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if (
            self.heartbeat_interval is not None
            and not 0 < self.heartbeat_interval < self.lease_ttl
        ):
            raise ValueError("heartbeat_interval must be in (0, lease_ttl)")
        if (
            self.checkpoint_interval is not None
            and self.checkpoint_interval <= 0
        ):
            raise ValueError("checkpoint_interval must be > 0")

    @property
    def effective_heartbeat(self) -> float:
        return (
            self.heartbeat_interval
            if self.heartbeat_interval is not None
            else self.lease_ttl / 3.0
        )


class _Heartbeat:
    """Background lease renewal while a job executes."""

    def __init__(
        self, queue: LeaseQueue, worker_id: str, job_id: str, settings: WorkerSettings
    ):
        self._queue = queue
        self._worker_id = worker_id
        self._job_id = job_id
        self._settings = settings
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._settings.effective_heartbeat):
            if not self._queue.heartbeat(
                self._worker_id, self._job_id, ttl=self._settings.lease_ttl
            ):
                self.lost = True
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def worker_loop(
    worker_id: str,
    store: ResultStoreBase,
    queue: LeaseQueue,
    specs_by_job: Dict[str, RunSpec],
    settings: WorkerSettings,
    log_stream=None,
) -> int:
    """Lease, execute, commit — until the queue is terminal.

    Returns how many jobs this worker completed.  Exceptions from the
    simulation are converted into queue ``fail`` transitions (retry or
    terminal failure); only queue/store-level errors propagate.
    """
    # Resolved at call time so fork-inherited monkeypatches of
    # campaign.execute_spec (the tests' crash-injection hook) take effect.
    from repro.experiments import campaign as campaign_mod

    completed = 0
    while True:
        lease = queue.lease(worker_id, ttl=settings.lease_ttl)
        if lease is None:
            if queue.all_terminal():
                return completed
            time.sleep(settings.poll_interval)
            continue
        spec = specs_by_job.get(lease.job_id)
        if spec is None:
            # Planner mismatch (stale queue seeded by another code version).
            queue.fail(worker_id, lease.job_id, "job unknown to this planner")
            continue
        if store.has(spec.key):
            # A previous holder crashed after persisting its result but
            # before completing the lease; adopt the stored record (and
            # drop any checkpoint it left behind — the run is done).
            store.delete_checkpoint(spec.key)
            queue.complete(worker_id, lease.job_id)
            completed += 1
            _wlog(log_stream, worker_id, f"adopted stored {spec.describe()}")
            continue
        # Checkpointing rides an optional kwarg so fork-inherited test
        # substitutes of execute_spec (single-argument crash injectors)
        # keep working unmodified.
        exec_kwargs = {}
        if settings.checkpoint_interval is not None:
            try:
                parameters = inspect.signature(
                    campaign_mod.execute_spec
                ).parameters
            except (TypeError, ValueError):  # pragma: no cover - defensive
                parameters = {}
            if "checkpoints" in parameters:
                exec_kwargs["checkpoints"] = (
                    store,
                    settings.checkpoint_interval,
                )
        with _Heartbeat(queue, worker_id, lease.job_id, settings) as heartbeat:
            try:
                with alarm_deadline(settings.timeout):
                    result = campaign_mod.execute_spec(spec, **exec_kwargs)
            except BaseException as exc:
                error = f"{type(exc).__name__}: {exc}"
                state = queue.fail(worker_id, lease.job_id, error)
                if state == JobState.FAILED:
                    store.put_failure(spec.key, error)
                _wlog(
                    log_stream,
                    worker_id,
                    f"attempt {lease.attempt} of {spec.describe()} failed "
                    f"({error}) -> {state or 'lease lost'}",
                )
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                continue
        if heartbeat.lost:
            # The lease was stolen mid-run (e.g. a long GC pause past the
            # TTL).  The result is deterministic, so storing it anyway is
            # harmless — but the lease belongs to someone else now.
            with store.batch():
                _store_result(store, spec, result)
                store.delete_checkpoint(spec.key)
            _wlog(log_stream, worker_id, f"lost lease on {spec.describe()}")
            continue
        # Persist + complete atomically where the backend can (SQLite:
        # one transaction; JSON: atomic record write, then completion).
        # The run's checkpoint is garbage-collected in the same commit —
        # completed runs never leave checkpoint debris behind.
        with store.batch():
            _store_result(store, spec, result)
            store.delete_checkpoint(spec.key)
            acknowledged = queue.complete(worker_id, lease.job_id)
        if acknowledged:
            completed += 1
        _wlog(
            log_stream,
            worker_id,
            f"ok {spec.describe()}"
            + ("" if acknowledged else " (lease had expired)"),
        )


def _wlog(stream, worker_id: str, message: str) -> None:
    if stream is not None:
        print(f"[worker {worker_id}] {message}", file=stream, flush=True)


def _worker_entry(
    worker_id: str,
    store: ResultStoreBase,
    queue: LeaseQueue,
    specs_by_job: Dict[str, RunSpec],
    settings: WorkerSettings,
    verbose: bool,
) -> None:
    import sys

    worker_loop(
        worker_id,
        store,
        queue,
        specs_by_job,
        settings,
        log_stream=sys.stderr if verbose else None,
    )


def spawn_worker(
    worker_id: str,
    store: ResultStoreBase,
    queue: LeaseQueue,
    specs_by_job: Dict[str, RunSpec],
    settings: WorkerSettings,
    *,
    verbose: bool = False,
) -> multiprocessing.Process:
    """Start one independent worker process (fork start method).

    The child talks to the campaign only through ``store`` and ``queue``
    (both reopen their handles post-fork), so it may be killed with
    SIGKILL at any point without corrupting either.
    """
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(
        target=_worker_entry,
        args=(worker_id, store, queue, specs_by_job, settings, verbose),
        name=f"campaign-worker-{worker_id}",
        daemon=False,
    )
    process.start()
    return process


@dataclass
class ServiceReport(CampaignReport):
    """A campaign report plus service-layer counters."""

    workers: int = 0
    respawned: int = 0
    partial_targets: Dict[str, str] = field(default_factory=dict)


def run_service_campaign(
    targets: Sequence[str],
    *,
    store: ResultStoreBase,
    workers: int = 2,
    runs: int = 3,
    duration: float = 200.0,
    seed: int = 1,
    settings: Optional[WorkerSettings] = None,
    retries: Optional[int] = None,
    timeout: Optional[float] = None,
    lease_ttl: Optional[float] = None,
    heartbeat_interval: Optional[float] = None,
    checkpoint_interval: Optional[float] = None,
    status_port: Optional[int] = None,
    partial: bool = False,
    respawn_budget: Optional[int] = None,
    log_stream=None,
) -> ServiceReport:
    """Run a campaign with N leased worker processes against one store.

    Always resume-semantics: runs already in the store are skipped —
    that is the service's reason to exist.  With ``status_port`` a
    read-only HTTP endpoint serves live progress counters for the
    campaign's duration (port 0 picks a free port).  With ``partial``,
    targets whose runs are incomplete render from whatever is stored
    (flagged with a coverage note) instead of erroring.

    The parent is a supervisor, not a scheduler: it seeds the queue,
    keeps ``workers`` processes alive (respawning dead ones within
    ``respawn_budget``), and assembles artefacts at the end.  All actual
    scheduling happens in the queue's lease transitions.
    """
    from repro.experiments.service.status import StatusServer, progress_snapshot

    if workers < 1:
        raise ValueError("workers must be >= 1")
    settings = settings or WorkerSettings()
    if lease_ttl is not None:
        settings = replace(settings, lease_ttl=lease_ttl)
    if heartbeat_interval is not None:
        settings = replace(settings, heartbeat_interval=heartbeat_interval)
    if timeout is not None:
        settings = replace(settings, timeout=timeout)
    if retries is not None:
        settings = replace(settings, max_attempts=retries + 1)
    if checkpoint_interval is not None:
        settings = replace(settings, checkpoint_interval=checkpoint_interval)

    started = time.time()
    target_list = resolve_targets(targets)
    specs = plan_campaign(target_list, runs=runs, duration=duration, seed=seed)
    specs_by_job = {job_id_for(spec.key): spec for spec in specs}
    report = ServiceReport(planned=len(specs), workers=workers)

    to_run: List[RunSpec] = []
    for spec in specs:
        if store.has(spec.key):
            report.skipped += 1
        else:
            to_run.append(spec)

    queue = queue_for_store(store, max_attempts=settings.max_attempts)
    queue.seed(job_id_for(spec.key) for spec in to_run)
    _log(
        log_stream,
        f"{len(specs)} runs planned for {len(target_list)} targets "
        f"({report.skipped} already stored, {len(to_run)} to execute) on "
        f"{store.describe()} with {workers} workers "
        f"(ttl={settings.lease_ttl:.0f}s, "
        f"max_attempts={settings.max_attempts})",
    )

    status_server: Optional[StatusServer] = None
    if status_port is not None:
        status_server = StatusServer(
            lambda: progress_snapshot(
                store, specs, queue=queue, lease_ttl=settings.lease_ttl
            ),
            port=status_port,
        )
        status_server.start()
        _log(log_stream, f"status endpoint on http://127.0.0.1:{status_server.port}/status")

    budget = (
        respawn_budget
        if respawn_budget is not None
        else workers * settings.max_attempts
    )
    procs: Dict[str, multiprocessing.Process] = {}
    try:
        if to_run:
            for n in range(workers):
                worker_id = f"w{n}-{os.getpid()}"
                procs[worker_id] = spawn_worker(
                    worker_id, store, queue, specs_by_job, settings,
                    verbose=log_stream is not None,
                )
            while True:
                alive = {wid: p for wid, p in procs.items() if p.is_alive()}
                if queue.all_terminal():
                    break
                if len(alive) < workers and budget > 0:
                    for wid, proc in list(procs.items()):
                        if proc.is_alive() or budget <= 0:
                            continue
                        proc.join(timeout=0)
                        budget -= 1
                        report.respawned += 1
                        new_id = f"{wid}r{report.respawned}"
                        _log(
                            log_stream,
                            f"worker {wid} exited (code {proc.exitcode}); "
                            f"respawning as {new_id}",
                        )
                        del procs[wid]
                        procs[new_id] = spawn_worker(
                            new_id, store, queue, specs_by_job, settings,
                            verbose=log_stream is not None,
                        )
                elif not alive:
                    _log(
                        log_stream,
                        "all workers gone and respawn budget exhausted; "
                        "abandoning queue drain",
                    )
                    break
                time.sleep(settings.poll_interval)
        for proc in procs.values():
            proc.join(timeout=settings.lease_ttl + 30.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join()
    finally:
        if status_server is not None:
            status_server.stop()

    # Fold queue outcomes into the report and the store's failure records.
    for job_id, error in queue.errors().items():
        spec = specs_by_job.get(job_id)
        if spec is None:
            continue
        report.failed.append((spec, error))
        if store.get_failure(spec.key) is None:
            store.put_failure(spec.key, error)
    report.executed = sum(
        1 for spec in to_run if store.has(spec.key)
    )

    for target in target_list:
        try:
            report.outputs[target] = assemble_target(
                target, store, runs=runs, duration=duration, seed=seed
            )
        except MissingRunError as exc:
            if partial:
                try:
                    text, note = assemble_target(
                        target, store, runs=runs, duration=duration,
                        seed=seed, partial=True,
                    )
                    report.outputs[target] = text
                    report.partial_targets[target] = note
                    _log(log_stream, f"assembled {target} partially ({note})")
                    continue
                except MissingRunError:
                    pass
            report.errors[target] = str(exc)
            _log(log_stream, f"cannot assemble {target}: {exc}")
    report.wall_time_s = time.time() - started
    _log(log_stream, report.summary())
    return report


def _log(stream, message: str) -> None:
    if stream is not None:
        print(f"[service] {message}", file=stream, flush=True)


# RunTimeout is part of this module's error surface (workers raise it when
# a run exceeds its budget); re-exported for callers.
__all__ = [
    "RunTimeout",
    "ServiceReport",
    "WorkerSettings",
    "run_service_campaign",
    "spawn_worker",
    "worker_loop",
]
