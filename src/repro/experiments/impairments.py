"""Impairment sweep: attack effectiveness under realistic fault load.

The paper evaluates its attacks on an ideal channel with an always-on
fleet.  This target re-runs the inter-area interception A/B comparison
under a grid of deterministic fault plans — per-link frame loss crossed
with node churn — and reports how the attack's drop rate and the baseline
delivery ratio degrade.  The point of the sweep is robustness of the
*conclusion*: interception should remain the dominant loss cause even when
the environment itself starts eating packets.

Levels are module constants so tests can shrink the grid by monkeypatching
(worker processes inherit the patched values through fork).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures.fig7 import AbRunner
from repro.experiments.reporting import fmt_pct
from repro.experiments.runner import AbResult, run_ab
from repro.faults.plan import ChurnPlan, FaultPlan, LinkFaultPlan

#: Per-link i.i.d. frame-loss probabilities swept (0 = the paper's ideal
#: channel, the sweep's reference column).
LOSS_LEVELS: Tuple[float, ...] = (0.0, 0.05, 0.15)

#: Churn levels as (label, mean uptime seconds); 0 disables churn.
CHURN_LEVELS: Tuple[Tuple[str, float], ...] = (
    ("none", 0.0),
    ("light", 120.0),
    ("heavy", 40.0),
)

#: Mean outage duration once a node goes down (seconds).
MEAN_DOWNTIME = 8.0


@dataclass
class ImpairmentCell:
    """One (loss rate, churn level) grid point."""

    loss_rate: float
    churn_label: str
    mean_uptime: float
    result: AbResult

    def row(self) -> str:
        r = self.result
        drop = r.drop_rate()
        return (
            f"  loss={self.loss_rate:4.0%} churn={self.churn_label:<6} "
            f"af={fmt_pct(r.af_overall)}  atk={fmt_pct(r.atk_overall)}  "
            f"drop={fmt_pct(drop)} (abs {fmt_pct(r.drop_rate(relative=False))})"
        )


@dataclass
class ImpairmentSweepResult:
    """The full loss × churn grid of A/B comparisons."""

    cells: List[ImpairmentCell]

    def get(self, loss_rate: float, churn_label: str) -> ImpairmentCell:
        for cell in self.cells:
            if cell.loss_rate == loss_rate and cell.churn_label == churn_label:
                return cell
        raise KeyError((loss_rate, churn_label))

    def format(self) -> str:
        lines = [
            "faults: inter-area interception under channel loss x node churn",
            f"  (mean outage {MEAN_DOWNTIME:.0f}s; loss is per-link i.i.d.)",
        ]
        lines.extend(cell.row() for cell in self.cells)
        reference = self.cells[0] if self.cells else None
        if reference is not None and reference.loss_rate == 0.0:
            drop = reference.result.drop_rate()
            lines.append(
                "  note: the loss=0/churn=none cell reproduces the paper's "
                f"ideal-environment drop rate ({fmt_pct(drop).strip()})"
            )
        return "\n".join(lines)


def fault_sweep(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> ImpairmentSweepResult:
    """Sweep the inter-area attack over :data:`LOSS_LEVELS` × :data:`CHURN_LEVELS`."""
    base = ExperimentConfig.inter_area_default(duration=duration, seed=seed)
    cells: List[ImpairmentCell] = []
    for loss in LOSS_LEVELS:
        for churn_label, mean_uptime in CHURN_LEVELS:
            plan = FaultPlan(
                link=LinkFaultPlan(loss_rate=loss),
                churn=ChurnPlan(
                    mean_uptime=mean_uptime, mean_downtime=MEAN_DOWNTIME
                ),
            )
            config = base.with_(
                faults=plan,
                label=f"loss{loss:.0%}-churn-{churn_label}",
            )
            result = runner(config, runs=runs, processes=processes)
            cells.append(
                ImpairmentCell(
                    loss_rate=loss,
                    churn_label=churn_label,
                    mean_uptime=mean_uptime,
                    result=result,
                )
            )
    return ImpairmentSweepResult(cells=cells)
