"""Experiment configuration.

An :class:`ExperimentConfig` fully determines one simulated scenario (modulo
the seed): road and traffic, radio technology, GeoNetworking parameters,
workload, and the attacker.  The factory methods build the paper's default
settings: a single-direction two-lane 4 000 m road, 30 m inter-vehicle
space, DSRC NLoS-median vehicle ranges, 20 s LocTE TTL, a packet per second,
and an attacker at the middle of the road.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.geonet.config import GeoNetConfig
from repro.radio.technology import CV2X, DSRC, RadioTechnology, RangeClass


class AttackKind(enum.Enum):
    """Which proof-of-concept attack the B-run deploys."""

    NONE = "none"
    INTER_AREA = "inter-area"
    INTRA_AREA = "intra-area"


class WorkloadKind(enum.Enum):
    """What traffic the application layer generates."""

    #: One vulnerable GF packet per interval toward a road-end destination.
    INTER_AREA = "inter-area"
    #: One CBF flood per interval over the whole road segment.
    INTRA_AREA = "intra-area"


@dataclass(frozen=True)
class RoadConfig:
    """Road geometry and traffic density."""

    length: float = 4000.0
    lanes_per_direction: int = 2
    lane_width: float = 5.0
    directions: int = 1
    inter_vehicle_space: float = 30.0
    prepopulate: bool = True
    spawn: bool = True
    entry_speed: float = 30.0

    def __post_init__(self):
        if self.length <= 0:
            raise ConfigError(f"road.length must be positive, got {self.length!r}")
        if self.lanes_per_direction < 1:
            raise ConfigError(
                "road.lanes_per_direction must be >= 1, got "
                f"{self.lanes_per_direction!r}"
            )
        if self.lane_width <= 0:
            raise ConfigError(
                f"road.lane_width must be positive, got {self.lane_width!r}"
            )
        if self.directions not in (1, 2):
            raise ConfigError(
                f"road.directions must be 1 or 2, got {self.directions!r}"
            )
        if self.inter_vehicle_space <= 0:
            raise ConfigError(
                "road.inter_vehicle_space must be positive, got "
                f"{self.inter_vehicle_space!r}"
            )
        if self.entry_speed <= 0:
            raise ConfigError(
                f"road.entry_speed must be positive, got {self.entry_speed!r}"
            )


#: Valid ``AttackConfig.variant`` values.  ``single`` is the paper's static
#: mid-road mast; the others are the PR-9 threat-model extensions (all
#: inter-area): ``coordinated`` multi-mast with greedy placement, a
#: ``mobile`` attacker riding the traffic flow, and an ``adaptive``
#: attacker that throttles its replay rate under detection thresholds.
ATTACK_VARIANTS = ("single", "coordinated", "mobile", "adaptive")


@dataclass(frozen=True)
class AttackConfig:
    """Where the attacker sits and how it behaves."""

    kind: AttackKind = AttackKind.NONE
    attack_range: float = 486.0
    #: Attacker x; None means the middle of the road (the paper's Fig 6).
    x: Optional[float] = None
    #: Lateral offset from the road edge (roadside deployment).
    y_offset: float = -10.0
    reaction_delay: float = 0.0005
    #: Intra-area mode: rewrite RHL to 1 (Spot 1) vs targeted replay (Spot 2).
    rewrite_rhl: bool = True
    replay_range: Optional[float] = None
    #: Attacker variant (see :data:`ATTACK_VARIANTS`).
    variant: str = "single"
    #: ``coordinated``: number of masts, placed by greedy coverage.
    n_masts: int = 3
    #: ``mobile``: ground speed (m/s) along the flow, and position-update
    #: cadence (seconds).
    mobile_speed: float = 30.0
    mobile_update_interval: float = 0.5
    #: ``adaptive``: replay budget per alert window, the window it mirrors,
    #: and the per-source replay cooldown.
    adaptive_max_replays_per_window: float = 2.0
    adaptive_window: float = 5.0
    adaptive_cooldown: float = 6.0

    def __post_init__(self):
        if self.attack_range <= 0:
            raise ConfigError(
                f"attack.attack_range must be positive, got {self.attack_range!r}"
            )
        if self.reaction_delay < 0:
            raise ConfigError(
                "attack.reaction_delay must be non-negative, got "
                f"{self.reaction_delay!r}"
            )
        if self.replay_range is not None and self.replay_range <= 0:
            raise ConfigError(
                f"attack.replay_range must be positive, got {self.replay_range!r}"
            )
        if self.variant not in ATTACK_VARIANTS:
            raise ConfigError(
                f"attack.variant must be one of {ATTACK_VARIANTS}, got "
                f"{self.variant!r}"
            )
        if self.variant != "single" and self.kind is AttackKind.INTRA_AREA:
            raise ConfigError(
                "attack.variant extensions are inter-area only; "
                f"got variant={self.variant!r} with kind=intra-area"
            )
        if self.n_masts < 1:
            raise ConfigError(
                f"attack.n_masts must be >= 1, got {self.n_masts!r}"
            )
        if self.mobile_speed <= 0:
            raise ConfigError(
                f"attack.mobile_speed must be positive, got {self.mobile_speed!r}"
            )
        if self.mobile_update_interval <= 0:
            raise ConfigError(
                "attack.mobile_update_interval must be positive, got "
                f"{self.mobile_update_interval!r}"
            )
        if self.adaptive_max_replays_per_window <= 0:
            raise ConfigError(
                "attack.adaptive_max_replays_per_window must be positive, "
                f"got {self.adaptive_max_replays_per_window!r}"
            )
        if self.adaptive_window <= 0:
            raise ConfigError(
                f"attack.adaptive_window must be positive, got "
                f"{self.adaptive_window!r}"
            )
        if self.adaptive_cooldown < 0:
            raise ConfigError(
                "attack.adaptive_cooldown must be non-negative, got "
                f"{self.adaptive_cooldown!r}"
            )


@dataclass(frozen=True)
class WorkloadConfig:
    """Application packet generation."""

    kind: WorkloadKind = WorkloadKind.INTER_AREA
    packet_interval: float = 1.0
    #: Inter-area destinations sit this far beyond each road end.
    dest_offset: float = 20.0
    dest_radius: float = 15.0
    payload: str = "hazard-warning"
    #: Optional restriction of packet sources to an x-interval (used by the
    #: §IV-A source-location study to sample the tiny fully covered area).
    source_xmin: Optional[float] = None
    source_xmax: Optional[float] = None

    def __post_init__(self):
        if self.packet_interval <= 0:
            raise ConfigError(
                "workload.packet_interval must be positive, got "
                f"{self.packet_interval!r}"
            )
        if self.dest_offset < 0:
            raise ConfigError(
                f"workload.dest_offset must be non-negative, got {self.dest_offset!r}"
            )
        if self.dest_radius <= 0:
            raise ConfigError(
                f"workload.dest_radius must be positive, got {self.dest_radius!r}"
            )
        if (
            self.source_xmin is not None
            and self.source_xmax is not None
            and self.source_xmax < self.source_xmin
        ):
            raise ConfigError(
                "workload.source_xmax must be >= source_xmin, got "
                f"xmin={self.source_xmin!r} xmax={self.source_xmax!r}"
            )


@dataclass(frozen=True)
class UrbanConfig:
    """Manhattan-grid geometry, urban traffic, and shadowing knobs.

    Only consulted when ``ExperimentConfig.scenario == "urban"``.  The
    defaults give a 4×4-street grid of 250 m blocks (a 750 m × 750 m
    downtown patch), ~50 km/h urban speeds, and corner shadowing with a
    15 m clearance around intersections (NLoS links between vehicles on
    different streets are blocked unless both sit near a shared corner).
    """

    streets_x: int = 4
    streets_y: int = 4
    block_size: float = 250.0
    lane_width: float = 4.0
    #: Half-width of the LoS corridor around each street centerline.  Covers
    #: both directed lanes (at ±lane_width/2) plus curb margin.
    los_half_width: float = 6.0
    #: Radius around an intersection within which diffraction carries a
    #: signal "around the corner" to the crossing street.
    corner_clearance: float = 15.0
    turn_probability: float = 0.25
    desired_speed: float = 14.0
    entry_speed: float = 10.0
    spawn_gap: float = 40.0
    inter_vehicle_space: float = 50.0
    prepopulate: bool = True
    spawn: bool = True

    def __post_init__(self):
        if self.streets_x < 2 or self.streets_y < 2:
            raise ConfigError(
                "urban grid needs >= 2 streets per axis, got "
                f"streets_x={self.streets_x!r} streets_y={self.streets_y!r}"
            )
        if self.block_size <= 0:
            raise ConfigError(
                f"urban.block_size must be positive, got {self.block_size!r}"
            )
        if self.lane_width <= 0:
            raise ConfigError(
                f"urban.lane_width must be positive, got {self.lane_width!r}"
            )
        if self.los_half_width < self.lane_width / 2:
            raise ConfigError(
                "urban.los_half_width must cover the lane offset "
                f"(>= lane_width/2), got {self.los_half_width!r}"
            )
        if self.corner_clearance < 0:
            raise ConfigError(
                "urban.corner_clearance must be non-negative, got "
                f"{self.corner_clearance!r}"
            )
        if not 0.0 <= self.turn_probability <= 1.0:
            raise ConfigError(
                "urban.turn_probability must be in [0, 1], got "
                f"{self.turn_probability!r}"
            )
        for name in ("desired_speed", "entry_speed", "spawn_gap",
                     "inter_vehicle_space"):
            if getattr(self, name) <= 0:
                raise ConfigError(
                    f"urban.{name} must be positive, got {getattr(self, name)!r}"
                )


@dataclass(frozen=True)
class DetectionConfig:
    """Online misbehavior-detection pipeline knobs.

    Disabled by default: a default run deploys no detectors, schedules no
    window timer, and stays bit-identical to the seed goldens.  When
    enabled, a :class:`~repro.core.online_detection.DetectionPipeline`
    monitors every ``monitor_stride``-th vehicle and scores tumbling
    ``window``-second windows against ``alert_rate_threshold`` (alerts per
    monitored node per window; see ``docs/detection.md`` for calibration).
    """

    enabled: bool = False
    #: Tumbling aggregation window (seconds).
    window: float = 5.0
    #: Alerts per monitored node per window that flag a window.
    alert_rate_threshold: float = 5.0
    #: Monitor every Nth spawned vehicle (1 = the whole fleet).
    monitor_stride: int = 1
    #: Per-detector knobs; None derives plausible_range from the
    #: technology's vehicle range.
    plausible_range: Optional[float] = None
    dedup_window: float = 2.0
    rhl_drop_threshold: int = 3
    #: Bounded-state knobs forwarded to every MisbehaviorDetector.
    max_tracked: int = 4096
    prune_interval: float = 5.0

    def __post_init__(self):
        if self.window <= 0:
            raise ConfigError(
                f"detection.window must be positive, got {self.window!r}"
            )
        if self.alert_rate_threshold <= 0:
            raise ConfigError(
                "detection.alert_rate_threshold must be positive, got "
                f"{self.alert_rate_threshold!r}"
            )
        if self.monitor_stride < 1:
            raise ConfigError(
                "detection.monitor_stride must be >= 1, got "
                f"{self.monitor_stride!r}"
            )
        if self.plausible_range is not None and self.plausible_range <= 0:
            raise ConfigError(
                "detection.plausible_range must be positive (or None), got "
                f"{self.plausible_range!r}"
            )
        if self.dedup_window <= 0:
            raise ConfigError(
                f"detection.dedup_window must be positive, got "
                f"{self.dedup_window!r}"
            )
        if self.max_tracked < 1:
            raise ConfigError(
                f"detection.max_tracked must be >= 1, got {self.max_tracked!r}"
            )
        if self.prune_interval <= 0:
            raise ConfigError(
                "detection.prune_interval must be positive, got "
                f"{self.prune_interval!r}"
            )


#: Valid ``ExperimentConfig.scenario`` values.
SCENARIOS = ("highway", "urban")


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully-specified scenario."""

    technology: RadioTechnology = DSRC
    #: "highway" (the paper's 4 000 m straight road, the default) or
    #: "urban" (Manhattan grid + corner shadowing; see ``urban``).
    scenario: str = "highway"
    road: RoadConfig = field(default_factory=RoadConfig)
    urban: UrbanConfig = field(default_factory=UrbanConfig)
    geonet: GeoNetConfig = field(default_factory=GeoNetConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    attack: AttackConfig = field(default_factory=AttackConfig)
    #: Online misbehavior detection (off by default — bit-identity).
    detection: DetectionConfig = field(default_factory=DetectionConfig)
    duration: float = 200.0
    bin_width: float = 5.0
    mobility_dt: float = 0.1
    #: Independent per-receiver frame-loss probability (0 = ideal channel,
    #: the paper's setting); used by robustness ablations.
    channel_loss_rate: float = 0.0
    #: Use the grid-backed receiver lookup (False = linear-scan fallback,
    #: kept for A/B benchmarking and equivalence tests).
    channel_use_spatial_index: bool = True
    #: Run vehicle beaconing/mobility through the struct-of-arrays fleet
    #: (:mod:`repro.geonet.fleet`): one batched tick replaces N per-node
    #: beacon timers and O(N) per-frame receiver scans.  False (default)
    #: keeps the per-object path, bit-identical to the seed goldens; the
    #: batched path is outcome-equivalent (same PDR/hop statistics within
    #: sampling tolerance) but draws from its own ``fleet-beacon`` stream.
    fleet_use_batched: bool = False
    #: Batched beacon tick width (seconds); None uses ``mobility_dt``.
    #: Only meaningful with ``fleet_use_batched=True``.
    fleet_beacon_tick: Optional[float] = None
    #: Deterministic fault injection (link loss, churn, GPS error, beacon
    #: timing).  The default zero plan installs nothing and changes nothing
    #: — golden-verified bit-identity with a plan-less run.
    faults: FaultPlan = field(default_factory=FaultPlan)
    #: Cadence (seconds) of the runtime invariant checker; None (default)
    #: disables it.  Enabling occupies event-queue slots, so it is outside
    #: the bit-identity contract.
    invariant_check_interval: Optional[float] = None
    seed: int = 1
    label: str = ""

    def __post_init__(self):
        if self.scenario not in SCENARIOS:
            raise ConfigError(
                f"scenario must be one of {SCENARIOS}, got {self.scenario!r}"
            )
        if self.duration <= 0:
            raise ConfigError(f"duration must be positive, got {self.duration!r}")
        if self.bin_width <= 0:
            raise ConfigError(f"bin_width must be positive, got {self.bin_width!r}")
        if self.mobility_dt <= 0:
            raise ConfigError(
                f"mobility_dt must be positive, got {self.mobility_dt!r}"
            )
        if not 0.0 <= self.channel_loss_rate < 1.0:
            raise ConfigError(
                f"channel_loss_rate must be in [0, 1), got {self.channel_loss_rate!r}"
            )
        if (
            self.invariant_check_interval is not None
            and self.invariant_check_interval <= 0
        ):
            raise ConfigError(
                "invariant_check_interval must be positive (or None), got "
                f"{self.invariant_check_interval!r}"
            )
        if self.fleet_beacon_tick is not None and self.fleet_beacon_tick <= 0:
            raise ConfigError(
                "fleet_beacon_tick must be positive (or None), got "
                f"{self.fleet_beacon_tick!r}"
            )

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    @property
    def vehicle_range(self) -> float:
        """Vehicle-to-vehicle range: the technology's NLoS-median (paper §IV)."""
        return self.technology.vehicle_range_m

    @property
    def attacker_x(self) -> float:
        """Attacker position along the road (middle by default)."""
        return self.road.length / 2 if self.attack.x is None else self.attack.x

    @property
    def n_bins(self) -> int:
        """Number of reporting time bins."""
        return int(math.ceil(self.duration / self.bin_width))

    def attack_range_for(self, range_class: RangeClass) -> float:
        """The attack range for a Table II range class of this technology."""
        return self.technology.range_for(range_class)

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    @staticmethod
    def inter_area_default(
        *,
        technology: RadioTechnology = DSRC,
        attack_range: Optional[float] = None,
        duration: float = 200.0,
        seed: int = 1,
        **overrides,
    ) -> "ExperimentConfig":
        """The paper's default inter-area effectiveness setting (§IV-A).

        The GF hop budget is sized so a packet can traverse the whole road
        (the paper's RHL=10 example is for intra-area floods).
        """
        hops_needed = math.ceil(4100.0 / technology.vehicle_range_m) + 6
        geonet = GeoNetConfig(
            dist_max=technology.max_range_m,
            plausibility_threshold=technology.vehicle_range_m,
            default_rhl=max(10, hops_needed),
        )
        config = ExperimentConfig(
            technology=technology,
            geonet=geonet,
            workload=WorkloadConfig(kind=WorkloadKind.INTER_AREA),
            attack=AttackConfig(
                kind=AttackKind.INTER_AREA,
                attack_range=(
                    technology.nlos_worst_m if attack_range is None else attack_range
                ),
            ),
            duration=duration,
            seed=seed,
        )
        return replace(config, **overrides) if overrides else config

    @staticmethod
    def intra_area_default(
        *,
        technology: RadioTechnology = DSRC,
        attack_range: Optional[float] = None,
        duration: float = 200.0,
        seed: int = 1,
        **overrides,
    ) -> "ExperimentConfig":
        """The paper's default intra-area effectiveness setting (§IV-A)."""
        geonet = GeoNetConfig(
            dist_max=technology.max_range_m,
            plausibility_threshold=technology.vehicle_range_m,
            default_rhl=10,
        )
        config = ExperimentConfig(
            technology=technology,
            geonet=geonet,
            workload=WorkloadConfig(kind=WorkloadKind.INTRA_AREA),
            attack=AttackConfig(
                kind=AttackKind.INTRA_AREA,
                attack_range=(
                    technology.nlos_median_m if attack_range is None else attack_range
                ),
            ),
            duration=duration,
            seed=seed,
        )
        return replace(config, **overrides) if overrides else config

    def with_(self, **overrides) -> "ExperimentConfig":
        """A copy with top-level fields replaced."""
        return replace(self, **overrides)

    def urbanized(self, **urban_overrides) -> "ExperimentConfig":
        """A copy switched to the urban scenario.

        Keyword arguments override :class:`UrbanConfig` fields, e.g.
        ``config.urbanized(streets_x=3, block_size=200.0)``.
        """
        urban = (
            replace(self.urban, **urban_overrides)
            if urban_overrides
            else self.urban
        )
        return replace(self, scenario="urban", urban=urban)


#: Named technologies for CLI parsing.
TECHNOLOGY_BY_NAME = {"DSRC": DSRC, "C-V2X": CV2X, "CV2X": CV2X}
