"""Experiment configuration.

An :class:`ExperimentConfig` fully determines one simulated scenario (modulo
the seed): road and traffic, radio technology, GeoNetworking parameters,
workload, and the attacker.  The factory methods build the paper's default
settings: a single-direction two-lane 4 000 m road, 30 m inter-vehicle
space, DSRC NLoS-median vehicle ranges, 20 s LocTE TTL, a packet per second,
and an attacker at the middle of the road.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.geonet.config import GeoNetConfig
from repro.radio.technology import CV2X, DSRC, RadioTechnology, RangeClass


class AttackKind(enum.Enum):
    """Which proof-of-concept attack the B-run deploys."""

    NONE = "none"
    INTER_AREA = "inter-area"
    INTRA_AREA = "intra-area"


class WorkloadKind(enum.Enum):
    """What traffic the application layer generates."""

    #: One vulnerable GF packet per interval toward a road-end destination.
    INTER_AREA = "inter-area"
    #: One CBF flood per interval over the whole road segment.
    INTRA_AREA = "intra-area"


@dataclass(frozen=True)
class RoadConfig:
    """Road geometry and traffic density."""

    length: float = 4000.0
    lanes_per_direction: int = 2
    lane_width: float = 5.0
    directions: int = 1
    inter_vehicle_space: float = 30.0
    prepopulate: bool = True
    spawn: bool = True
    entry_speed: float = 30.0

    def __post_init__(self):
        if self.inter_vehicle_space <= 0:
            raise ValueError("inter_vehicle_space must be positive")


@dataclass(frozen=True)
class AttackConfig:
    """Where the attacker sits and how it behaves."""

    kind: AttackKind = AttackKind.NONE
    attack_range: float = 486.0
    #: Attacker x; None means the middle of the road (the paper's Fig 6).
    x: Optional[float] = None
    #: Lateral offset from the road edge (roadside deployment).
    y_offset: float = -10.0
    reaction_delay: float = 0.0005
    #: Intra-area mode: rewrite RHL to 1 (Spot 1) vs targeted replay (Spot 2).
    rewrite_rhl: bool = True
    replay_range: Optional[float] = None

    def __post_init__(self):
        if self.attack_range <= 0:
            raise ValueError("attack_range must be positive")


@dataclass(frozen=True)
class WorkloadConfig:
    """Application packet generation."""

    kind: WorkloadKind = WorkloadKind.INTER_AREA
    packet_interval: float = 1.0
    #: Inter-area destinations sit this far beyond each road end.
    dest_offset: float = 20.0
    dest_radius: float = 15.0
    payload: str = "hazard-warning"
    #: Optional restriction of packet sources to an x-interval (used by the
    #: §IV-A source-location study to sample the tiny fully covered area).
    source_xmin: Optional[float] = None
    source_xmax: Optional[float] = None

    def __post_init__(self):
        if self.packet_interval <= 0:
            raise ValueError("packet_interval must be positive")
        if (
            self.source_xmin is not None
            and self.source_xmax is not None
            and self.source_xmax < self.source_xmin
        ):
            raise ValueError("source_xmax must be >= source_xmin")


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully-specified scenario."""

    technology: RadioTechnology = DSRC
    road: RoadConfig = field(default_factory=RoadConfig)
    geonet: GeoNetConfig = field(default_factory=GeoNetConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    attack: AttackConfig = field(default_factory=AttackConfig)
    duration: float = 200.0
    bin_width: float = 5.0
    mobility_dt: float = 0.1
    #: Independent per-receiver frame-loss probability (0 = ideal channel,
    #: the paper's setting); used by robustness ablations.
    channel_loss_rate: float = 0.0
    #: Use the grid-backed receiver lookup (False = linear-scan fallback,
    #: kept for A/B benchmarking and equivalence tests).
    channel_use_spatial_index: bool = True
    seed: int = 1
    label: str = ""

    def __post_init__(self):
        if self.duration <= 0 or self.bin_width <= 0:
            raise ValueError("duration and bin_width must be positive")
        if not 0.0 <= self.channel_loss_rate < 1.0:
            raise ValueError("channel_loss_rate must be in [0, 1)")

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    @property
    def vehicle_range(self) -> float:
        """Vehicle-to-vehicle range: the technology's NLoS-median (paper §IV)."""
        return self.technology.vehicle_range_m

    @property
    def attacker_x(self) -> float:
        """Attacker position along the road (middle by default)."""
        return self.road.length / 2 if self.attack.x is None else self.attack.x

    @property
    def n_bins(self) -> int:
        """Number of reporting time bins."""
        return int(math.ceil(self.duration / self.bin_width))

    def attack_range_for(self, range_class: RangeClass) -> float:
        """The attack range for a Table II range class of this technology."""
        return self.technology.range_for(range_class)

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    @staticmethod
    def inter_area_default(
        *,
        technology: RadioTechnology = DSRC,
        attack_range: Optional[float] = None,
        duration: float = 200.0,
        seed: int = 1,
        **overrides,
    ) -> "ExperimentConfig":
        """The paper's default inter-area effectiveness setting (§IV-A).

        The GF hop budget is sized so a packet can traverse the whole road
        (the paper's RHL=10 example is for intra-area floods).
        """
        hops_needed = math.ceil(4100.0 / technology.vehicle_range_m) + 6
        geonet = GeoNetConfig(
            dist_max=technology.max_range_m,
            plausibility_threshold=technology.vehicle_range_m,
            default_rhl=max(10, hops_needed),
        )
        config = ExperimentConfig(
            technology=technology,
            geonet=geonet,
            workload=WorkloadConfig(kind=WorkloadKind.INTER_AREA),
            attack=AttackConfig(
                kind=AttackKind.INTER_AREA,
                attack_range=(
                    technology.nlos_worst_m if attack_range is None else attack_range
                ),
            ),
            duration=duration,
            seed=seed,
        )
        return replace(config, **overrides) if overrides else config

    @staticmethod
    def intra_area_default(
        *,
        technology: RadioTechnology = DSRC,
        attack_range: Optional[float] = None,
        duration: float = 200.0,
        seed: int = 1,
        **overrides,
    ) -> "ExperimentConfig":
        """The paper's default intra-area effectiveness setting (§IV-A)."""
        geonet = GeoNetConfig(
            dist_max=technology.max_range_m,
            plausibility_threshold=technology.vehicle_range_m,
            default_rhl=10,
        )
        config = ExperimentConfig(
            technology=technology,
            geonet=geonet,
            workload=WorkloadConfig(kind=WorkloadKind.INTRA_AREA),
            attack=AttackConfig(
                kind=AttackKind.INTRA_AREA,
                attack_range=(
                    technology.nlos_median_m if attack_range is None else attack_range
                ),
            ),
            duration=duration,
            seed=seed,
        )
        return replace(config, **overrides) if overrides else config

    def with_(self, **overrides) -> "ExperimentConfig":
        """A copy with top-level fields replaced."""
        return replace(self, **overrides)


#: Named technologies for CLI parsing.
TECHNOLOGY_BY_NAME = {"DSRC": DSRC, "C-V2X": CV2X, "CV2X": CV2X}
