"""Metrics: per-bin reception rates, interception rate γ, blockage rate λ.

Definitions follow §IV of the paper:

* inter-area — per-bin *packet reception rate* = vulnerable packets received
  at a destination / vulnerable packets transmitted, attributed to the bin
  of the **send** time;
* intra-area — each packet's reception ratio = vehicles that received it /
  vehicles on road at send time; a bin's rate averages the packets sent in
  that bin;
* γ and λ — the average drop of the reception rate from the attack-free run
  to the attacked run over the time bins.  The paper's headline numbers are
  relative drops (an mL attacker "intercepts 99.9 % of vulnerable packets"),
  so :func:`mean_drop_rate` reports the drop relative to the attack-free
  rate; the absolute percentage-point drop is also available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class PacketOutcome:
    """What happened to one application packet."""

    packet_id: tuple
    send_time: float
    source_x: float
    direction: int
    #: inter-area: 1.0 if a destination received it, else 0.0;
    #: intra-area: the fraction of on-road vehicles that received it.
    success: float = 0.0
    #: intra-area bookkeeping
    receivers: int = 0
    denominator: int = 1
    in_fully_covered_area: bool = False
    delivery_latency: Optional[float] = None


@dataclass
class BinnedRates:
    """Reception rates per time bin; None for bins with no packets."""

    bin_width: float
    rates: List[Optional[float]]

    @property
    def n_bins(self) -> int:
        return len(self.rates)

    def overall(self) -> Optional[float]:
        """Mean over non-empty bins."""
        values = [r for r in self.rates if r is not None]
        return sum(values) / len(values) if values else None


@dataclass
class RunMetrics:
    """All packet outcomes of a single run."""

    duration: float
    bin_width: float
    outcomes: List[PacketOutcome] = field(default_factory=list)

    def record(self, outcome: PacketOutcome) -> None:
        self.outcomes.append(outcome)

    @property
    def n_bins(self) -> int:
        return int(math.ceil(self.duration / self.bin_width))

    def binned_rates(self) -> BinnedRates:
        """Average packet success per send-time bin."""
        sums = [0.0] * self.n_bins
        counts = [0] * self.n_bins
        for outcome in self.outcomes:
            idx = min(int(outcome.send_time // self.bin_width), self.n_bins - 1)
            sums[idx] += outcome.success
            counts[idx] += 1
        rates: List[Optional[float]] = [
            (sums[i] / counts[i]) if counts[i] else None for i in range(self.n_bins)
        ]
        return BinnedRates(bin_width=self.bin_width, rates=rates)

    def overall_rate(self) -> float:
        """Success averaged over every packet of the run."""
        if not self.outcomes:
            return 0.0
        return sum(o.success for o in self.outcomes) / len(self.outcomes)


def mean_bin_rates(
    runs: Sequence[BinnedRates],
) -> List[Optional[float]]:
    """Average each bin across runs, skipping empty bins."""
    if not runs:
        return []
    n_bins = max(r.n_bins for r in runs)
    means: List[Optional[float]] = []
    for i in range(n_bins):
        values = [
            r.rates[i] for r in runs if i < r.n_bins and r.rates[i] is not None
        ]
        means.append(sum(values) / len(values) if values else None)
    return means


def mean_drop_rate(
    af_rates: Sequence[Optional[float]],
    atk_rates: Sequence[Optional[float]],
    *,
    relative: bool = True,
) -> Optional[float]:
    """γ / λ: average per-bin reception drop from attack-free to attacked.

    ``relative=True`` divides each bin's drop by the attack-free rate (how
    the paper quotes "intercepts 99.9 % of vulnerable packets");
    ``relative=False`` gives the absolute percentage-point drop.
    """
    drops = []
    for af, atk in zip(af_rates, atk_rates):
        if af is None or atk is None:
            continue
        if relative:
            if af <= 0:
                continue
            drops.append((af - atk) / af)
        else:
            drops.append(af - atk)
    if not drops:
        return None
    return sum(drops) / len(drops)


def cumulative_drop_rates(
    af_rates: Sequence[Optional[float]],
    atk_rates: Sequence[Optional[float]],
    *,
    relative: bool = True,
) -> List[Optional[float]]:
    """Accumulated γ/λ over time (Figs 8 and 10): drop averaged over bins
    0..k for each k."""
    result: List[Optional[float]] = []
    drops: List[float] = []
    for af, atk in zip(af_rates, atk_rates):
        if af is not None and atk is not None:
            if relative:
                if af > 0:
                    drops.append((af - atk) / af)
            else:
                drops.append(af - atk)
        result.append(sum(drops) / len(drops) if drops else None)
    return result
