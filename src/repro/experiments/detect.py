"""Detection sweep: online-detector scoring across the threat matrix.

The tentpole question of ROADMAP item 4: a fleet operator deploys the
windowed alert-rate pipeline (:mod:`repro.core.online_detection`) — which
attacker variants does it catch, how fast, and what do real impairments
cost in false positives?  The sweep crosses

* **attacker variant** — the paper's static mast, coordinated greedy-placed
  multi-mast, a mobile attacker riding the flow, and the adaptive attacker
  that throttles replays under the alert threshold;
* **impairment** — the ideal channel versus a realistic loss + churn + GPS
  error plan (the false-positive source: GPS error pushes honest beacons
  past the plausibility range);
* **scenario** — highway and Manhattan grid.

Every cell is a seed-paired A/B comparison: the attacked (B) runs score
recall and detection latency, the attack-free (A) runs under the same
impairments supply the false-positive denominator, and the reception drop
keeps attack *impact* on the same table — the adaptive row is the point:
near-static interception at a replay budget the detector never flags.

Grids are module constants so tests can shrink them by monkeypatching
(worker processes inherit the patched values through fork).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import DetectionConfig, ExperimentConfig
from repro.experiments.figures.fig7 import AbRunner
from repro.experiments.reporting import detection_table, fmt_pct
from repro.experiments.runner import AbResult, RunResult, run_ab
from repro.faults.plan import ChurnPlan, FaultPlan, GpsFaultPlan, LinkFaultPlan

#: Attacker variants swept (B-runs).
VARIANTS: Tuple[str, ...] = ("single", "coordinated", "mobile", "adaptive")

#: (label, fault plan) impairment levels.  ``impaired`` is the realistic
#: environment: 5 % i.i.d. link loss, occasional node outages, and an 8 m
#: GPS error that makes honest edge-of-range beacons implausible.
IMPAIRMENTS: Tuple[Tuple[str, FaultPlan], ...] = (
    ("clean", FaultPlan()),
    (
        "impaired",
        FaultPlan(
            link=LinkFaultPlan(loss_rate=0.05),
            churn=ChurnPlan(mean_uptime=60.0, mean_downtime=5.0),
            gps=GpsFaultPlan(error_stddev=8.0),
        ),
    ),
)

#: Scenarios swept.
DETECT_SCENARIOS: Tuple[str, ...] = ("highway", "urban")


def _first_detection(run: RunResult) -> Optional[float]:
    value = run.extras.get("detect_first_detection_s", -1.0)
    return value if value >= 0.0 else None


@dataclass
class DetectCell:
    """One (scenario, variant, impairment) grid point."""

    scenario: str
    variant: str
    impairment: str
    result: AbResult

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Optional[float]]:
        """Precision / recall / latency / FP statistics for this cell.

        * **recall** — fraction of attacked runs with a flagged window;
        * **latency** — mean first-detection time over detected runs;
        * **precision** — detected attacked runs over all flagging runs
          (attacked detections + attack-free runs that flagged a window,
          the impairment-driven false alarms);
        * **fp_window_rate** — flagged windows over total windows in the
          attack-free runs;
        * **fp_alerts** — total attack-free alerts (the pinned, quantified
          nonzero-tolerable FP source under impairments);
        * **drop** — the cell's attack impact (γ), same as every A/B table.
        """
        atk = self.result.atk_runs
        af = self.result.af_runs
        detected = [r for r in atk if _first_detection(r) is not None]
        latencies = [_first_detection(r) for r in detected]
        af_flagging = [
            r for r in af if r.extras.get("detect_windows_flagged", 0.0) > 0
        ]
        af_windows = sum(
            r.extras.get("detect_windows_total", 0.0) for r in af
        )
        af_flagged = sum(
            r.extras.get("detect_windows_flagged", 0.0) for r in af
        )
        flagging_total = len(detected) + len(af_flagging)
        return {
            "recall": len(detected) / len(atk) if atk else None,
            "latency": (
                sum(latencies) / len(latencies) if latencies else None
            ),
            "precision": (
                len(detected) / flagging_total if flagging_total else None
            ),
            "fp_window_rate": af_flagged / af_windows if af_windows else 0.0,
            "fp_alerts": sum(
                r.extras.get("detect_alerts_total", 0.0) for r in af
            ),
            "drop": self.result.drop_rate(),
            "replays": (
                sum(r.extras.get("replays_sent", 0.0) for r in atk) / len(atk)
                if atk
                else 0.0
            ),
        }

    @property
    def label(self) -> str:
        return f"{self.scenario}/{self.variant}/{self.impairment}"


@dataclass
class DetectSweepResult:
    """The full scenario × variant × impairment grid."""

    cells: List[DetectCell]

    def get(self, scenario: str, variant: str, impairment: str) -> DetectCell:
        for cell in self.cells:
            if (
                cell.scenario == scenario
                and cell.variant == variant
                and cell.impairment == impairment
            ):
                return cell
        raise KeyError((scenario, variant, impairment))

    def format(self) -> str:
        lines = [
            "detect: online detection vs the extended threat model",
            "  (recall/latency from attacked runs; precision counts "
            "impairment-flagged attack-free runs as false alarms)",
        ]
        lines.extend(
            detection_table(
                [(cell.label, cell.metrics()) for cell in self.cells]
            )
        )
        adaptive = [c for c in self.cells if c.variant == "adaptive"]
        static = [c for c in self.cells if c.variant == "single"]
        if adaptive and static:
            a_recall = [
                m["recall"]
                for m in (c.metrics() for c in adaptive)
                if m["recall"] is not None
            ]
            s_recall = [
                m["recall"]
                for m in (c.metrics() for c in static)
                if m["recall"] is not None
            ]
            if a_recall and s_recall:
                lines.append(
                    "  note: adaptive replay throttling cuts recall to "
                    f"{fmt_pct(sum(a_recall) / len(a_recall)).strip()} vs "
                    f"{fmt_pct(sum(s_recall) / len(s_recall)).strip()} for "
                    "the static mast at comparable interception"
                )
        return "\n".join(lines)


def detect_sweep(
    *,
    runs: int = 3,
    duration: float = 200.0,
    processes: int = 1,
    seed: int = 1,
    runner: AbRunner = run_ab,
) -> DetectSweepResult:
    """Sweep :data:`DETECT_SCENARIOS` × :data:`VARIANTS` × :data:`IMPAIRMENTS`."""
    base = ExperimentConfig.inter_area_default(duration=duration, seed=seed)
    base = base.with_(detection=DetectionConfig(enabled=True))
    cells: List[DetectCell] = []
    for scenario in DETECT_SCENARIOS:
        scenario_base = base.urbanized() if scenario == "urban" else base
        for variant in VARIANTS:
            for label, plan in IMPAIRMENTS:
                config = scenario_base.with_(
                    attack=replace(scenario_base.attack, variant=variant),
                    faults=plan,
                    label=f"{scenario}-{variant}-{label}",
                )
                result = runner(config, runs=runs, processes=processes)
                cells.append(
                    DetectCell(
                        scenario=scenario,
                        variant=variant,
                        impairment=label,
                        result=result,
                    )
                )
    return DetectSweepResult(cells=cells)
