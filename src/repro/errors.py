"""Shared exception types.

Lives at the package root so every layer (``geonet``, ``experiments``,
``faults``) can raise the same error without import cycles.
"""

from __future__ import annotations


class ConfigError(ValueError):
    """A configuration value is nonsensical.

    Raised at construction time — naming the offending field — instead of
    letting a bad value fail deep inside a run.  Subclasses
    :class:`ValueError` so callers that guarded against the old behavior
    keep working.
    """
