"""The Intelligent Driver Model (IDM).

Car-following model used by the paper for all vehicles, with the exact
parameters of Table I.  The acceleration of a vehicle at speed ``v`` with a
net bumper-to-bumper gap ``s`` to a leader at speed ``v_lead`` is

    a = a_max * (1 - (v / v0)^delta - (s*(v, dv) / s)^2)
    s*(v, dv) = s0 + max(0, v*T + v*dv / (2*sqrt(a_max*b)))

where ``dv = v - v_lead`` is the approach rate, ``v0`` the desired velocity,
``T`` the safe time headway, ``b`` the comfortable deceleration, ``delta``
the acceleration exponent and ``s0`` the minimum distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IdmParameters:
    """IDM parameters; defaults are Table I of the paper."""

    desired_velocity: float = 30.0  # m/s
    safe_time_headway: float = 1.5  # s
    max_acceleration: float = 1.0  # m/s^2
    comfortable_deceleration: float = 3.0  # m/s^2
    acceleration_exponent: float = 4.0
    minimum_distance: float = 2.0  # m
    vehicle_length: float = 4.5  # m

    def __post_init__(self):
        for name in (
            "desired_velocity",
            "safe_time_headway",
            "max_acceleration",
            "comfortable_deceleration",
            "minimum_distance",
            "vehicle_length",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.acceleration_exponent < 1:
            raise ValueError("acceleration_exponent must be >= 1")


def desired_gap(speed: float, approach_rate: float, params: IdmParameters) -> float:
    """The IDM dynamic desired gap s*(v, dv)."""
    dynamic = speed * params.safe_time_headway + (
        speed
        * approach_rate
        / (
            2.0
            * math.sqrt(params.max_acceleration * params.comfortable_deceleration)
        )
    )
    return params.minimum_distance + max(0.0, dynamic)


def idm_acceleration(
    speed: float,
    gap: float,
    lead_speed: float,
    params: IdmParameters,
) -> float:
    """IDM acceleration for one vehicle.

    ``gap`` is the net distance to the leader's rear bumper; pass
    ``math.inf`` for a free road (no leader).
    """
    free_term = (speed / params.desired_velocity) ** params.acceleration_exponent
    if math.isinf(gap):
        interaction = 0.0
    else:
        gap = max(gap, 1e-6)  # avoid division blow-up when bumper-to-bumper
        interaction = (desired_gap(speed, speed - lead_speed, params) / gap) ** 2
    return params.max_acceleration * (1.0 - free_term - interaction)


def idm_acceleration_array(
    speeds: np.ndarray,
    gaps: np.ndarray,
    lead_speeds: np.ndarray,
    params: IdmParameters,
    desired_velocities: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised IDM acceleration; ``np.inf`` gaps mean a free road.

    ``desired_velocities`` optionally overrides the shared desired velocity
    per vehicle (driver heterogeneity).
    """
    speeds = np.asarray(speeds, dtype=float)
    gaps = np.asarray(gaps, dtype=float)
    lead_speeds = np.asarray(lead_speeds, dtype=float)
    v0 = (
        params.desired_velocity
        if desired_velocities is None
        else np.asarray(desired_velocities, dtype=float)
    )
    free_term = (speeds / v0) ** params.acceleration_exponent
    dynamic = speeds * params.safe_time_headway + (
        speeds
        * (speeds - lead_speeds)
        / (2.0 * np.sqrt(params.max_acceleration * params.comfortable_deceleration))
    )
    s_star = params.minimum_distance + np.maximum(0.0, dynamic)
    safe_gaps = np.maximum(gaps, 1e-6)
    with np.errstate(divide="ignore", invalid="ignore"):
        interaction = np.where(
            np.isinf(gaps), 0.0, (s_star / safe_gaps) ** 2
        )
    return params.max_acceleration * (1.0 - free_term - interaction)
