"""Entrance spawning policy.

The paper: "Each vehicle enters the road at a speed of 30 m/s when the
vehicle ahead is more than 30 meters away from the road entrance."  The gap
equals the configured inter-vehicle space, so sparser experiments (100 m /
300 m) spawn correspondingly sparser traffic.

A direction can be *blocked* — this models drivers who received a hazard
notification and "choose not to enter the blocked road" (Fig 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.traffic.road import Direction, Lane


@dataclass
class EntranceSpawner:
    """Decides when a new vehicle may enter each lane."""

    spawn_gap: float = 30.0
    entry_speed: float = 30.0
    enabled: bool = True
    blocked_directions: Set[Direction] = field(default_factory=set)
    spawned_count: int = 0
    #: Per-attempt random inflation of the required gap, as a fraction of
    #: ``spawn_gap``.  Without it, parallel lanes admit vehicles on the same
    #: simulation tick forever, creating radio-symmetric vehicle pairs that
    #: never occur in real traffic.  Requires ``rng``.
    gap_jitter: float = 0.0
    rng: object = None

    def __post_init__(self):
        if self.spawn_gap <= 0:
            raise ValueError("spawn_gap must be positive")
        if self.entry_speed < 0:
            raise ValueError("entry_speed must be non-negative")
        if self.gap_jitter < 0:
            raise ValueError("gap_jitter must be non-negative")
        if self.gap_jitter > 0 and self.rng is None:
            raise ValueError("gap_jitter requires an rng")

    def block(self, direction: Direction) -> None:
        """Stop admitting vehicles heading in ``direction``."""
        self.blocked_directions.add(direction)

    def unblock(self, direction: Direction) -> None:
        """Resume admitting vehicles heading in ``direction``."""
        self.blocked_directions.discard(direction)

    def is_blocked(self, direction: Direction) -> bool:
        """Whether entry in ``direction`` is currently refused."""
        return direction in self.blocked_directions

    def may_spawn(self, lane: Lane, nearest_progress: float) -> bool:
        """Whether a vehicle may enter ``lane`` now.

        ``nearest_progress`` is the progress (distance from the entrance) of
        the closest vehicle in the lane, or ``inf`` for an empty lane.
        """
        if not self.enabled or self.is_blocked(lane.direction):
            return False
        required = self.spawn_gap
        if self.gap_jitter > 0:
            required *= 1.0 + self.rng.uniform(0.0, self.gap_jitter)
        return nearest_progress > required
