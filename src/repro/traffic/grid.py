"""Manhattan-grid traffic: streets, intersections and turning routes.

The highway scenarios drive the paper's 4 km straight
:class:`~repro.traffic.road.RoadSegment`; urban scenarios need a street
*grid* — vehicles that turn at corners, enter at every grid edge, and give
the corner/building shadowing model
(:class:`~repro.radio.shadowing.ManhattanShadowing`) its geometry.

The module mirrors the mobility contract
:class:`~repro.traffic.simulation.TrafficSimulation` established, because
the experiment world consumes exactly that surface: ``on_spawn`` /
``on_exit`` / ``on_step`` callback lists, ``populate``, ``start``,
``vehicles(on_road_only=...)`` and ``count_on_road``.  Internally each
*directed street corridor* (one per travel direction per street) is
stepped like a highway lane — vectorised IDM over the corridor's vehicles
sorted by progress — and vehicles hop between corridors when their route
turns at an intersection.

Simplifications (documented, deliberate):

* no signalling or conflict resolution at intersections — crossing flows
  interpenetrate, which is harmless for a radio/protocol study;
* a turning vehicle snaps laterally onto the new corridor's lane
  centerline (the intersection box is ~one lane width wide);
* turn decisions are memoryless — at every intersection a vehicle turns
  left/right with ``turn_probability`` split evenly, drawn from the
  traffic RNG stream, so routes are reproducible per seed.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.geo.position import Position, PositionVector
from repro.sim.process import PeriodicProcess
from repro.traffic.idm import IdmParameters, idm_acceleration_array
from repro.traffic.road import Direction
from repro.traffic.simulation import MOBILITY_PRIORITY
from repro.traffic.spawner import EntranceSpawner

_grid_vehicle_counter = itertools.count(1)


def reset_grid_vehicle_ids() -> None:
    """Restart grid-vehicle-id allocation at 1 (fresh-process state)."""
    global _grid_vehicle_counter
    _grid_vehicle_counter = itertools.count(1)


def grid_vehicle_id_state():
    """The live grid-vehicle-id counter (captured by checkpoints)."""
    return _grid_vehicle_counter


def set_grid_vehicle_id_state(counter) -> None:
    """Replace the grid-vehicle-id counter (restored by checkpoints)."""
    global _grid_vehicle_counter
    _grid_vehicle_counter = counter

#: Axis labels for corridors: horizontal streets run along x, vertical
#: streets along y.
HORIZONTAL = "h"
VERTICAL = "v"


@dataclass(eq=False)
class Corridor:
    """One directed travel corridor of a street.

    ``axis`` is the travel axis (:data:`HORIZONTAL` = along x,
    :data:`VERTICAL` = along y), ``sign`` +1 for travel in the positive
    axis direction.  ``lane_coord`` is the fixed cross-axis coordinate of
    the lane centerline (right-hand traffic: offset from the street
    centerline toward the driver's right).  Progress ``s`` runs 0..length
    from the corridor's entrance, like lane progress on the highway.
    """

    street_index: int
    axis: str
    sign: int
    center: float  # street centerline (y for horizontal, x for vertical)
    lane_coord: float  # lane centerline (cross-axis coordinate)
    length: float
    cross_s: Tuple[float, ...]  # intersection positions in s-space, ascending
    cross_points: Tuple[Position, ...]  # matching intersection centers

    @property
    def heading(self) -> float:
        if self.axis == HORIZONTAL:
            return 0.0 if self.sign > 0 else math.pi
        return math.pi / 2 if self.sign > 0 else -math.pi / 2

    @property
    def direction(self) -> Direction:
        """Coarse two-valued direction (positive/negative travel).

        Exists so :class:`~repro.traffic.spawner.EntranceSpawner` (whose
        blocking API is keyed by :class:`Direction`) works unchanged on
        grid corridors.
        """
        return Direction.EAST if self.sign > 0 else Direction.WEST

    def point_at(self, s: float) -> Tuple[float, float]:
        """(x, y) of progress ``s`` along this corridor."""
        u = s if self.sign > 0 else self.length - s
        if self.axis == HORIZONTAL:
            return u, self.lane_coord
        return self.lane_coord, u

    def s_of_axis_coord(self, u: float) -> float:
        """Progress corresponding to absolute axis coordinate ``u``."""
        return u if self.sign > 0 else self.length - u


@dataclass(eq=False)
class GridVehicle:
    """A vehicle driving the grid; duck-types the highway ``Vehicle``.

    The networking layer only reads ``position`` / ``position_vector`` /
    ``speed`` / ``heading`` / ``vehicle_id`` / ``fleet_slot``, all of which
    behave identically to the highway vehicle.  ``x``/``y`` are maintained
    by the stepper so position reads never re-derive geometry.
    """

    corridor: Corridor
    s: float
    speed: float
    length: float = 4.5
    vehicle_id: int = field(default_factory=lambda: next(_grid_vehicle_counter))
    active: bool = True
    entered_at: float = 0.0
    speed_factor: float = 1.0
    fleet_slot: Optional[int] = None
    x: float = 0.0
    y: float = 0.0
    #: Index into ``corridor.cross_s`` of the next intersection ahead.
    next_cross: int = 0
    turns_taken: int = 0

    def __post_init__(self):
        self.x, self.y = self.corridor.point_at(self.s)
        self._seek_next_cross()

    def _seek_next_cross(self) -> None:
        cross = self.corridor.cross_s
        k = 0
        # Strictly ahead: an intersection at the current position (e.g. the
        # entrance corner a vehicle spawns on) is not a turn opportunity.
        while k < len(cross) and cross[k] <= self.s + 1e-9:
            k += 1
        self.next_cross = k

    @property
    def heading(self) -> float:
        return self.corridor.heading

    @property
    def direction(self) -> Direction:
        return self.corridor.direction

    @property
    def position(self) -> Position:
        return Position(self.x, self.y)

    @property
    def progress(self) -> float:
        return self.s

    def position_vector(self, now: float) -> PositionVector:
        """The PV this vehicle would advertise in a beacon right now."""
        return PositionVector(
            position=self.position,
            speed=self.speed,
            heading=self.heading,
            timestamp=now,
        )


class GridRoadNetwork:
    """Geometry of a regular Manhattan grid anchored at the origin.

    ``streets_x`` vertical streets at x = 0, block_size, ...,
    ``streets_y`` horizontal streets at y = 0, block_size, ...  Every
    street carries one corridor per direction (right-hand traffic, lane
    centerlines offset ``lane_width / 2`` from the street centerline).
    """

    def __init__(
        self,
        streets_x: int = 4,
        streets_y: int = 4,
        block_size: float = 250.0,
        lane_width: float = 4.0,
    ):
        if streets_x < 2 or streets_y < 2:
            raise ValueError("the grid needs at least two streets per axis")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if lane_width <= 0 or lane_width >= block_size:
            raise ValueError("lane_width must be in (0, block_size)")
        self.streets_x = streets_x
        self.streets_y = streets_y
        self.block_size = block_size
        self.lane_width = lane_width
        self.width = (streets_x - 1) * block_size  # extent along x
        self.height = (streets_y - 1) * block_size  # extent along y
        self.xs = tuple(i * block_size for i in range(streets_x))
        self.ys = tuple(j * block_size for j in range(streets_y))
        offset = lane_width / 2.0
        self.corridors: List[Corridor] = []
        # Right-hand traffic lane offsets: heading +x keeps the lane at
        # center - offset, heading +y at center + offset, and mirrored for
        # the opposite directions.
        for j, cy in enumerate(self.ys):
            cross = tuple(self.xs)
            points = tuple(Position(cx, cy) for cx in self.xs)
            for sign, lane_y in ((+1, cy - offset), (-1, cy + offset)):
                s_vals = [
                    (cx if sign > 0 else self.width - cx) for cx in cross
                ]
                order = np.argsort(s_vals)
                self.corridors.append(
                    Corridor(
                        street_index=j,
                        axis=HORIZONTAL,
                        sign=sign,
                        center=cy,
                        lane_coord=lane_y,
                        length=self.width,
                        cross_s=tuple(s_vals[i] for i in order),
                        cross_points=tuple(points[i] for i in order),
                    )
                )
        for i, cx in enumerate(self.xs):
            cross = tuple(self.ys)
            points = tuple(Position(cx, cy) for cy in self.ys)
            for sign, lane_x in ((+1, cx + offset), (-1, cx - offset)):
                s_vals = [
                    (cy if sign > 0 else self.height - cy) for cy in cross
                ]
                order = np.argsort(s_vals)
                self.corridors.append(
                    Corridor(
                        street_index=i,
                        axis=VERTICAL,
                        sign=sign,
                        center=cx,
                        lane_coord=lane_x,
                        length=self.height,
                        cross_s=tuple(s_vals[i] for i in order),
                        cross_points=tuple(points[i] for i in order),
                    )
                )
        self._by_key: Dict[Tuple[str, int, int], Corridor] = {
            (c.axis, c.street_index, c.sign): c for c in self.corridors
        }

    def corridor(self, axis: str, street_index: int, sign: int) -> Corridor:
        return self._by_key[(axis, street_index, sign)]

    def center(self) -> Position:
        """Geometric center of the grid."""
        return Position(self.width / 2.0, self.height / 2.0)

    def turn_target(
        self, corridor: Corridor, cross_index: int, turn: str
    ) -> Tuple[Corridor, float]:
        """Corridor and entry progress for a ``left``/``right`` turn.

        Returns the perpendicular corridor the turn lands on and the
        progress on it corresponding to the intersection center.
        """
        point = corridor.cross_points[cross_index]
        if corridor.axis == HORIZONTAL:
            # Heading +x: right turn heads -y, left turn +y (and mirrored).
            new_sign = -corridor.sign if turn == "right" else corridor.sign
            street = self.xs.index(point.x)
            target = self.corridor(VERTICAL, street, new_sign)
            return target, target.s_of_axis_coord(point.y)
        new_sign = corridor.sign if turn == "right" else -corridor.sign
        street = self.ys.index(point.y)
        target = self.corridor(HORIZONTAL, street, new_sign)
        return target, target.s_of_axis_coord(point.x)


class GridTrafficSimulation:
    """Mobility engine for :class:`GridRoadNetwork`.

    Same stepping model as the highway simulation — vectorised IDM per
    corridor, entrance spawning, runout retirement — plus intersection
    turning and batched fleet writeback (x, y, speed *and heading*, since
    grid vehicles change heading at corners).
    """

    def __init__(
        self,
        network: GridRoadNetwork,
        params: IdmParameters,
        *,
        dt: float = 0.1,
        spawner: Optional[EntranceSpawner] = None,
        rng=None,
        runout: float = 300.0,
        turn_probability: float = 0.25,
        speed_factor_spread: float = 0.03,
        fleet=None,
    ):
        if dt <= 0:
            raise ValueError("dt must be positive")
        if runout < 0:
            raise ValueError("runout must be non-negative")
        if not 0.0 <= turn_probability <= 1.0:
            raise ValueError("turn_probability must be in [0, 1]")
        if speed_factor_spread < 0 or speed_factor_spread >= 1:
            raise ValueError("speed_factor_spread must be in [0, 1)")
        self.network = network
        self.params = params
        self.dt = dt
        self.spawner = spawner
        self.runout = runout
        self.turn_probability = turn_probability
        self._rng = rng
        self._speed_factor_spread = speed_factor_spread
        self._fleet = fleet
        self._now = 0.0
        self._process: Optional[PeriodicProcess] = None
        self._vehicles: Dict[Corridor, List[GridVehicle]] = {
            c: [] for c in network.corridors
        }
        self.on_spawn: List[Callable[[GridVehicle], None]] = []
        self.on_exit: List[Callable[[GridVehicle], None]] = []
        self.on_step: List[Callable[[float], None]] = []
        self.turns_total = 0

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def _draw_speed_factor(self) -> float:
        if self._rng is None or self._speed_factor_spread == 0:
            return 1.0
        spread = self._speed_factor_spread
        return 1.0 + self._rng.uniform(-spread, spread)

    def populate(self, spacing: float, speed: float = 14.0) -> int:
        """Pre-fill every corridor with vehicles ``spacing`` metres apart.

        Mirrors the highway ``populate``: alternate corridors are
        phase-staggered by half a spacing and each slot jittered by up to a
        quarter spacing when an rng is attached, so no two vehicles are
        radio-symmetric at t=0.
        """
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        created: List[GridVehicle] = []
        for order, corridor in enumerate(self.network.corridors):
            n = int(corridor.length // spacing)
            stagger = (order % 2) * spacing / 2 if self._rng is not None else 0.0
            for k in range(n + 1):
                s = k * spacing + stagger
                if self._rng is not None:
                    s += self._rng.uniform(-0.25, 0.25) * spacing
                s = min(max(s, 0.0), corridor.length)
                vehicle = GridVehicle(
                    corridor=corridor,
                    s=s,
                    speed=speed,
                    length=self.params.vehicle_length,
                    entered_at=self._now,
                    speed_factor=self._draw_speed_factor(),
                )
                self._vehicles[corridor].append(vehicle)
                created.append(vehicle)
        for corridor_vehicles in self._vehicles.values():
            corridor_vehicles.sort(key=lambda v: v.s)
        for vehicle in created:
            for callback in self.on_spawn:
                callback(vehicle)
        return len(created)

    def _spawn(self, now: float) -> None:
        if self.spawner is None:
            return
        for corridor in self.network.corridors:
            corridor_vehicles = self._vehicles[corridor]
            nearest = corridor_vehicles[0].s if corridor_vehicles else math.inf
            if self.spawner.may_spawn(corridor, nearest):
                vehicle = GridVehicle(
                    corridor=corridor,
                    s=0.0,
                    speed=self.spawner.entry_speed,
                    length=self.params.vehicle_length,
                    entered_at=now,
                    speed_factor=self._draw_speed_factor(),
                )
                corridor_vehicles.insert(0, vehicle)
                self.spawner.spawned_count += 1
                for callback in self.on_spawn:
                    callback(vehicle)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, now: float) -> None:
        """Advance every vehicle by one ``dt`` tick."""
        self._now = now
        transfers: List[Tuple[GridVehicle, Corridor, float]] = []
        exits: List[GridVehicle] = []
        for corridor in self.network.corridors:
            self._step_corridor(corridor, transfers, exits)
        # Turns apply after all corridors stepped, so a transferred vehicle
        # is never stepped twice in one tick.
        for vehicle, target, s_new in transfers:
            self._vehicles[vehicle.corridor].remove(vehicle)
            vehicle.corridor = target
            vehicle.s = min(s_new, target.length + self.runout)
            vehicle.x, vehicle.y = target.point_at(vehicle.s)
            vehicle._seek_next_cross()
            vehicle.turns_taken += 1
            self.turns_total += 1
            bucket = self._vehicles[target]
            bucket.append(vehicle)
            bucket.sort(key=lambda v: v.s)
        for vehicle in exits:
            self._vehicles[vehicle.corridor].remove(vehicle)
            vehicle.active = False
            for callback in self.on_exit:
                callback(vehicle)
        self._spawn(now)
        if self._fleet is not None:
            self._write_back_fleet()
        for callback in self.on_step:
            callback(now)

    def _step_corridor(
        self,
        corridor: Corridor,
        transfers: List[Tuple[GridVehicle, Corridor, float]],
        exits: List[GridVehicle],
    ) -> None:
        corridor_vehicles = self._vehicles[corridor]
        n = len(corridor_vehicles)
        if n == 0:
            return
        s = np.array([v.s for v in corridor_vehicles])
        speeds = np.array([v.speed for v in corridor_vehicles])
        lengths = np.array([v.length for v in corridor_vehicles])
        gaps = np.full(n, np.inf)
        lead_speeds = speeds.copy()
        if n > 1:
            gaps[:-1] = s[1:] - s[:-1] - (lengths[1:] + lengths[:-1]) / 2
            lead_speeds[:-1] = speeds[1:]
        desired = self.params.desired_velocity * np.array(
            [v.speed_factor for v in corridor_vehicles]
        )
        accel = idm_acceleration_array(
            speeds, gaps, lead_speeds, self.params, desired_velocities=desired
        )
        new_speeds = np.maximum(0.0, speeds + accel * self.dt)
        new_s = s + new_speeds * self.dt
        # Anti-overlap guard, as on the highway: clamp followers behind
        # their leader (turn insertions can land vehicles close together).
        for i in range(n - 2, -1, -1):
            limit = new_s[i + 1] - (lengths[i + 1] + lengths[i]) / 2 - 0.1
            if new_s[i] > limit:
                new_s[i] = max(s[i], limit)
                new_speeds[i] = min(new_speeds[i], new_speeds[i + 1])
        end = corridor.length + self.runout
        cross = corridor.cross_s
        n_cross = len(cross)
        for i, vehicle in enumerate(corridor_vehicles):
            vehicle.s = float(new_s[i])
            vehicle.speed = float(new_speeds[i])
            vehicle.x, vehicle.y = corridor.point_at(vehicle.s)
            k = vehicle.next_cross
            if k < n_cross and cross[k] <= vehicle.s:
                turn = self._draw_turn()
                if turn is None:
                    vehicle.next_cross = k + 1
                else:
                    target, s_cross = self.network.turn_target(corridor, k, turn)
                    transfers.append(
                        (vehicle, target, s_cross + (vehicle.s - cross[k]))
                    )
                    continue
            elif vehicle.s > end:
                exits.append(vehicle)

    def _draw_turn(self) -> Optional[str]:
        """``"left"`` / ``"right"`` / ``None`` (straight) at an intersection."""
        p = self.turn_probability
        if p <= 0.0 or self._rng is None:
            return None
        r = self._rng.random()
        if r < p / 2:
            return "left"
        if r < p:
            return "right"
        return None

    def _write_back_fleet(self) -> None:
        fleet = self._fleet
        slots: List[int] = []
        xs: List[float] = []
        ys: List[float] = []
        sp: List[float] = []
        hd: List[float] = []
        for corridor_vehicles in self._vehicles.values():
            for vehicle in corridor_vehicles:
                slot = vehicle.fleet_slot
                if slot is None:
                    continue
                slots.append(slot)
                xs.append(vehicle.x)
                ys.append(vehicle.y)
                sp.append(vehicle.speed)
                hd.append(vehicle.heading)
        if not slots:
            return
        idx = np.array(slots, dtype=np.intp)
        fleet.x[idx] = xs
        fleet.y[idx] = ys
        fleet.speed[idx] = sp
        fleet.heading[idx] = hd

    # ------------------------------------------------------------------
    # queries (the world's consumption surface)
    # ------------------------------------------------------------------
    def vehicles(
        self, direction: Optional[Direction] = None, *, on_road_only: bool = False
    ):
        """All active vehicles, optionally restricted to the grid proper.

        ``on_road_only`` excludes vehicles in their exit runout (past the
        last intersection of their final corridor).
        """
        for corridor, corridor_vehicles in self._vehicles.items():
            if direction is not None and corridor.direction is not direction:
                continue
            for vehicle in corridor_vehicles:
                if on_road_only and vehicle.s > corridor.length:
                    continue
                yield vehicle

    def count_on_road(self, direction: Optional[Direction] = None) -> int:
        """Number of active vehicles still on the grid."""
        return sum(1 for _ in self.vehicles(direction, on_road_only=True))

    # ------------------------------------------------------------------
    # engine integration
    # ------------------------------------------------------------------
    def start(self, sim) -> PeriodicProcess:
        """Schedule the mobility loop on the event engine."""
        if self._process is not None:
            raise RuntimeError("grid traffic simulation already started")
        self._sim = sim
        self._process = PeriodicProcess(
            sim,
            self.dt,
            self._mobility_tick,
            start_delay=self.dt,
            priority=MOBILITY_PRIORITY,
        )
        return self._process

    def _mobility_tick(self) -> None:
        self.step(self._sim.now)
