"""Road-traffic microsimulation substrate.

Implements the paper's mobility layer: a 4 km multi-lane road segment,
Intelligent Driver Model car following (Table I parameters), an entrance
spawner (a vehicle enters at 30 m/s when the vehicle ahead is more than the
inter-vehicle space away from the entrance) and hazard events that block
lanes for the traffic-impact study (Fig 12).
"""

from repro.traffic.idm import IdmParameters, idm_acceleration, idm_acceleration_array
from repro.traffic.road import Direction, Lane, RoadSegment
from repro.traffic.vehicle import Vehicle
from repro.traffic.spawner import EntranceSpawner
from repro.traffic.hazard import HazardEvent
from repro.traffic.simulation import TrafficSimulation

__all__ = [
    "Direction",
    "EntranceSpawner",
    "HazardEvent",
    "IdmParameters",
    "Lane",
    "RoadSegment",
    "TrafficSimulation",
    "Vehicle",
    "idm_acceleration",
    "idm_acceleration_array",
]
