"""The traffic microsimulation loop.

Advances every vehicle with vectorised IDM on a fixed time step (100 ms by
default), handles hazards as virtual stationary leaders, spawns vehicles at
entrances and retires vehicles that leave the segment.  Networking layers
subscribe via ``on_spawn`` / ``on_exit`` / ``on_step`` callbacks.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.radio.spatial import SpatialGrid
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.traffic.hazard import HazardEvent
from repro.traffic.idm import IdmParameters, idm_acceleration_array
from repro.traffic.road import Direction, Lane, RoadSegment
from repro.traffic.spawner import EntranceSpawner
from repro.traffic.vehicle import Vehicle

#: Mobility events run before same-time network events.
MOBILITY_PRIORITY = -10

#: Default cell size of the vehicle proximity grid (metres).
NEIGHBOR_CELL_SIZE = 250.0


class TrafficSimulation:
    """Owns all vehicles and advances them each time step."""

    def __init__(
        self,
        road: RoadSegment,
        params: Optional[IdmParameters] = None,
        *,
        dt: float = 0.1,
        spawner: Optional[EntranceSpawner] = None,
        rng=None,
        speed_factor_spread: float = 0.03,
        runout: float = 0.0,
        neighbor_cell_size: float = NEIGHBOR_CELL_SIZE,
        fleet=None,
    ):
        if dt <= 0:
            raise ValueError("dt must be positive")
        if speed_factor_spread < 0 or speed_factor_spread >= 1:
            raise ValueError("speed_factor_spread must be in [0, 1)")
        if runout < 0:
            raise ValueError("runout must be non-negative")
        self.road = road
        self.params = params or IdmParameters()
        self.dt = dt
        self.spawner = spawner
        #: Source of driver heterogeneity (speed preferences, initial
        #: placement jitter).  None gives perfectly homogeneous traffic,
        #: which is only appropriate for unit tests — homogeneous lanes put
        #: vehicles radio-symmetrically and break contention-based protocols
        #: in ways real traffic does not.
        self._rng = rng
        self._speed_factor_spread = speed_factor_spread
        #: Vehicles keep driving this many metres past the segment before
        #: they are retired.  The world beyond a simulated road segment is
        #: not empty: without a runout, location-table entries of vehicles
        #: that just "fell off the edge" poison greedy forwarding near the
        #: road ends in a way that has no physical counterpart.
        self.runout = runout
        self.hazards: List[HazardEvent] = []
        #: vehicles per lane index, sorted by progress ascending
        #: (the last element is the furthest along, nearest the exit).
        self._lanes: Dict[int, List[Vehicle]] = {
            lane.index: [] for lane in road.lanes
        }
        self.on_spawn: List[Callable[[Vehicle], None]] = []
        self.on_exit: List[Callable[[Vehicle], None]] = []
        self.on_step: List[Callable[[float], None]] = []
        self.rear_end_contacts = 0
        self._process: Optional[PeriodicProcess] = None
        self._now = 0.0
        #: Spatial index over active vehicles for proximity queries
        #: (:meth:`vehicles_near`, :meth:`leader_of`).  Membership is
        #: maintained incrementally on spawn/retire; positions are refreshed
        #: lazily, only when a query arrives after a step moved vehicles.
        self._grid = SpatialGrid(neighbor_cell_size)
        self._grid_dirty = False
        #: Optional :class:`~repro.geonet.fleet.FleetState`: when set, each
        #: lane step also writes the new kinematics into the fleet's arrays
        #: with one fancy-indexed store per lane (the batched networking
        #: path reads positions from there instead of per-vehicle attrs).
        self._fleet = fleet
        #: lane index -> slot ndarray aligned with the lane's vehicle list;
        #: rebuilt lazily when the lane's membership changes.
        self._fleet_slots: Dict[int, Optional[np.ndarray]] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_vehicle(self, vehicle: Vehicle) -> None:
        """Insert a vehicle keeping the lane sorted by progress."""
        lane_vehicles = self._lanes[vehicle.lane.index]
        lane_vehicles.append(vehicle)
        lane_vehicles.sort(key=lambda v: v.progress)
        self._grid.insert(vehicle, vehicle.x, vehicle.lane.y)
        self._fleet_slots.pop(vehicle.lane.index, None)
        for callback in self.on_spawn:
            callback(vehicle)

    def _draw_speed_factor(self) -> float:
        if self._rng is None or self._speed_factor_spread == 0:
            return 1.0
        spread = self._speed_factor_spread
        return 1.0 + self._rng.uniform(-spread, spread)

    def populate(self, spacing: float, speed: float = 30.0) -> int:
        """Pre-fill every lane with vehicles ``spacing`` metres apart.

        Returns the number of vehicles created.  This realises the paper's
        "vehicles are 30 meters apart" default density from t=0.  With an
        rng attached, adjacent lanes are phase-staggered by half a spacing
        and every slot is jittered by up to a quarter spacing, as in real
        traffic (and as needed to avoid radio-symmetric vehicle pairs).
        """
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        created = 0
        for lane_order, lane in enumerate(self.road.lanes):
            n = int(self.road.length // spacing)
            stagger = (lane_order % 2) * spacing / 2 if self._rng is not None else 0.0
            for k in range(n + 1):
                progress = k * spacing + stagger
                if self._rng is not None:
                    progress += self._rng.uniform(-0.25, 0.25) * spacing
                progress = min(max(progress, 0.0), self.road.length)
                x = (
                    progress
                    if lane.direction is Direction.EAST
                    else self.road.length - progress
                )
                vehicle = Vehicle(
                    lane=lane,
                    x=x,
                    speed=speed,
                    length=self.params.vehicle_length,
                    entered_at=self._now,
                    speed_factor=self._draw_speed_factor(),
                )
                self._lanes[lane.index].append(vehicle)
                self._grid.insert(vehicle, vehicle.x, vehicle.lane.y)
                created += 1
        for lane_vehicles in self._lanes.values():
            lane_vehicles.sort(key=lambda v: v.progress)
        self._fleet_slots.clear()
        for lane_vehicles in self._lanes.values():
            for vehicle in lane_vehicles:
                for callback in self.on_spawn:
                    callback(vehicle)
        return created

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def vehicles(
        self, direction: Optional[Direction] = None, *, on_road_only: bool = False
    ) -> Iterable[Vehicle]:
        """Iterate active vehicles, optionally filtered by direction.

        ``on_road_only`` excludes vehicles in the runout zone beyond the
        segment (they still drive and keep their radios on).
        """
        for lane in self.road.lanes:
            if direction is not None and lane.direction is not direction:
                continue
            for vehicle in self._lanes[lane.index]:
                if on_road_only and vehicle.progress > self.road.length:
                    continue
                yield vehicle

    def count_on_road(self, direction: Optional[Direction] = None) -> int:
        """Number of vehicles on the segment proper (runout excluded)."""
        return sum(1 for _ in self.vehicles(direction, on_road_only=True))

    def lane_vehicles(self, lane: Lane) -> List[Vehicle]:
        """The (sorted) vehicles currently in ``lane``."""
        return list(self._lanes[lane.index])

    # ------------------------------------------------------------------
    # proximity queries (spatial grid)
    # ------------------------------------------------------------------
    def _refresh_grid(self) -> None:
        if not self._grid_dirty:
            return
        move = self._grid.move
        for lane_vehicles in self._lanes.values():
            for vehicle in lane_vehicles:
                move(vehicle, vehicle.x, vehicle.lane.y)
        self._grid_dirty = False

    def vehicles_near(
        self,
        x: float,
        y: float,
        radius: float,
        *,
        direction: Optional[Direction] = None,
    ) -> List[Vehicle]:
        """Active vehicles within ``radius`` metres of ``(x, y)``.

        Served from the vehicle spatial grid in O(k) for the ~k nearby
        vehicles; results are in deterministic ``(lane, progress,
        vehicle_id)`` order.
        """
        self._refresh_grid()
        matches = [
            vehicle
            for vehicle, _d in self._grid.query_disc(x, y, radius)
            if direction is None or vehicle.direction is direction
        ]
        matches.sort(key=lambda v: (v.lane.index, v.progress, v.vehicle_id))
        return matches

    def leader_of(
        self, vehicle: Vehicle, *, within: Optional[float] = None
    ) -> Optional[Vehicle]:
        """The nearest vehicle ahead of ``vehicle`` in its lane, or None.

        ``within`` bounds the search distance (default: the grid cell size,
        which keeps the lookup inside a 3×3 cell neighborhood).  This is the
        proximity-grid counterpart of the IDM stepper's sorted-lane leader
        and serves ad-hoc queries — hazard placement, platoon analysis —
        without an O(N) scan.
        """
        limit = self._grid.cell_size if within is None else within
        self._refresh_grid()
        best: Optional[Vehicle] = None
        best_gap = math.inf
        progress = vehicle.progress
        for other, _d in self._grid.query_disc(
            vehicle.x, vehicle.lane.y, limit
        ):
            if other is vehicle or other.lane.index != vehicle.lane.index:
                continue
            gap = other.progress - progress
            if gap <= 0:
                continue
            if gap < best_gap or (
                gap == best_gap
                and best is not None
                and other.vehicle_id < best.vehicle_id
            ):
                best = other
                best_gap = gap
        return best

    # ------------------------------------------------------------------
    # hazards
    # ------------------------------------------------------------------
    def add_hazard(self, hazard: HazardEvent) -> None:
        """Register a hazard event (it activates at its start time)."""
        self.hazards.append(hazard)

    def _hazard_progress(self, lane: Lane, now: float) -> float:
        """Progress of the nearest active hazard in ``lane`` (inf if none)."""
        best = math.inf
        for hazard in self.hazards:
            if hazard.blocks(lane.direction, now):
                best = min(best, lane.progress(hazard.x))
        return best

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, now: float) -> None:
        """Advance all vehicles by one ``dt`` and run spawning/exits."""
        self._now = now
        for lane in self.road.lanes:
            self._step_lane(lane, now)
        self._grid_dirty = True
        self._retire_exited()
        self._spawn(now)
        for callback in self.on_step:
            callback(now)

    def _step_lane(self, lane: Lane, now: float) -> None:
        lane_vehicles = self._lanes[lane.index]
        if not lane_vehicles:
            return
        n = len(lane_vehicles)
        progress = np.array([v.progress for v in lane_vehicles])
        speeds = np.array([v.speed for v in lane_vehicles])
        lengths = np.array([v.length for v in lane_vehicles])
        gaps = np.full(n, np.inf)
        lead_speeds = np.zeros(n)
        if n > 1:
            gaps[:-1] = (
                progress[1:] - progress[:-1] - (lengths[1:] + lengths[:-1]) / 2
            )
            lead_speeds[:-1] = speeds[1:]
        hazard_progress = self._hazard_progress(lane, now)
        if math.isfinite(hazard_progress):
            behind = progress < hazard_progress
            if behind.any():
                # The closest vehicle behind the hazard brakes for it; the
                # rest follow their real leaders (who queue up in turn).
                leader_idx = int(np.flatnonzero(behind)[-1])
                hazard_gap = (
                    hazard_progress
                    - progress[leader_idx]
                    - lengths[leader_idx] / 2
                )
                if hazard_gap < gaps[leader_idx]:
                    gaps[leader_idx] = hazard_gap
                    lead_speeds[leader_idx] = 0.0
        desired = self.params.desired_velocity * np.array(
            [v.speed_factor for v in lane_vehicles]
        )
        accel = idm_acceleration_array(
            speeds, gaps, lead_speeds, self.params, desired_velocities=desired
        )
        for i, vehicle in enumerate(lane_vehicles):
            if vehicle.forced_acceleration is not None:
                accel[i] = vehicle.forced_acceleration
        new_speeds = np.maximum(0.0, speeds + accel * self.dt)
        new_progress = progress + new_speeds * self.dt
        # Hard anti-overlap guard: IDM with sane parameters never rear-ends,
        # but forced profiles or extreme spawns could; count and clamp.
        for i in range(n - 2, -1, -1):
            limit = new_progress[i + 1] - (lengths[i + 1] + lengths[i]) / 2 - 0.1
            if new_progress[i] > limit:
                self.rear_end_contacts += 1
                new_progress[i] = limit
                new_speeds[i] = min(new_speeds[i], new_speeds[i + 1])
        if lane.direction is Direction.EAST:
            new_x = new_progress
        else:
            new_x = self.road.length - new_progress
        for i, vehicle in enumerate(lane_vehicles):
            vehicle.speed = float(new_speeds[i])
            vehicle.x = float(new_x[i])
        if self._fleet is not None:
            slots = self._fleet_lane_slots(lane.index, lane_vehicles)
            if slots is not None:
                self._fleet.x[slots] = new_x
                self._fleet.speed[slots] = new_speeds

    def _fleet_lane_slots(
        self, lane_index: int, lane_vehicles: List[Vehicle]
    ) -> Optional[np.ndarray]:
        """The lane's fleet slots, aligned with its sorted vehicle list.

        Rebuilt only when the lane's membership changes (spawn/retire/
        explicit add invalidate the cache); within a step the lane order is
        stable, since IDM followers never pass their leader.  Returns None
        while any vehicle has no slot yet — its spawn callback assigns one
        before the next step, so that state is transient.
        """
        try:
            return self._fleet_slots[lane_index]
        except KeyError:
            pass
        try:
            slots = np.fromiter(
                (v.fleet_slot for v in lane_vehicles),
                dtype=np.intp,
                count=len(lane_vehicles),
            )
        except TypeError:
            slots = None
        self._fleet_slots[lane_index] = slots
        return slots

    def _retire_exited(self) -> None:
        retire_at = self.road.length + self.runout
        for lane in self.road.lanes:
            lane_vehicles = self._lanes[lane.index]
            while lane_vehicles and lane_vehicles[-1].progress > retire_at:
                vehicle = lane_vehicles.pop()
                vehicle.active = False
                self._grid.remove(vehicle)
                self._fleet_slots.pop(lane.index, None)
                for callback in self.on_exit:
                    callback(vehicle)

    def _spawn(self, now: float) -> None:
        if self.spawner is None:
            return
        for lane in self.road.lanes:
            lane_vehicles = self._lanes[lane.index]
            nearest = lane_vehicles[0].progress if lane_vehicles else math.inf
            if self.spawner.may_spawn(lane, nearest):
                vehicle = Vehicle(
                    lane=lane,
                    x=lane.entrance_x(),
                    speed=self.spawner.entry_speed,
                    length=self.params.vehicle_length,
                    entered_at=now,
                    speed_factor=self._draw_speed_factor(),
                )
                lane_vehicles.insert(0, vehicle)
                self._grid.insert(vehicle, vehicle.x, vehicle.lane.y)
                self._fleet_slots.pop(lane.index, None)
                self.spawner.spawned_count += 1
                for callback in self.on_spawn:
                    callback(vehicle)

    # ------------------------------------------------------------------
    # engine integration
    # ------------------------------------------------------------------
    def start(self, sim: Simulator) -> PeriodicProcess:
        """Schedule the mobility loop on the event engine."""
        if self._process is not None:
            raise RuntimeError("traffic simulation already started")
        self._sim = sim
        self._process = PeriodicProcess(
            sim,
            self.dt,
            self._mobility_tick,
            start_delay=self.dt,
            priority=MOBILITY_PRIORITY,
        )
        return self._process

    def _mobility_tick(self) -> None:
        self.step(self._sim.now)
