"""Hazard events for the traffic-impact study (Fig 11a / Fig 12).

A hazard blocks one direction's lanes at a given position from a given time.
Vehicles approaching it queue behind a virtual stationary leader (IDM with a
zero-speed obstacle); the GeoNetworking layer is responsible for warning
upstream traffic so the entrance stops admitting vehicles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traffic.road import Direction


@dataclass(frozen=True)
class HazardEvent:
    """Both lanes of ``direction`` blocked at ``x`` from ``start_time`` on."""

    x: float
    direction: Direction
    start_time: float

    def active(self, now: float) -> bool:
        """Whether the hazard is currently blocking the road."""
        return now >= self.start_time

    def blocks(self, lane_direction: Direction, now: float) -> bool:
        """Whether the hazard blocks a lane heading in ``lane_direction``."""
        return self.active(now) and lane_direction is self.direction

    def ahead_of(self, vehicle_x: float) -> bool:
        """Whether the hazard is ahead of a vehicle at ``vehicle_x``.

        Vehicles already past the hazard keep driving and exit normally.
        """
        if self.direction is Direction.EAST:
            return vehicle_x < self.x
        return vehicle_x > self.x
