"""Vehicle state.

A :class:`Vehicle` is pure kinematic state — position along the road, speed,
lane — advanced by :class:`~repro.traffic.simulation.TrafficSimulation`.
The networking layer reads positions through the ``position`` property, so a
GeoNode's view is always consistent with the mobility state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.geo.position import Position, PositionVector
from repro.traffic.road import Direction, Lane

_vehicle_counter = itertools.count(1)


def reset_vehicle_ids() -> None:
    """Restart vehicle-id allocation at 1 (fresh-process state).

    Ids are labels only — they never influence simulation behaviour — but
    resetting them lets runs executed back to back in one process produce
    records identical to runs executed in fresh processes."""
    global _vehicle_counter
    _vehicle_counter = itertools.count(1)


def vehicle_id_state():
    """The live vehicle-id counter (captured by checkpoints)."""
    return _vehicle_counter


def set_vehicle_id_state(counter) -> None:
    """Replace the vehicle-id counter (restored by checkpoints)."""
    global _vehicle_counter
    _vehicle_counter = counter


@dataclass(eq=False)
class Vehicle:
    """A vehicle on the road.

    Vehicles compare and hash by identity (``eq=False``): each instance is
    one physical vehicle, and identity hashing lets spatial indexes and
    sets hold vehicles directly.
    """

    lane: Lane
    x: float
    speed: float
    length: float = 4.5
    vehicle_id: int = field(default_factory=lambda: next(_vehicle_counter))
    active: bool = True
    entered_at: float = 0.0
    #: Per-driver preference multiplier on the IDM desired velocity; real
    #: traffic is never perfectly homogeneous, and homogeneity creates
    #: degenerate radio symmetry (identical CBF timers in adjacent lanes).
    speed_factor: float = 1.0
    #: When set, the vehicle ignores IDM and applies this fixed acceleration
    #: (used by the road-safety curve scenario's prescribed speed profiles).
    forced_acceleration: Optional[float] = None
    #: Slot in the struct-of-arrays :class:`~repro.geonet.fleet.FleetState`
    #: when the batched networking path is on; None on the per-object path.
    fleet_slot: Optional[int] = None

    def __post_init__(self):
        if self.speed < 0:
            raise ValueError("speed must be non-negative")
        if self.length <= 0:
            raise ValueError("length must be positive")

    @property
    def direction(self) -> Direction:
        """Direction of travel (from the lane)."""
        return self.lane.direction

    @property
    def position(self) -> Position:
        """Current position in the road plane."""
        return Position(self.x, self.lane.y)

    @property
    def heading(self) -> float:
        """Heading in radians."""
        return self.lane.direction.heading

    @property
    def progress(self) -> float:
        """Distance travelled from the lane entrance."""
        return self.lane.progress(self.x)

    def position_vector(self, now: float) -> PositionVector:
        """The PV this vehicle would advertise in a beacon right now."""
        return PositionVector(
            position=self.position,
            speed=self.speed,
            heading=self.heading,
            timestamp=now,
        )

    def front_x(self) -> float:
        """x-coordinate of the front bumper."""
        return self.x + (self.length / 2) * self.direction.value

    def rear_x(self) -> float:
        """x-coordinate of the rear bumper."""
        return self.x - (self.length / 2) * self.direction.value

    def gap_to(self, leader: "Vehicle") -> float:
        """Net bumper-to-bumper gap to a leader in the same lane."""
        return (
            self.direction.value * (leader.x - self.x)
            - (self.length + leader.length) / 2
        )
