"""Road geometry: lanes, directions and the road segment.

The paper's default scenario is a 4 000 m segment with two 5 m lanes per
direction; vehicles travel along +x (eastbound) or -x (westbound).  Lane
centre-lines are stacked along +y, eastbound lanes first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class Direction(enum.IntEnum):
    """Direction of travel along the road axis."""

    EAST = 1
    WEST = -1

    @property
    def heading(self) -> float:
        """Heading in radians for a PV (+x is 0, -x is pi)."""
        import math

        return 0.0 if self is Direction.EAST else math.pi


@dataclass(frozen=True)
class Lane:
    """A single lane: an index, a centre-line y, a direction and the length
    of the road it belongs to (needed to measure westbound progress)."""

    index: int
    y: float
    direction: Direction
    road_length: float

    def entrance_x(self) -> float:
        """Where vehicles enter: x=0 eastbound, x=length westbound."""
        return 0.0 if self.direction is Direction.EAST else self.road_length

    def progress(self, x: float) -> float:
        """Distance travelled from the entrance for a vehicle at ``x``."""
        return x if self.direction is Direction.EAST else self.road_length - x


@dataclass(frozen=True)
class RoadSegment:
    """A straight multi-lane road segment starting at x=0."""

    length: float = 4000.0
    lanes_per_direction: int = 2
    lane_width: float = 5.0
    directions: int = 1
    lanes: List[Lane] = field(default_factory=list, compare=False)

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError("road length must be positive")
        if self.lanes_per_direction < 1:
            raise ValueError("need at least one lane per direction")
        if self.directions not in (1, 2):
            raise ValueError("directions must be 1 or 2")
        lanes: List[Lane] = []
        index = 0
        for lane_i in range(self.lanes_per_direction):
            y = (lane_i + 0.5) * self.lane_width
            lanes.append(
                Lane(
                    index=index,
                    y=y,
                    direction=Direction.EAST,
                    road_length=self.length,
                )
            )
            index += 1
        if self.directions == 2:
            for lane_i in range(self.lanes_per_direction):
                y = (self.lanes_per_direction + lane_i + 0.5) * self.lane_width
                lanes.append(
                    Lane(
                        index=index,
                        y=y,
                        direction=Direction.WEST,
                        road_length=self.length,
                    )
                )
                index += 1
        object.__setattr__(self, "lanes", lanes)

    @property
    def total_width(self) -> float:
        """Total paved width across all lanes."""
        return self.lanes_per_direction * self.directions * self.lane_width

    @property
    def eastbound_lanes(self) -> List[Lane]:
        return [lane for lane in self.lanes if lane.direction is Direction.EAST]

    @property
    def westbound_lanes(self) -> List[Lane]:
        return [lane for lane in self.lanes if lane.direction is Direction.WEST]

    def contains_x(self, x: float) -> bool:
        """Whether ``x`` is on the segment."""
        return 0.0 <= x <= self.length
