"""Small-sample statistics for multi-run experiment aggregation.

The paper runs each setting 100 times; local regenerations often use 3-10
runs, where normal-approximation intervals are badly miscalibrated — so the
confidence intervals here use Student-t critical values.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

#: Two-sided 95 % Student-t critical values by degrees of freedom.
_T95 = {
    1: 12.706,
    2: 4.303,
    3: 3.182,
    4: 2.776,
    5: 2.571,
    6: 2.447,
    7: 2.365,
    8: 2.306,
    9: 2.262,
    10: 2.228,
    15: 2.131,
    20: 2.086,
    30: 2.042,
    60: 2.000,
    120: 1.980,
}


def _t_critical(df: int) -> float:
    if df <= 0:
        raise ValueError("need at least 2 samples for an interval")
    if df in _T95:
        return _T95[df]
    thresholds = sorted(_T95)
    for bound in thresholds:
        if df < bound:
            return _T95[bound]
    return 1.96  # asymptotic


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation; 0.0 for a single sample."""
    n = len(values)
    if n == 0:
        raise ValueError("std of empty sequence")
    if n == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def confidence_interval(
    values: Sequence[float], *, level: float = 0.95
) -> Tuple[float, float, float]:
    """(mean, low, high) — a Student-t interval around the mean.

    Only the 95 % level is supported (the table is small by design).
    A single sample yields a degenerate interval at the point estimate.
    """
    if level != 0.95:
        raise ValueError("only the 95% level is tabulated")
    m = mean(values)
    n = len(values)
    if n == 1:
        return (m, m, m)
    half_width = _t_critical(n - 1) * sample_std(values) / math.sqrt(n)
    return (m, m - half_width, m + half_width)


def paired_difference_interval(
    baseline: Sequence[float], treatment: Sequence[float]
) -> Tuple[float, float, float]:
    """95 % interval for mean(baseline - treatment) over paired runs.

    This is the right test for seed-paired A/B results: the difference per
    seed removes the between-seed traffic variance.
    """
    if len(baseline) != len(treatment):
        raise ValueError("paired samples must have equal length")
    differences = [b - t for b, t in zip(baseline, treatment)]
    return confidence_interval(differences)


def significantly_positive(
    baseline: Sequence[float], treatment: Sequence[float]
) -> Optional[bool]:
    """Whether baseline > treatment at 95 % confidence (None if single run)."""
    if len(baseline) < 2:
        return None
    _mean, low, _high = paired_difference_interval(baseline, treatment)
    return low > 0.0
