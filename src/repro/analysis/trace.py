"""Non-invasive protocol tracing.

A :class:`ChannelTracer` wraps a channel's ``transmit`` and records one
structured :class:`TraceRecord` per transmission — who sent what kind of
frame from where, to whom.  Useful for debugging forwarding behaviour and
for building custom analyses (the attack diagnostics in this repository's
development were exactly these traces).

The tracer never changes delivery semantics; it can be detached again.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.radio.channel import BroadcastChannel
from repro.radio.frames import FrameKind


@dataclass(frozen=True)
class TraceRecord:
    """One transmission."""

    time: float
    kind: FrameKind
    sender_addr: int
    dest_addr: Optional[int]
    payload_type: str
    x: float
    y: float
    tx_range: float

    def line(self) -> str:
        dest = "*" if self.dest_addr is None else str(self.dest_addr)
        return (
            f"{self.time:10.4f}s  {self.kind.value:<7} "
            f"{self.sender_addr:>6} -> {dest:<6} "
            f"@({self.x:7.1f},{self.y:5.1f})  r={self.tx_range:6.1f}  "
            f"{self.payload_type}"
        )


class ChannelTracer:
    """Records every transmission on a channel until detached."""

    def __init__(self, channel: BroadcastChannel, *, max_records: int = 200_000):
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.channel = channel
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._original_transmit = channel.transmit
        channel.transmit = self._traced_transmit
        self._attached = True

    # ------------------------------------------------------------------
    def _traced_transmit(self, sender, kind, payload, *, dest_addr=None, tx_range=None):
        frame = self._original_transmit(
            sender, kind, payload, dest_addr=dest_addr, tx_range=tx_range
        )
        if len(self.records) < self.max_records:
            self.records.append(
                TraceRecord(
                    time=frame.tx_time,
                    kind=kind,
                    sender_addr=frame.sender_addr,
                    dest_addr=dest_addr,
                    payload_type=type(payload).__name__,
                    x=frame.tx_position.x,
                    y=frame.tx_position.y,
                    tx_range=frame.tx_range,
                )
            )
        else:
            self.dropped += 1
        return frame

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def filter(
        self,
        *,
        kind: Optional[FrameKind] = None,
        sender_addr: Optional[int] = None,
        since: float = 0.0,
        payload_type: Optional[str] = None,
    ) -> Iterator[TraceRecord]:
        """Iterate matching records."""
        for record in self.records:
            if kind is not None and record.kind is not kind:
                continue
            if sender_addr is not None and record.sender_addr != sender_addr:
                continue
            if record.time < since:
                continue
            if payload_type is not None and record.payload_type != payload_type:
                continue
            yield record

    def counts(self) -> Counter:
        """Transmissions per frame kind."""
        return Counter(record.kind for record in self.records)

    def to_text(self, *, limit: int = 50, **filter_kwargs) -> str:
        """Render (filtered) records as aligned text lines."""
        lines = []
        for record in self.filter(**filter_kwargs):
            lines.append(record.line())
            if len(lines) >= limit:
                lines.append(f"... ({len(self.records)} records total)")
                break
        return "\n".join(lines) if lines else "(no matching records)"

    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Restore the channel's original transmit.  Idempotent."""
        if self._attached:
            self.channel.transmit = self._original_transmit
            self._attached = False
