"""Non-invasive protocol tracing.

A :class:`ChannelTracer` wraps a channel's ``transmit`` and records one
structured :class:`TraceRecord` per transmission — who sent what kind of
frame from where, to whom.  Useful for debugging forwarding behaviour and
for building custom analyses (the attack diagnostics in this repository's
development were exactly these traces).

The tracer never changes delivery semantics; it can be detached again.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.radio.channel import BroadcastChannel
from repro.radio.frames import FrameKind


@dataclass(frozen=True)
class TraceRecord:
    """One transmission."""

    time: float
    kind: FrameKind
    sender_addr: int
    dest_addr: Optional[int]
    payload_type: str
    x: float
    y: float
    tx_range: float
    #: The payload's application packet id, when it has one (GBC/GUC/LS
    #: packets); lets traces join against the packet-lifecycle ledger.
    packet_id: Optional[Tuple] = None

    def line(self) -> str:
        dest = "*" if self.dest_addr is None else str(self.dest_addr)
        pid = (
            ""
            if self.packet_id is None
            else "  id=" + "/".join(str(p) for p in self.packet_id)
        )
        return (
            f"{self.time:10.4f}s  {self.kind.value:<7} "
            f"{self.sender_addr:>6} -> {dest:<6} "
            f"@({self.x:7.1f},{self.y:5.1f})  r={self.tx_range:6.1f}  "
            f"{self.payload_type}{pid}"
        )


class ChannelTracer:
    """Records every transmission on a channel until detached."""

    def __init__(self, channel: BroadcastChannel, *, max_records: int = 200_000):
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.channel = channel
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._original_transmit = channel.transmit
        channel.transmit = self._traced_transmit
        self._attached = True

    # ------------------------------------------------------------------
    def _traced_transmit(self, sender, kind, payload, *, dest_addr=None, tx_range=None):
        frame = self._original_transmit(
            sender, kind, payload, dest_addr=dest_addr, tx_range=tx_range
        )
        if len(self.records) < self.max_records:
            self.records.append(
                TraceRecord(
                    time=frame.tx_time,
                    kind=kind,
                    sender_addr=frame.sender_addr,
                    dest_addr=dest_addr,
                    payload_type=type(payload).__name__,
                    x=frame.tx_position.x,
                    y=frame.tx_position.y,
                    tx_range=frame.tx_range,
                    packet_id=getattr(payload, "packet_id", None),
                )
            )
        else:
            self.dropped += 1
        return frame

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def filter(
        self,
        *,
        kind: Optional[FrameKind] = None,
        sender_addr: Optional[int] = None,
        since: float = 0.0,
        payload_type: Optional[str] = None,
        packet_id: Optional[Tuple] = None,
    ) -> Iterator[TraceRecord]:
        """Iterate matching records."""
        for record in self.records:
            if kind is not None and record.kind is not kind:
                continue
            if sender_addr is not None and record.sender_addr != sender_addr:
                continue
            if record.time < since:
                continue
            if payload_type is not None and record.payload_type != payload_type:
                continue
            if packet_id is not None and record.packet_id != packet_id:
                continue
            yield record

    def counts(self) -> Counter:
        """Transmissions per frame kind."""
        return Counter(record.kind for record in self.records)

    def to_text(self, *, limit: int = 50, **filter_kwargs) -> str:
        """Render (filtered) records as aligned text lines."""
        lines = []
        for record in self.filter(**filter_kwargs):
            lines.append(record.line())
            if len(lines) >= limit:
                lines.append(f"... ({len(self.records)} records total)")
                break
        return "\n".join(lines) if lines else "(no matching records)"

    def journey(self, ledger, kind: str, packet_id: Tuple) -> str:
        """One packet's life, merged chronologically from two vantage
        points: the ledger's per-node journey events (originations,
        forwarding decisions, drops) and this tracer's on-air
        transmissions.  ``ledger`` is a
        :class:`~repro.observability.PacketLedger` built with
        ``journeys=True``; ``kind`` is its namespace (``"gbc"``/``"guc"``).
        """
        entries = [
            (event.time, 1, f"[node ] {event.line()}")
            for event in ledger.journey(kind, packet_id)
        ]
        entries.extend(
            (record.time, 0, f"[radio] {record.line()}")
            for record in self.filter(packet_id=packet_id)
        )
        if not entries:
            return "(no journey recorded for this packet)"
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return "\n".join(text for _, _, text in entries)

    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Restore the channel's original transmit.  Idempotent."""
        if self._attached:
            self.channel.transmit = self._original_transmit
            self._attached = False
