"""Statistics and terminal-visualisation helpers for experiment results.

Used by the reporting layer and available to downstream users analysing
their own runs: means with confidence intervals over small run counts
(Student-t), paired-difference intervals for A/B comparisons, and text
sparklines for time series.
"""

from repro.analysis.stats import (
    confidence_interval,
    mean,
    paired_difference_interval,
    sample_std,
)
from repro.analysis.textplot import series_table, sparkline
from repro.analysis.trace import ChannelTracer, TraceRecord

__all__ = [
    "ChannelTracer",
    "TraceRecord",
    "confidence_interval",
    "mean",
    "paired_difference_interval",
    "sample_std",
    "series_table",
    "sparkline",
]
