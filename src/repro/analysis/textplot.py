"""Terminal rendering of experiment series.

The evaluation figures are reception-rate time series; these helpers render
them legibly in CI logs and example output without a plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[Optional[float]],
    *,
    lo: float = 0.0,
    hi: float = 1.0,
    gap: str = "·",
) -> str:
    """One character per value, scaled into [lo, hi]; None renders as gap."""
    if hi <= lo:
        raise ValueError("need hi > lo")
    chars = []
    span = hi - lo
    for value in values:
        if value is None:
            chars.append(gap)
            continue
        clamped = min(max(value, lo), hi)
        idx = round((clamped - lo) / span * (len(_BLOCKS) - 1))
        chars.append(_BLOCKS[idx])
    return "".join(chars)


def series_table(
    rows: Sequence[tuple],
    *,
    bin_width: float,
    lo: float = 0.0,
    hi: float = 1.0,
) -> str:
    """Render labelled series as aligned sparklines with a time axis.

    ``rows`` is a sequence of (label, values) pairs.
    """
    if not rows:
        return "(no series)"
    label_width = max(len(label) for label, _values in rows)
    n = max(len(values) for _label, values in rows)
    lines = []
    for label, values in rows:
        lines.append(f"{label:<{label_width}} |{sparkline(values, lo=lo, hi=hi)}|")
    axis = f"{'':<{label_width}}  0s{'':{max(0, n - 8)}}{n * bin_width:.0f}s"
    lines.append(axis)
    return "\n".join(lines)
