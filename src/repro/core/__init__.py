"""The paper's core contribution: attacks, mitigations, vulnerability model.

* :mod:`repro.core.attacks` — the two proof-of-concept outsider attacks
  (§III): the beacon-replay *inter-area interception attack* against GF and
  the packet-replay *intra-area blockage attack* against CBF.
* :mod:`repro.core.mitigations` — the standard-compatible defences (§V):
  the GF forwarding-time plausibility check and the CBF RHL-drop check.
* :mod:`repro.core.vulnerability` — the geometry of *vulnerable packets*
  (§IV-A, Fig 6): which packets an attacker at a given position with a given
  range can intercept.
"""

from repro.core.attacks import (
    AttackerStats,
    InsiderBlackhole,
    InterAreaInterceptor,
    IntraAreaBlocker,
    OutsiderBlackhole,
    RoadsideAttacker,
)
from repro.core.detection import (
    Alert,
    DetectorStats,
    MisbehaviorDetector,
    deploy_fleet_detectors,
)
from repro.core.mitigations import (
    duplicate_rhl_plausible,
    enable_plausibility_check,
    enable_rhl_check,
    position_plausible,
)
from repro.core.vulnerability import VulnerabilityModel

__all__ = [
    "Alert",
    "AttackerStats",
    "DetectorStats",
    "InsiderBlackhole",
    "InterAreaInterceptor",
    "IntraAreaBlocker",
    "MisbehaviorDetector",
    "OutsiderBlackhole",
    "RoadsideAttacker",
    "VulnerabilityModel",
    "deploy_fleet_detectors",
    "duplicate_rhl_plausible",
    "enable_plausibility_check",
    "enable_rhl_check",
    "position_plausible",
]
