"""The inter-area interception attack (paper §III-B).

The attacker eavesdrops on unencrypted beacons and immediately re-broadcasts
each one at its own (larger) attack range.  Receivers authenticate the
replayed beacon successfully — it is a legitimate vehicle's validly-signed
beacon, merely relayed — and, lacking any distance plausibility check,
insert the advertiser into their location table as a *neighbor* even though
it is far out of their radio coverage.  When such a victim later runs GF, it
tends to pick the poisoned entry (it is closest to the destination), unicasts
the packet to an unreachable node, and — with no acknowledgement in the
protocol — the packet is silently intercepted.

The evaluation follows the paper: "The attacker rebroadcasts all beacons
that it hears to the vehicles within its communication coverage."
"""

from __future__ import annotations

from repro.core.attacks.base import RoadsideAttacker
from repro.radio.frames import Frame, FrameKind
from repro.security.signing import SignedMessage


class InterAreaInterceptor(RoadsideAttacker):
    """Replays every overheard beacon at the attack range."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.beacons_replayed = 0

    def react(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.BEACON:
            return
        payload = frame.payload
        if not isinstance(payload, SignedMessage):
            return
        if frame.sender_addr == self.iface.address:
            return  # never re-replay our own transmissions
        self.beacons_replayed += 1
        self.replay_frame(frame)
