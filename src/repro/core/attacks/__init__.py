"""Proof-of-concept outsider attacks against GeoNetworking (paper §III),
plus the insider blackhole/grayhole baseline the paper contrasts with
(§VI) and the coordinated / mobile / adaptive threat-model extensions."""

from repro.core.attacks.adaptive import AdaptiveInterceptor
from repro.core.attacks.base import AttackerStats, RoadsideAttacker
from repro.core.attacks.blackhole import InsiderBlackhole, OutsiderBlackhole
from repro.core.attacks.coordinated import (
    CoordinatedInterceptor,
    ReplayCoordinator,
    deploy_coordinated_masts,
)
from repro.core.attacks.inter_area import InterAreaInterceptor
from repro.core.attacks.intra_area import IntraAreaBlocker
from repro.core.attacks.mobile import MobileInterceptor

__all__ = [
    "AdaptiveInterceptor",
    "AttackerStats",
    "CoordinatedInterceptor",
    "InsiderBlackhole",
    "InterAreaInterceptor",
    "IntraAreaBlocker",
    "MobileInterceptor",
    "OutsiderBlackhole",
    "ReplayCoordinator",
    "RoadsideAttacker",
    "deploy_coordinated_masts",
]
