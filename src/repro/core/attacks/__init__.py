"""Proof-of-concept outsider attacks against GeoNetworking (paper §III),
plus the insider blackhole/grayhole baseline the paper contrasts with
(§VI)."""

from repro.core.attacks.base import AttackerStats, RoadsideAttacker
from repro.core.attacks.blackhole import InsiderBlackhole, OutsiderBlackhole
from repro.core.attacks.inter_area import InterAreaInterceptor
from repro.core.attacks.intra_area import IntraAreaBlocker

__all__ = [
    "AttackerStats",
    "InsiderBlackhole",
    "InterAreaInterceptor",
    "IntraAreaBlocker",
    "OutsiderBlackhole",
    "RoadsideAttacker",
]
