"""A mobile inter-area attacker riding the traffic flow.

The roadside mast of the paper is trivially locatable: its replays always
originate from one spot.  A mobile attacker (a compromised vehicle or a
drone pacing the flow) carries the same replay primitive along a waypoint
path — down the highway, or along a street of the Manhattan grid — which
moves the poisoned region with it and spreads the evidence over the whole
route.

The radio stays a :class:`RoadsideAttacker` interface whose position
callback reads ``self.position``; a periodic process advances the position
along the path and re-indexes the interface in the channel's spatial grid
(`refresh_interface_position`) — in batched-fleet mode the mobility step
only moves *fleet* radios, so a moving non-fleet attacker must push its own
position updates.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.attacks.inter_area import InterAreaInterceptor
from repro.geo.position import Position
from repro.sim.process import PeriodicProcess


class MobileInterceptor(InterAreaInterceptor):
    """Replays every overheard beacon while traversing a cyclic path."""

    def __init__(
        self,
        *,
        path: Sequence[Position],
        speed: float,
        update_interval: float = 0.5,
        **kwargs,
    ):
        if len(path) < 2:
            raise ValueError("path needs at least two waypoints")
        if speed <= 0:
            raise ValueError("speed must be positive")
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        kwargs.setdefault("position", path[0])
        super().__init__(**kwargs)
        self.path: List[Position] = list(path)
        self.speed = float(speed)
        self.update_interval = float(update_interval)
        self._leg_lengths = [
            a.distance_to(b) for a, b in zip(self.path, self.path[1:])
        ]
        self._total_length = sum(self._leg_lengths)
        if self._total_length <= 0:
            raise ValueError("path has zero length")
        self._arc = 0.0
        self.distance_travelled = 0.0
        self._mover = PeriodicProcess(
            self.sim, self.update_interval, self._advance,
            start_delay=self.update_interval,
        )

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        step = self.speed * self.update_interval
        self.distance_travelled += step
        # Cyclic traversal: reaching the far end wraps to the start, like a
        # fresh attacker vehicle entering the road — continuous presence.
        self._arc = (self._arc + step) % self._total_length
        self.position = self._point_at(self._arc)
        self.channel.refresh_interface_position(self.iface)

    def _point_at(self, arc: float) -> Position:
        remaining = arc
        for (start, end), length in zip(
            zip(self.path, self.path[1:]), self._leg_lengths
        ):
            if remaining <= length and length > 0.0:
                t = remaining / length
                return Position(
                    start.x + (end.x - start.x) * t,
                    start.y + (end.y - start.y) * t,
                )
            remaining -= length
        return self.path[-1]

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._mover.stop()
        super().stop()
