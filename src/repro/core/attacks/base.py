"""The roadside attacker substrate.

The threat model (paper §III-A), enforced structurally:

* **Outsider** — the attacker holds *no* CA credentials.  Its only write
  capabilities are re-transmitting captured frames verbatim and rewriting
  fields outside the signed body (RHL, per-hop sender fields).  There is no
  code path here that signs anything.
* **Active** — it has a promiscuous sniffer whose receive range equals its
  (tunable) attack range: a stationary roadside mast can hear and reach well
  beyond the vehicle-to-vehicle range.
* **Pseudonymous** — its link-layer address is drawn from the pseudonym
  range that privacy regulation forces the network to accept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geo.position import Position
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.frames import Frame, FrameKind
from repro.security.pseudonym import PseudonymPool
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


@dataclass
class AttackerStats:
    """What the attacker observed and injected."""

    frames_sniffed: int = 0
    beacons_sniffed: int = 0
    packets_sniffed: int = 0
    replays_sent: int = 0


class RoadsideAttacker:
    """Base class for stationary roadside attackers.

    Subclasses implement :meth:`react` and call :meth:`replay_frame` /
    :meth:`inject` — the only transmission primitives the threat model
    allows.
    """

    def __init__(
        self,
        *,
        sim: Simulator,
        channel: BroadcastChannel,
        streams: RandomStreams,
        position: Position,
        attack_range: float,
        reaction_delay: float = 0.0005,
        name: str = "attacker",
    ):
        if attack_range <= 0:
            raise ValueError("attack_range must be positive")
        if reaction_delay < 0:
            raise ValueError("reaction_delay must be non-negative")
        self.sim = sim
        self.channel = channel
        self.position = position
        self.attack_range = float(attack_range)
        self.reaction_delay = reaction_delay
        self.name = name
        self.stats = AttackerStats()
        self._pseudonyms = PseudonymPool(streams.get(f"attacker:{name}"))
        self.iface = RadioInterface(
            get_position=self._get_position,
            tx_range=self.attack_range,
            # Every link touching the attacker (sniffing and injection) runs
            # at the attack range — the roadside mast's asymmetric channel.
            link_range=self.attack_range,
            address=self._pseudonyms.draw(),
            promiscuous=True,
        )
        channel.register(self.iface)
        self.iface.attach(self._on_frame)
        self._active = True

    # ------------------------------------------------------------------
    def _get_position(self):
        return self.position

    # ------------------------------------------------------------------
    # sniffing
    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        if not self._active:
            return
        self.stats.frames_sniffed += 1
        if frame.kind is FrameKind.BEACON:
            self.stats.beacons_sniffed += 1
        else:
            self.stats.packets_sniffed += 1
        if self.reaction_delay > 0:
            self.sim.schedule(self.reaction_delay, self._react_safely, frame)
        else:
            self._react_safely(frame)

    def _react_safely(self, frame: Frame) -> None:
        if self._active:
            self.react(frame)

    def react(self, frame: Frame) -> None:  # pragma: no cover - abstract
        """Subclass hook: decide what to do with a captured frame."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # the permitted write primitives
    # ------------------------------------------------------------------
    def replay_frame(
        self, frame: Frame, *, tx_range: Optional[float] = None
    ) -> None:
        """Re-transmit a captured frame's payload verbatim."""
        self.stats.replays_sent += 1
        self.iface.send(frame.kind, frame.payload, tx_range=tx_range)

    def inject(
        self, kind: FrameKind, payload, *, tx_range: Optional[float] = None
    ) -> None:
        """Transmit a payload built from captured material.

        Payload construction is constrained by the object model: signed
        bodies are frozen, so the only thing a subclass can vary relative to
        a capture is the unsigned per-hop fields.
        """
        self.stats.replays_sent += 1
        self.iface.send(kind, payload, tx_range=tx_range)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Take the attacker off the air."""
        if not self._active:
            return
        self._active = False
        self.channel.unregister(self.iface)
