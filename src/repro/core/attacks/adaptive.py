"""An adaptive inter-area attacker that stays under detection thresholds.

The static interceptor replays *every* beacon it hears — maximally
effective and maximally loud: each replay raises ``replayed-beacon``
alerts at every double-covered witness and ``implausible-position`` alerts
at every far receiver, so a windowed alert-rate detector fires in its
first window.  This adversary assumes the defenders run such a detector
and throttles itself:

* **a replay token bucket** — at most ``max_replays_per_window`` replays
  per ``alert_window`` seconds (the knob mirrors the defender's window, so
  "stay below a configurable alert threshold" is a budget the operator
  derives from the threshold they expect);
* **target selection** — the few replays it does spend go on the captured
  beacons whose advertised position lies *farthest* from the attacker:
  those poison a LocT entry far beyond every victim's real reach, the
  highest interception value per replay (and, with LocT TTLs an order of
  magnitude above the beacon period, a poisoned entry keeps misrouting
  long after the replay);
* **a per-source cooldown** — spreading the budget over distinct sources
  keeps several poisoned entries alive at once instead of refreshing one.

Replays stay within the beacon freshness window: candidates are buffered
per tick and anything older than ``freshness_margin`` is discarded, since
routers reject stale beacons and a late replay would spend budget for no
poisoning at all.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.attacks.base import RoadsideAttacker
from repro.geonet.packets import BeaconBody
from repro.radio.frames import Frame, FrameKind
from repro.security.signing import SignedMessage
from repro.sim.process import PeriodicProcess


class AdaptiveInterceptor(RoadsideAttacker):
    """Budgeted, target-selective replay under an alert-rate ceiling."""

    def __init__(
        self,
        *,
        max_replays_per_window: float = 2.0,
        alert_window: float = 5.0,
        per_source_cooldown: float = 6.0,
        tick: float = 1.0,
        freshness_margin: float = 1.5,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if max_replays_per_window <= 0:
            raise ValueError("max_replays_per_window must be positive")
        if alert_window <= 0:
            raise ValueError("alert_window must be positive")
        if per_source_cooldown < 0:
            raise ValueError("per_source_cooldown must be non-negative")
        if tick <= 0:
            raise ValueError("tick must be positive")
        if freshness_margin <= 0:
            raise ValueError("freshness_margin must be positive")
        self.max_replays_per_window = float(max_replays_per_window)
        self.alert_window = float(alert_window)
        self.per_source_cooldown = float(per_source_cooldown)
        self.tick = float(tick)
        self.freshness_margin = float(freshness_margin)
        self.beacons_replayed = 0
        self.replays_withheld = 0
        #: source addr -> (frame, advertised distance from us, heard time);
        #: latest capture per source, cleared every tick.
        self._candidates: Dict[int, Tuple[Frame, float, float]] = {}
        #: source addr -> last replay time (cooldown bookkeeping).
        self._last_replay: Dict[int, float] = {}
        self._tokens = self.max_replays_per_window
        self._refill_rate = self.max_replays_per_window / self.alert_window
        self._scheduler = PeriodicProcess(
            self.sim, self.tick, self._spend_budget, start_delay=self.tick
        )

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def react(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.BEACON:
            return
        payload = frame.payload
        if not isinstance(payload, SignedMessage):
            return
        if frame.sender_addr == self.iface.address:
            return
        body = payload.body
        if not isinstance(body, BeaconBody):
            return
        distance = self.position.distance_to(body.pv.position)
        self._candidates[body.source_addr] = (frame, distance, self.sim.now)

    # ------------------------------------------------------------------
    # budgeted replay
    # ------------------------------------------------------------------
    def _spend_budget(self) -> None:
        now = self.sim.now
        self._tokens = min(
            self.max_replays_per_window,
            self._tokens + self._refill_rate * self.tick,
        )
        fresh_cutoff = now - self.freshness_margin
        eligible = [
            (distance, addr, frame)
            for addr, (frame, distance, heard_at) in self._candidates.items()
            if heard_at >= fresh_cutoff
            and now - self._last_replay.get(addr, -1e18)
            >= self.per_source_cooldown
        ]
        self._candidates.clear()
        # Highest poisoning value first: the farthest advertised positions.
        eligible.sort(key=lambda item: (-item[0], item[1]))
        spent = 0
        for _distance, addr, frame in eligible:
            if self._tokens < 1.0:
                break
            self._tokens -= 1.0
            self._last_replay[addr] = now
            self.beacons_replayed += 1
            spent += 1
            self.replay_frame(frame)
        self.replays_withheld += len(eligible) - spent
        if len(self._last_replay) > 4096:
            cooldown_cutoff = now - self.per_source_cooldown
            self._last_replay = {
                a: t for a, t in self._last_replay.items()
                if t >= cooldown_cutoff
            }

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._scheduler.stop()
        super().stop()
