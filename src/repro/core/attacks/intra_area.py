"""The intra-area blockage attack (paper §III-C).

The attacker captures a CBF GeoBroadcast the first time it hears it and
immediately re-broadcasts it, impersonating a forwarder with the smallest
contention timeout.  Candidate forwarders that were contending treat the
replay as a duplicate and discard their buffered copies (CBF verifies
neither the hop count nor the duplicate's sender).  To keep fresh receivers
of the replay from re-flooding the packet, the attacker rewrites the
integrity-unprotected RHL field to 1: fresh receivers decrement it to 0 and
never forward.

Two modes mirror the paper's Spot 1 / Spot 2 variants:

* **RHL-rewrite** (default, Spot 1): replay at full attack range with RHL=1.
* **Targeted** (Spot 2 / the Fig 13 road-safety scenario): replay the packet
  *unmodified* with transmission power tuned so only the intended candidate
  forwarder(s) hear it.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.attacks.base import RoadsideAttacker
from repro.geonet.packets import GeoBroadcastPacket, PacketId
from repro.radio.frames import Frame, FrameKind


class IntraAreaBlocker(RoadsideAttacker):
    """Replays each CBF packet once, with RHL rewritten to 1 by default."""

    def __init__(
        self,
        *,
        rewrite_rhl: bool = True,
        replay_range: Optional[float] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.rewrite_rhl = rewrite_rhl
        #: Transmission range for replays (defaults to the attack range);
        #: the targeted variant sets this low to reach only chosen victims.
        self.replay_range = replay_range
        self.packets_replayed = 0
        self._seen: Set[PacketId] = set()

    def react(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.GEO_BROADCAST:
            return
        packet = frame.payload
        if not isinstance(packet, GeoBroadcastPacket):
            return
        if frame.sender_addr == self.iface.address:
            return
        packet_id = packet.packet_id
        if packet_id in self._seen:
            return  # one replay per flood is what kills it
        self._seen.add(packet_id)
        if self.rewrite_rhl:
            # RHL and the per-hop sender fields are outside the source
            # signature, so this modified copy still authenticates.
            replay = packet.next_hop_copy(
                rhl=1,
                sender_addr=packet.sender_addr,
                sender_position=packet.sender_position,
            )
        else:
            replay = packet
        self.packets_replayed += 1
        self.inject(FrameKind.GEO_BROADCAST, replay, tx_range=self.replay_range)
