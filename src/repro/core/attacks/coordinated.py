"""Coordinated multi-mast replay (threat-model extension).

The paper's inter-area attacker is a single mid-road mast; its coverage —
and thus the set of poisonable victims — is one footprint.  A coordinated
adversary erects several masts placed by
:func:`repro.core.vulnerability.greedy_mast_placement` and shares a replay
ledger between them, for two reasons:

* **work splitting** — a beacon heard by several masts is replayed exactly
  once (whichever mast reacts first claims the ``(source, pv timestamp)``
  key), so coverage grows without multiplying on-air replays;
* **loop suppression** — masts hear each other's replays; without the
  shared ledger (and the mast address set) two masts in mutual range would
  re-replay each other forever, a replay storm that throttles only on the
  reaction delay.

The ledger is bounded exactly like the misbehavior detector's dedup state:
claims expire with the beacon freshness window (a stale beacon is rejected
by every router, so re-replaying it is pointless anyway).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.attacks.base import RoadsideAttacker
from repro.geo.position import Position
from repro.geonet.packets import BeaconBody
from repro.radio.frames import Frame, FrameKind
from repro.security.signing import SignedMessage


class ReplayCoordinator:
    """Shared replay ledger and mast roster for a coordinated deployment."""

    def __init__(self, *, claim_window: float = 2.0, max_tracked: int = 8192):
        if claim_window <= 0:
            raise ValueError("claim_window must be positive")
        if max_tracked < 1:
            raise ValueError("max_tracked must be >= 1")
        self.claim_window = claim_window
        self.max_tracked = max_tracked
        self.mast_addrs: Set[int] = set()
        #: (source addr, pv timestamp) -> claim time
        self._claims: Dict[Tuple[int, float], float] = {}
        self.claims_granted = 0
        self.claims_denied = 0

    def register(self, mast: "CoordinatedInterceptor") -> None:
        self.mast_addrs.add(mast.iface.address)

    def is_mast(self, addr: int) -> bool:
        return addr in self.mast_addrs

    def claim(self, key: Tuple[int, float], now: float) -> bool:
        """Grant the replay of ``key`` to the first mast that asks."""
        claimed_at = self._claims.get(key)
        if claimed_at is not None and now - claimed_at <= self.claim_window:
            self.claims_denied += 1
            return False
        self._claims[key] = now
        self.claims_granted += 1
        if len(self._claims) >= self.max_tracked:
            cutoff = now - self.claim_window
            self._claims = {
                k: t for k, t in self._claims.items() if t >= cutoff
            }
        return True


class CoordinatedInterceptor(RoadsideAttacker):
    """One mast of a coordinated inter-area deployment."""

    def __init__(self, *, coordinator: ReplayCoordinator, **kwargs):
        super().__init__(**kwargs)
        self.coordinator = coordinator
        self.beacons_replayed = 0
        coordinator.register(self)

    def react(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.BEACON:
            return
        payload = frame.payload
        if not isinstance(payload, SignedMessage):
            return
        if self.coordinator.is_mast(frame.sender_addr):
            return  # a fellow mast's replay — never echo it
        body = payload.body
        if not isinstance(body, BeaconBody):
            return
        key = (body.source_addr, body.pv.timestamp)
        if not self.coordinator.claim(key, self.sim.now):
            return  # another mast already replayed this beacon
        self.beacons_replayed += 1
        self.replay_frame(frame)


def deploy_coordinated_masts(
    *,
    positions: Sequence[Position],
    claim_window: float = 2.0,
    **attacker_kwargs,
) -> List[CoordinatedInterceptor]:
    """Build one mast per position, all sharing a fresh coordinator.

    ``attacker_kwargs`` are the :class:`RoadsideAttacker` constructor
    arguments (sim, channel, streams, attack_range, ...); each mast gets a
    distinct ``name`` so its pseudonym stream is independent.
    """
    coordinator = ReplayCoordinator(claim_window=claim_window)
    return [
        CoordinatedInterceptor(
            coordinator=coordinator,
            position=position,
            name=f"mast-{index}",
            **attacker_kwargs,
        )
        for index, position in enumerate(positions)
    ]
