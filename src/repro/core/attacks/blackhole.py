"""The classic blackhole attack — the *insider* baseline (paper §VI).

The paper positions its outsider attacks against the well-known blackhole
attack [7]: an attacker who advertises a **forged** position close to the
destination to attract GF traffic, then silently drops whatever it
receives.  Crucially, forged beacons require a *signature that verifies* —
i.e., a CA-issued certificate.  This module implements both sides of that
comparison:

* :class:`InsiderBlackhole` holds stolen/compromised credentials; its
  forged beacons authenticate, it attracts packets and drops them.
* :class:`OutsiderBlackhole` has no credentials; its forged beacons fail
  verification at every receiver and the attack is a no-op — which is
  exactly why the paper's *replay*-based attacks matter.

A ``grayhole_forward_probability`` turns the insider into a grayhole
(selective forwarding) variant.
"""

from __future__ import annotations

from typing import Optional

from repro.geo.position import Position, PositionVector
from repro.geonet.packets import BeaconBody, GeoBroadcastPacket
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.frames import Frame, FrameKind
from repro.security.certificates import Certificate, Credentials
from repro.security.pseudonym import PseudonymPool
from repro.security.signing import sign
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.random import RandomStreams


class _BlackholeBase:
    """Shared machinery: beacon a fake position, swallow attracted packets."""

    def __init__(
        self,
        *,
        sim: Simulator,
        channel: BroadcastChannel,
        streams: RandomStreams,
        position: Position,
        advertised_position: Position,
        credentials: Optional[Credentials],
        tx_range: float = 486.0,
        beacon_period: float = 3.0,
        grayhole_forward_probability: float = 0.0,
        name: str = "blackhole",
    ):
        if not 0.0 <= grayhole_forward_probability <= 1.0:
            raise ValueError("grayhole_forward_probability must be in [0, 1]")
        self.sim = sim
        self.channel = channel
        self.position = position
        #: The lie: where the forged beacons claim the attacker is.
        self.advertised_position = advertised_position
        self.credentials = credentials
        self.name = name
        self._rng = streams.get(f"blackhole:{name}")
        self._grayhole_p = grayhole_forward_probability
        self.iface = RadioInterface(
            get_position=self._get_position,
            tx_range=tx_range,
            address=PseudonymPool(self._rng).draw(),
        )
        channel.register(self.iface)
        self.iface.attach(self._on_frame)
        self.packets_attracted = 0
        self.packets_dropped = 0
        self.packets_forwarded = 0
        self.beacons_forged = 0
        self._process = PeriodicProcess(
            sim,
            beacon_period,
            self._forge_beacon,
            start_delay=self._rng.uniform(0, beacon_period),
        )

    # ------------------------------------------------------------------
    def _get_position(self):
        return self.position

    def _forge_beacon(self) -> None:
        body = BeaconBody(
            source_addr=self.iface.address,
            pv=PositionVector(
                position=self.advertised_position,
                speed=0.0,
                heading=0.0,
                timestamp=self.sim.now,
            ),
        )
        self.beacons_forged += 1
        self.iface.send(FrameKind.BEACON, self._sign(body))

    def _sign(self, body):  # pragma: no cover - overridden
        raise NotImplementedError

    def _on_frame(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.GEO_UNICAST:
            return
        if frame.dest_addr != self.iface.address:
            return
        packet = frame.payload
        if not isinstance(packet, GeoBroadcastPacket):
            return
        self.packets_attracted += 1
        if self._grayhole_p > 0.0 and self._rng.random() < self._grayhole_p:
            # Grayhole variant: occasionally forward to stay undetected.
            self.packets_forwarded += 1
            self.iface.send(FrameKind.GEO_BROADCAST, packet)
        else:
            self.packets_dropped += 1

    def stop(self) -> None:
        """Take the attacker off the air."""
        self._process.stop()
        if self.iface.channel is not None:
            self.channel.unregister(self.iface)


class InsiderBlackhole(_BlackholeBase):
    """A blackhole with valid (compromised) credentials.

    Its forged beacons verify, so GeoNetworking's authentication does *not*
    stop it — this is the attack the certificate infrastructure is sized
    against, and the baseline the paper's outsider attacks sidestep.
    """

    def __init__(self, *, credentials: Credentials, **kwargs):
        if credentials is None:
            raise ValueError("an insider needs credentials")
        super().__init__(credentials=credentials, **kwargs)

    def _sign(self, body):
        return sign(body, self.credentials)


class OutsiderBlackhole(_BlackholeBase):
    """A blackhole *without* credentials.

    It signs with a self-made certificate; every receiver rejects the
    beacons, nothing is attracted, and the attack fails — demonstrating
    that authentication does its job against forgery (paper §III-B: "Such
    forged beacons will not be accepted ... because the authentication
    fails").
    """

    def __init__(self, **kwargs):
        kwargs.pop("credentials", None)
        self_made = Credentials(
            certificate=Certificate(
                subject_id="outsider-blackhole",
                public_token="self-issued-public",
                ca_name="USDOT-CA",
                ca_signature="self-issued-signature",
            ),
            private_token="self-issued-private",
        )
        super().__init__(credentials=self_made, **kwargs)

    def _sign(self, body):
        # Signing "works" locally, but the keypair was never enrolled with
        # the CA, so verification fails at every legitimate receiver.
        return sign(body, self.credentials)
