"""Online (streaming) attack detection over per-node feature streams.

:mod:`repro.core.detection` answers "what does one vehicle see?"; this
module answers the operational question: **would a fleet operator notice
the attack, how fast, and at what false-positive cost?**  A
:class:`DetectionPipeline` attaches a bounded-state
:class:`~repro.core.detection.MisbehaviorDetector` to every monitored
vehicle (including the batched-fleet bulk path) and aggregates, per
tumbling window:

* **alert rates** — replayed-beacon / implausible-position / rhl-anomaly
  alerts per monitored node, the primary signature;
* **LocT churn** — inserts / refreshes / purges per monitored node
  (poisoning beacons teach victims far "neighbors" they never heard);
* **CBF duplicate mix** — duplicate suppressions and RHL-check rejections
  (the blockage attacker's cancel storm);
* **ledger outcome mix** — terminal packet outcomes when a
  :class:`~repro.observability.PacketLedger` rides along.

The :class:`OnlineDetector` scores each window: the per-monitor alert rate
against ``alert_rate_threshold``, and optionally any feature rate against
``feature_thresholds``.  A window scoring >= 1 is *flagged*; the first
flagged window's end is the detection time.  Real impairments — loss,
churn, GPS error from :mod:`repro.faults` — are the false-positive source:
GPS error pushes honest beacons past the plausibility range, so the
threshold trades detection latency against the impaired FP rate (see
``docs/detection.md`` for the calibration).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.detection import Alert, MisbehaviorDetector
from repro.geonet.node import GeoNode
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

#: Alert kinds, in reporting order.
ALERT_KINDS = ("replayed-beacon", "implausible-position", "rhl-anomaly")


@dataclass(frozen=True)
class WindowScore:
    """One closed aggregation window."""

    index: int
    start: float
    end: float
    monitors: int
    alerts: Dict[str, int]
    features: Dict[str, float]
    alert_rate: float
    score: float
    flagged: bool


class OnlineDetector:
    """Threshold scoring over closed windows.

    ``alert_rate_threshold`` is in alerts per monitored node per window —
    normalising by the monitor population makes one calibration work from a
    10-vehicle testbed to a full highway.  ``feature_thresholds`` maps
    feature names (same per-monitor-per-window units) to ceilings that can
    flag a window on their own.
    """

    def __init__(
        self,
        *,
        alert_rate_threshold: float = 5.0,
        feature_thresholds: Optional[Dict[str, float]] = None,
    ):
        if alert_rate_threshold <= 0:
            raise ValueError("alert_rate_threshold must be positive")
        for name, value in (feature_thresholds or {}).items():
            if value <= 0:
                raise ValueError(
                    f"feature threshold {name!r} must be positive, got {value!r}"
                )
        self.alert_rate_threshold = alert_rate_threshold
        self.feature_thresholds = dict(feature_thresholds or {})
        self.windows: List[WindowScore] = []
        self.first_detection: Optional[float] = None

    def close_window(
        self,
        *,
        start: float,
        end: float,
        monitors: int,
        alerts: Dict[str, int],
        features: Dict[str, float],
    ) -> WindowScore:
        """Score one window and record it."""
        monitors = max(1, monitors)
        alert_rate = sum(alerts.values()) / monitors
        score = alert_rate / self.alert_rate_threshold
        for name, threshold in self.feature_thresholds.items():
            value = features.get(name, 0.0)
            score = max(score, value / threshold)
        window = WindowScore(
            index=len(self.windows),
            start=start,
            end=end,
            monitors=monitors,
            alerts=dict(alerts),
            features=dict(features),
            alert_rate=alert_rate,
            score=score,
            flagged=score >= 1.0,
        )
        self.windows.append(window)
        if window.flagged and self.first_detection is None:
            self.first_detection = end
        return window


@dataclass
class DetectionSummary:
    """Per-run outcome of the online pipeline (flattens into run extras)."""

    monitors: int
    monitors_attached: int
    windows_total: int
    windows_flagged: int
    first_detection: Optional[float]
    alert_totals: Dict[str, int] = field(default_factory=dict)
    max_alert_rate: float = 0.0
    mean_alert_rate: float = 0.0

    @property
    def detected(self) -> bool:
        return self.first_detection is not None

    def extras(self, prefix: str = "detect_") -> Dict[str, float]:
        """Flat float mapping for ``RunResult.extras`` (store round-trip).

        ``first_detection_s`` uses -1.0 as the "never flagged" sentinel —
        extras are flat floats by contract.
        """
        out = {
            f"{prefix}monitors": float(self.monitors),
            f"{prefix}monitors_attached": float(self.monitors_attached),
            f"{prefix}windows_total": float(self.windows_total),
            f"{prefix}windows_flagged": float(self.windows_flagged),
            f"{prefix}first_detection_s": (
                -1.0 if self.first_detection is None else self.first_detection
            ),
            f"{prefix}max_alert_rate": self.max_alert_rate,
            f"{prefix}mean_alert_rate": self.mean_alert_rate,
        }
        total = 0
        for kind in ALERT_KINDS:
            count = self.alert_totals.get(kind, 0)
            total += count
            out[f"{prefix}alerts_{kind.replace('-', '_')}"] = float(count)
        out[f"{prefix}alerts_total"] = float(total)
        return out


class DetectionPipeline:
    """Deploys per-node detectors and closes scoring windows on a timer.

    Built by :class:`~repro.experiments.world.World` when
    ``config.detection.enabled``; strictly passive (detectors interpose on
    handlers and taps, the window timer only reads counters), so A/B
    pairing is untouched.
    """

    def __init__(
        self,
        *,
        sim: Simulator,
        window: float = 5.0,
        alert_rate_threshold: float = 5.0,
        feature_thresholds: Optional[Dict[str, float]] = None,
        ledger=None,
        detector_kwargs: Optional[dict] = None,
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.window = window
        self.ledger = ledger
        self.online = OnlineDetector(
            alert_rate_threshold=alert_rate_threshold,
            feature_thresholds=feature_thresholds,
        )
        self.detector_kwargs = dict(detector_kwargs or {})
        # The pipeline aggregates; per-alert objects on every node would
        # re-introduce the unbounded growth the detector fixes bound.
        self.detector_kwargs.setdefault("record_alerts", False)
        self.detectors: Dict[GeoNode, MisbehaviorDetector] = {}
        self.monitors_attached = 0
        self.alert_totals: Counter = Counter()
        self._window_alerts: Counter = Counter()
        self._retired_features: Counter = Counter()
        self._last_totals: Counter = Counter()
        self._timer = PeriodicProcess(
            sim, window, self._close_window, start_delay=window
        )

    # ------------------------------------------------------------------
    # monitor lifecycle
    # ------------------------------------------------------------------
    def attach(self, node: GeoNode) -> MisbehaviorDetector:
        """Start monitoring ``node`` (idempotent per node)."""
        detector = self.detectors.get(node)
        if detector is not None:
            return detector
        detector = MisbehaviorDetector(node, **self.detector_kwargs)
        detector.on_alert.append(self._on_alert)
        self.detectors[node] = detector
        self.monitors_attached += 1
        return detector

    def detach(self, node: GeoNode) -> None:
        """Stop monitoring ``node`` (it is leaving the run); its feature
        counters are retired into the running totals so window deltas stay
        monotonic."""
        detector = self.detectors.pop(node, None)
        if detector is None:
            return
        detector.stop()
        self._retired_features.update(self._node_features(node))

    def _on_alert(self, alert: Alert) -> None:
        self._window_alerts[alert.kind] += 1
        self.alert_totals[alert.kind] += 1

    # ------------------------------------------------------------------
    # feature streams
    # ------------------------------------------------------------------
    @staticmethod
    def _node_features(node: GeoNode) -> Counter:
        loct = node.router.loct
        cbf = node.router.cbf.stats
        return Counter(
            loct_inserts=loct.inserts,
            loct_refreshes=loct.refreshes,
            loct_purged=loct.purged,
            cbf_duplicate_suppressions=cbf.suppressed_by_duplicate,
            cbf_rhl_rejections=cbf.rhl_check_rejections,
        )

    def _close_window(self) -> None:
        now = self.sim.now
        totals = Counter(self._retired_features)
        for node in self.detectors:
            totals.update(self._node_features(node))
        if self.ledger is not None:
            for outcome, count in self.ledger.outcome_totals().items():
                totals[f"ledger_{outcome.replace('-', '_')}"] += count
        delta = totals - self._last_totals
        self._last_totals = totals
        monitors = len(self.detectors)
        per_monitor = max(1, monitors)
        features = {
            name: value / per_monitor for name, value in delta.items()
        }
        self.online.close_window(
            start=now - self.window,
            end=now,
            monitors=monitors,
            alerts=dict(self._window_alerts),
            features=features,
        )
        self._window_alerts.clear()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def summary(self) -> DetectionSummary:
        windows = self.online.windows
        rates = [w.alert_rate for w in windows]
        return DetectionSummary(
            monitors=len(self.detectors),
            monitors_attached=self.monitors_attached,
            windows_total=len(windows),
            windows_flagged=sum(1 for w in windows if w.flagged),
            first_detection=self.online.first_detection,
            alert_totals=dict(self.alert_totals),
            max_alert_rate=max(rates, default=0.0),
            mean_alert_rate=(sum(rates) / len(rates)) if rates else 0.0,
        )
