"""Misbehavior detection for the paper's attacks.

The §V mitigations *prevent* damage; this module adds the monitoring
counterpart, usable as an intrusion-detection layer or to study how visible
the attacks are.  A :class:`MisbehaviorDetector` taps a node's radio
interface (no protocol changes) and raises alerts for the three observable
signatures the attacks leave:

* ``replayed-beacon`` — the same signed beacon (same source, same PV
  timestamp) heard more than once.  A vehicle inside both the advertiser's
  and the attacker's coverage witnesses the replay directly.
* ``implausible-position`` — a beacon advertising a position beyond the
  maximum plausible one-hop range.  Victims outside the advertiser's true
  coverage see this on every poisoning beacon.
* ``rhl-anomaly`` — a duplicate GeoBroadcast whose RHL dropped implausibly
  fast (the blockage attacker's RHL=1 rewrite).

Attack-free traffic produces none of these (tested), so any alert is
actionable.  The related work the paper cites ([22]) disseminates such
detections to neighbors; here the alerts are local and feed callbacks.

Detector state is bounded: beacon first-heard records expire with the
replay dedup window, duplicate-RHL records with the packet lifetime, and a
periodic sweep (plus an insert-time cap) keeps a quiet detector's tables
from retaining the whole run's history.

Batched-fleet runs (``fleet_use_batched=True``) deliver fleet-to-fleet
beacons as bulk ``(addr, pv)`` entries that never pass the radio handler;
:meth:`MisbehaviorDetector.observe_bulk` covers that path so replayed and
implausible beacons stay visible (``GeoNode.bulk_beacon_taps``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.geonet.checks import duplicate_rhl_plausible, position_plausible
from repro.geonet.node import GeoNode
from repro.geonet.packets import BeaconBody, GeoBroadcastPacket
from repro.radio.frames import Frame, FrameKind
from repro.security.signing import SignedMessage, verify
from repro.sim.process import PeriodicProcess


@dataclass(frozen=True)
class Alert:
    """One detection event."""

    kind: str
    time: float
    observer_addr: int
    subject_addr: int
    detail: str


@dataclass
class DetectorStats:
    """Aggregate alert counters per kind."""

    replayed_beacons: int = 0
    implausible_positions: int = 0
    rhl_anomalies: int = 0

    @property
    def total(self) -> int:
        return (
            self.replayed_beacons
            + self.implausible_positions
            + self.rhl_anomalies
        )


class MisbehaviorDetector:
    """Passive per-node monitor; interposes on the radio handler.

    ``max_tracked`` caps each state table (first-heard beacons, first-seen
    RHLs) regardless of traffic rate; ``prune_interval`` schedules a sweep
    that also shrinks the tables of a detector that went *quiet* (no sweep
    when None — callers drive :meth:`sweep` themselves).  ``packet_lifetime``
    bounds how long a duplicate-RHL record can stay useful (a GeoBroadcast
    older than its lifetime is dropped by every router, so a duplicate can
    no longer arrive).  ``record_alerts=False`` keeps only the counters and
    callbacks — the campaign-scale pipeline aggregates alerts elsewhere and
    must not retain one Alert object per poisoning beacon.
    """

    def __init__(
        self,
        node: GeoNode,
        *,
        plausible_range: float = 486.0,
        rhl_drop_threshold: int = 3,
        dedup_window: float = 2.0,
        packet_lifetime: float = 60.0,
        max_tracked: int = 4096,
        prune_interval: Optional[float] = 5.0,
        record_alerts: bool = True,
    ):
        if plausible_range <= 0:
            raise ValueError("plausible_range must be positive")
        if packet_lifetime <= 0:
            raise ValueError("packet_lifetime must be positive")
        if max_tracked < 1:
            raise ValueError("max_tracked must be >= 1")
        if prune_interval is not None and prune_interval <= 0:
            raise ValueError("prune_interval must be positive (or None)")
        self.node = node
        self.plausible_range = plausible_range
        self.rhl_drop_threshold = rhl_drop_threshold
        self.dedup_window = dedup_window
        self.packet_lifetime = packet_lifetime
        self.max_tracked = max_tracked
        self.record_alerts = record_alerts
        self.alerts: List[Alert] = []
        self.stats = DetectorStats()
        self.on_alert: List[Callable[[Alert], None]] = []
        #: (source addr, pv timestamp) -> first-heard time
        self._beacons_heard: Dict[Tuple[int, float], float] = {}
        #: packet id -> (first-seen RHL, first-seen time)
        self._first_rhl: Dict[tuple, Tuple[int, float]] = {}
        self._flagged_replays: Set[Tuple[int, float]] = set()
        self._inner = node.iface.handler
        node.iface.attach(self._observe)
        # Batched-fleet coverage: fleet-to-fleet beacons bypass the radio
        # handler, so the detector also taps the node's bulk delivery path.
        node.bulk_beacon_taps.append(self.observe_bulk)
        self._sweep_process: Optional[PeriodicProcess] = None
        if prune_interval is not None:
            self._sweep_process = PeriodicProcess(
                node.sim, prune_interval, self._sweep_tick,
                start_delay=prune_interval,
            )

    # ------------------------------------------------------------------
    def _raise(self, kind: str, subject_addr: int, detail: str) -> None:
        alert = Alert(
            kind=kind,
            time=self.node.sim.now,
            observer_addr=self.node.address,
            subject_addr=subject_addr,
            detail=detail,
        )
        if self.record_alerts:
            self.alerts.append(alert)
        if kind == "replayed-beacon":
            self.stats.replayed_beacons += 1
        elif kind == "implausible-position":
            self.stats.implausible_positions += 1
        else:
            self.stats.rhl_anomalies += 1
        for callback in self.on_alert:
            callback(alert)

    # ------------------------------------------------------------------
    def _observe(self, frame: Frame) -> None:
        try:
            if frame.kind is FrameKind.BEACON:
                self._inspect_beacon(frame)
            elif frame.kind is FrameKind.GEO_BROADCAST:
                self._inspect_broadcast(frame)
        finally:
            if self._inner is not None:
                self._inner(frame)

    def _inspect_beacon(self, frame: Frame) -> None:
        message = frame.payload
        if not isinstance(message, SignedMessage) or not verify(message):
            return
        body = message.body
        if not isinstance(body, BeaconBody):
            return
        self._check_beacon(body.source_addr, body.pv, self.node.sim.now)

    def observe_bulk(self, entries, now: float) -> None:
        """Inspect a batched-fleet beacon delivery (``(addr, pv)`` pairs).

        The bulk path hands over beacons already signature-verified at
        generation time, so this applies the same replay/plausibility
        checks as :meth:`_inspect_beacon` minus the verify.  Registered on
        ``GeoNode.bulk_beacon_taps`` — without it, a batched-mode detector
        would never record fleet beacons' first hearings and an attacker's
        replay (a real frame) would look like a first hearing.
        """
        for addr, pv in entries:
            self._check_beacon(addr, pv, now)

    def _check_beacon(self, source_addr: int, pv, now: float) -> None:
        key = (source_addr, pv.timestamp)
        first_heard = self._beacons_heard.get(key)
        if (
            first_heard is not None
            and now - first_heard <= self.dedup_window
            and key not in self._flagged_replays
        ):
            self._flagged_replays.add(key)
            self._raise(
                "replayed-beacon",
                source_addr,
                f"beacon t={pv.timestamp:.3f} heard twice "
                f"({now - first_heard:.4f}s apart)",
            )
        elif first_heard is None:
            self._beacons_heard[key] = now
            if len(self._beacons_heard) >= self.max_tracked:
                self._prune_beacons(now)
        if not position_plausible(
            self.node.position(), pv.position, self.plausible_range
        ):
            distance = self.node.position().distance_to(pv.position)
            self._raise(
                "implausible-position",
                source_addr,
                f"advertised {distance:.0f}m away "
                f"(plausible <= {self.plausible_range:.0f}m)",
            )

    def _inspect_broadcast(self, frame: Frame) -> None:
        packet = frame.payload
        if not isinstance(packet, GeoBroadcastPacket):
            return
        now = self.node.sim.now
        first = self._first_rhl.get(packet.packet_id)
        if first is None:
            self._first_rhl[packet.packet_id] = (packet.rhl, now)
            if len(self._first_rhl) >= self.max_tracked:
                self._prune_rhl(now)
            return
        if not duplicate_rhl_plausible(
            first[0], packet.rhl, self.rhl_drop_threshold
        ):
            self._raise(
                "rhl-anomaly",
                packet.sender_addr,
                f"duplicate of {packet.packet_id} with RHL "
                f"{first[0]}->{packet.rhl}",
            )

    # ------------------------------------------------------------------
    # bounded state
    # ------------------------------------------------------------------
    def _sweep_tick(self) -> None:
        self.sweep(self.node.sim.now)

    def sweep(self, now: float) -> None:
        """Expire every record past its useful horizon.

        Runs on the periodic schedule (``prune_interval``) so a detector
        that stops hearing traffic still releases its memory — the old
        insert-gated prune never fired again once the radio went quiet.
        """
        self._prune_beacons(now)
        self._prune_rhl(now)

    def _prune_beacons(self, now: float) -> None:
        cutoff = now - self.dedup_window
        self._beacons_heard = {
            key: t for key, t in self._beacons_heard.items() if t >= cutoff
        }
        if len(self._beacons_heard) > self.max_tracked:
            # Hot table: more live keys than the cap even after expiry.
            # Evict oldest-first — losing a first-heard record can only
            # miss a replay, never fabricate one.
            keep = sorted(
                self._beacons_heard.items(), key=lambda item: item[1]
            )[-self.max_tracked:]
            self._beacons_heard = dict(keep)
        if self._flagged_replays:
            self._flagged_replays &= set(self._beacons_heard)

    def _prune_rhl(self, now: float) -> None:
        cutoff = now - self.packet_lifetime
        self._first_rhl = {
            pid: rec for pid, rec in self._first_rhl.items() if rec[1] >= cutoff
        }
        if len(self._first_rhl) > self.max_tracked:
            keep = sorted(
                self._first_rhl.items(), key=lambda item: item[1][1]
            )[-self.max_tracked:]
            self._first_rhl = dict(keep)

    def tracked_state_size(self) -> int:
        """Total retained records (bounded-state tests and monitoring)."""
        return (
            len(self._beacons_heard)
            + len(self._first_rhl)
            + len(self._flagged_replays)
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Cancel the periodic sweep and release the bulk tap (the node is
        leaving the run)."""
        if self._sweep_process is not None:
            self._sweep_process.stop()
            self._sweep_process = None
        try:
            self.node.bulk_beacon_taps.remove(self.observe_bulk)
        except ValueError:
            pass


def deploy_fleet_detectors(
    nodes, **kwargs
) -> List[MisbehaviorDetector]:
    """Attach a detector to every node; returns them for inspection."""
    return [MisbehaviorDetector(node, **kwargs) for node in nodes]
