"""Misbehavior detection for the paper's attacks.

The §V mitigations *prevent* damage; this module adds the monitoring
counterpart, usable as an intrusion-detection layer or to study how visible
the attacks are.  A :class:`MisbehaviorDetector` taps a node's radio
interface (no protocol changes) and raises alerts for the three observable
signatures the attacks leave:

* ``replayed-beacon`` — the same signed beacon (same source, same PV
  timestamp) heard more than once.  A vehicle inside both the advertiser's
  and the attacker's coverage witnesses the replay directly.
* ``implausible-position`` — a beacon advertising a position beyond the
  maximum plausible one-hop range.  Victims outside the advertiser's true
  coverage see this on every poisoning beacon.
* ``rhl-anomaly`` — a duplicate GeoBroadcast whose RHL dropped implausibly
  fast (the blockage attacker's RHL=1 rewrite).

Attack-free traffic produces none of these (tested), so any alert is
actionable.  The related work the paper cites ([22]) disseminates such
detections to neighbors; here the alerts are local and feed callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Set, Tuple

from repro.geonet.checks import duplicate_rhl_plausible, position_plausible
from repro.geonet.node import GeoNode
from repro.geonet.packets import BeaconBody, GeoBroadcastPacket
from repro.radio.frames import Frame, FrameKind
from repro.security.signing import SignedMessage, verify


@dataclass(frozen=True)
class Alert:
    """One detection event."""

    kind: str
    time: float
    observer_addr: int
    subject_addr: int
    detail: str


@dataclass
class DetectorStats:
    """Aggregate alert counters per kind."""

    replayed_beacons: int = 0
    implausible_positions: int = 0
    rhl_anomalies: int = 0

    @property
    def total(self) -> int:
        return (
            self.replayed_beacons
            + self.implausible_positions
            + self.rhl_anomalies
        )


class MisbehaviorDetector:
    """Passive per-node monitor; interposes on the radio handler."""

    def __init__(
        self,
        node: GeoNode,
        *,
        plausible_range: float = 486.0,
        rhl_drop_threshold: int = 3,
        dedup_window: float = 2.0,
    ):
        if plausible_range <= 0:
            raise ValueError("plausible_range must be positive")
        self.node = node
        self.plausible_range = plausible_range
        self.rhl_drop_threshold = rhl_drop_threshold
        self.dedup_window = dedup_window
        self.alerts: List[Alert] = []
        self.stats = DetectorStats()
        self.on_alert: List[Callable[[Alert], None]] = []
        #: (source addr, pv timestamp) -> first-heard time
        self._beacons_heard: Dict[Tuple[int, float], float] = {}
        #: packet id -> first-seen RHL
        self._first_rhl: Dict[tuple, int] = {}
        self._flagged_replays: Set[Tuple[int, float]] = set()
        self._inner = node.iface.handler
        node.iface.attach(self._observe)

    # ------------------------------------------------------------------
    def _raise(self, kind: str, subject_addr: int, detail: str) -> None:
        alert = Alert(
            kind=kind,
            time=self.node.sim.now,
            observer_addr=self.node.address,
            subject_addr=subject_addr,
            detail=detail,
        )
        self.alerts.append(alert)
        if kind == "replayed-beacon":
            self.stats.replayed_beacons += 1
        elif kind == "implausible-position":
            self.stats.implausible_positions += 1
        else:
            self.stats.rhl_anomalies += 1
        for callback in self.on_alert:
            callback(alert)

    # ------------------------------------------------------------------
    def _observe(self, frame: Frame) -> None:
        try:
            if frame.kind is FrameKind.BEACON:
                self._inspect_beacon(frame)
            elif frame.kind is FrameKind.GEO_BROADCAST:
                self._inspect_broadcast(frame)
        finally:
            if self._inner is not None:
                self._inner(frame)

    def _inspect_beacon(self, frame: Frame) -> None:
        message = frame.payload
        if not isinstance(message, SignedMessage) or not verify(message):
            return
        body = message.body
        if not isinstance(body, BeaconBody):
            return
        now = self.node.sim.now
        key = (body.source_addr, body.pv.timestamp)
        first_heard = self._beacons_heard.get(key)
        if (
            first_heard is not None
            and now - first_heard <= self.dedup_window
            and key not in self._flagged_replays
        ):
            self._flagged_replays.add(key)
            self._raise(
                "replayed-beacon",
                body.source_addr,
                f"beacon t={body.pv.timestamp:.3f} heard twice "
                f"({now - first_heard:.4f}s apart)",
            )
        elif first_heard is None:
            self._beacons_heard[key] = now
            self._prune_beacons(now)
        if not position_plausible(
            self.node.position(), body.pv.position, self.plausible_range
        ):
            distance = self.node.position().distance_to(body.pv.position)
            self._raise(
                "implausible-position",
                body.source_addr,
                f"advertised {distance:.0f}m away "
                f"(plausible <= {self.plausible_range:.0f}m)",
            )

    def _inspect_broadcast(self, frame: Frame) -> None:
        packet = frame.payload
        if not isinstance(packet, GeoBroadcastPacket):
            return
        first = self._first_rhl.get(packet.packet_id)
        if first is None:
            self._first_rhl[packet.packet_id] = packet.rhl
            return
        if not duplicate_rhl_plausible(
            first, packet.rhl, self.rhl_drop_threshold
        ):
            self._raise(
                "rhl-anomaly",
                packet.sender_addr,
                f"duplicate of {packet.packet_id} with RHL {first}->{packet.rhl}",
            )

    def _prune_beacons(self, now: float) -> None:
        if len(self._beacons_heard) < 4096:
            return
        cutoff = now - self.dedup_window
        self._beacons_heard = {
            key: t for key, t in self._beacons_heard.items() if t >= cutoff
        }


def deploy_fleet_detectors(
    nodes, **kwargs
) -> List[MisbehaviorDetector]:
    """Attach a detector to every node; returns them for inspection."""
    return [MisbehaviorDetector(node, **kwargs) for node in nodes]
