"""The GF forwarding-time plausibility check (paper §V-A).

Why not the alternatives the paper rejects: encrypting beacons adds constant
per-beacon cost for every sender and receiver; acknowledgements do not fix
the wrong *decision* (and lose efficiency when ACKs drop).  Checking the
chosen candidate's advertised distance at forwarding time blocks the replay
poisoning *and* filters stale real entries — which is why the paper measures
higher reception with the check even in attack-free scenarios.
"""

from __future__ import annotations

from repro.geonet.checks import position_plausible
from repro.geonet.config import GeoNetConfig

__all__ = ["enable_plausibility_check", "position_plausible"]


def enable_plausibility_check(
    config: GeoNetConfig, threshold: float | None = None
) -> GeoNetConfig:
    """A config copy with the GF plausibility check switched on.

    ``threshold`` defaults to the existing configured threshold (which in
    turn defaults to the DSRC NLoS-median range of 486 m, the value the
    paper evaluates).
    """
    from dataclasses import replace

    updates = {"plausibility_check": True}
    if threshold is not None:
        updates["plausibility_threshold"] = threshold
    return replace(config, **updates)
