"""Standard-compatible mitigations (paper §V).

Both defences are implemented inside the GeoNetworking stack (see
:mod:`repro.geonet.checks`) and switched on through
:class:`~repro.geonet.config.GeoNetConfig`; this package re-exports the
predicates and provides convenience enablers so applications can adopt them
without touching stack internals.

* **GF plausibility check** — before forwarding, the GF forwarder skips any
  candidate whose advertised position is farther than a threshold (default:
  the NLoS-median range).  Checking at *forwarding time* rather than on
  every beacon keeps the overhead proportional to data packets, not beacons.
* **CBF RHL-drop check** — a contending node only accepts a duplicate whose
  RHL is within a small drop (default 3) of the first-received copy; the
  attacker's RHL=1 rewrite shows a steep drop and is ignored.
"""

from repro.core.mitigations.plausibility import (
    enable_plausibility_check,
    position_plausible,
)
from repro.core.mitigations.rhl_check import (
    duplicate_rhl_plausible,
    enable_rhl_check,
)

__all__ = [
    "duplicate_rhl_plausible",
    "enable_plausibility_check",
    "enable_rhl_check",
    "position_plausible",
]
