"""The CBF RHL-drop check (paper §V-B).

Signing the RHL field would require changing the CBF packet structure and
break standard compatibility, so the paper instead has contending nodes
sanity-check duplicates: the source emits packets with a large RHL (e.g. 10),
a legitimate peer's re-broadcast arrives with RHL one below the first copy,
while the attacker must rewrite RHL to 1 — a steep, detectable drop.
"""

from __future__ import annotations

from repro.geonet.checks import duplicate_rhl_plausible
from repro.geonet.config import GeoNetConfig

__all__ = ["duplicate_rhl_plausible", "enable_rhl_check"]


def enable_rhl_check(
    config: GeoNetConfig, threshold: int | None = None
) -> GeoNetConfig:
    """A config copy with the CBF RHL-drop check switched on.

    ``threshold`` is the maximum acceptable RHL drop for a duplicate
    (the paper uses 3).
    """
    from dataclasses import replace

    updates = {"rhl_check": True}
    if threshold is not None:
        updates["rhl_drop_threshold"] = threshold
    return replace(config, **updates)
