"""Single-Hop Broadcast (SHB) — the CAM/BSM transport.

Cooperative awareness messages (ETSI CAM / SAE BSM) are GN Single-Hop
Broadcasts: signed, never forwarded, sent periodically at up to 10 Hz.
They ride the same radio as beacons and GeoBroadcast, carry the sender's PV
plus an application payload, and update receivers' location tables exactly
like beacons do (EN 302 636-4-1: SHB packets are an implicit beacon).

This is the transport the paper's motivating applications (emergency-brake
warnings to direct neighbors) use when no multi-hop dissemination is
needed; it also means a deployment running CAMs can lower its dedicated
beacon rate — modelled here by :class:`ShbService` optionally replacing the
beacon service.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.geo.position import PositionVector
from repro.geonet.node import GeoNode
from repro.radio.frames import Frame, FrameKind
from repro.security.signing import SignedMessage, sign, verify
from repro.sim.process import PeriodicProcess


@dataclass(frozen=True)
class ShbBody:
    """The signed content of a single-hop broadcast."""

    source_addr: int
    sequence_number: int
    pv: PositionVector
    payload: str


@dataclass
class ShbStats:
    """Counters for the SHB service."""

    sent: int = 0
    received: int = 0
    rejected_auth: int = 0


class ShbService:
    """Per-node SHB sender/receiver.

    Attach to a node; received SHBs update the location table (implicit
    beaconing) and are handed to ``on_receive`` callbacks.  A periodic
    awareness payload can be scheduled with :meth:`start_periodic`.
    """

    def __init__(self, node: GeoNode):
        self.node = node
        self._seq = itertools.count(1)
        self.stats = ShbStats()
        self.on_receive: List[Callable[[GeoNode, ShbBody], None]] = []
        self._process: Optional[PeriodicProcess] = None
        self._payload_fn: Optional[Callable[[], str]] = None
        self._inner = node.iface.handler
        node.iface.attach(self._observe)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, payload: str) -> int:
        """Sign and broadcast one SHB; returns its sequence number."""
        body = ShbBody(
            source_addr=self.node.address,
            sequence_number=next(self._seq),
            pv=self.node.position_vector(),
            payload=payload,
        )
        self.stats.sent += 1
        self.node.iface.send(FrameKind.BEACON, _ShbEnvelope(sign(body, self.node.credentials)))
        return body.sequence_number

    def start_periodic(
        self, payload_fn: Callable[[], str], *, rate_hz: float = 10.0
    ) -> None:
        """Send ``payload_fn()`` periodically (CAM-style, default 10 Hz)."""
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if self._process is not None:
            raise RuntimeError("periodic SHB already started")
        self._payload_fn = payload_fn
        self._process = PeriodicProcess(
            self.node.sim,
            1.0 / rate_hz,
            self._periodic_send,
            start_delay=self.node.rng.uniform(0, 1.0 / rate_hz),
        )

    def _periodic_send(self) -> None:
        self.send(self._payload_fn())

    def stop(self) -> None:
        """Stop periodic sending (reception keeps working)."""
        if self._process is not None:
            self._process.stop()
            self._process = None

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------
    def _observe(self, frame: Frame) -> None:
        payload = frame.payload
        if frame.kind is FrameKind.BEACON and isinstance(payload, _ShbEnvelope):
            self._receive(payload.message)
            return  # SHBs are fully handled here (incl. LocT update)
        if self._inner is not None:
            self._inner(frame)

    def _receive(self, message: SignedMessage) -> None:
        if not verify(message):
            self.stats.rejected_auth += 1
            return
        body: ShbBody = message.body
        if body.source_addr == self.node.address:
            return
        now = self.node.sim.now
        if body.pv.age(now) <= self.node.config.beacon_freshness_window:
            # Implicit beaconing: an SHB refreshes the sender's LocTE.
            self.node.router.loct.update(body.source_addr, body.pv, now)
        self.stats.received += 1
        for callback in self.on_receive:
            callback(self.node, body)


@dataclass(frozen=True)
class _ShbEnvelope:
    """Marks a beacon-kind frame as an SHB (vs a plain beacon)."""

    message: SignedMessage
