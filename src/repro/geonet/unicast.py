"""GeoUnicast (GUC) and the Location Service (LS).

EN 302 636-4-1 transports:

* **GeoUnicast** — deliver a payload to *one* GeoNetworking address.  The
  source needs the destination's position to route greedily toward it; each
  relay forwards with the same GF next-hop selection used for inter-area
  GeoBroadcast (and is therefore exactly as vulnerable to the paper's
  beacon-replay interception).
* **Location Service** — when the destination's position is unknown, the
  source buffers the packet and floods an ``LS_REQUEST`` (duplicate-filtered,
  hop-limited).  The target answers with an ``LS_REPLY`` routed back as a
  GeoUnicast toward the requester's position (carried in the request); the
  reply populates the requester's location table and flushes the buffered
  packets.

All bodies are source-signed; like GBC, the per-hop RHL and sender fields
stay outside the signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geo.position import Position, PositionVector
from repro.security.signing import SignedMessage

#: (source GN address, LS/GUC sequence number)
UnicastId = Tuple[int, int]


@dataclass(frozen=True)
class GucBody:
    """The source-signed part of a GeoUnicast packet."""

    source_addr: int
    sequence_number: int
    source_pv: PositionVector
    dest_addr: int
    payload: str
    lifetime: float
    created_at: float

    def __post_init__(self):
        if self.lifetime <= 0:
            raise ValueError("lifetime must be positive")

    @property
    def packet_id(self) -> UnicastId:
        return (self.source_addr, self.sequence_number)

    def expired(self, now: float) -> bool:
        return now > self.created_at + self.lifetime


@dataclass(frozen=True)
class GeoUnicastPacket:
    """A GUC packet in flight: signed body + per-hop mutable fields.

    ``dest_position`` is the routing hint (where the source believes the
    destination is); like RHL it is rewritten per hop if a relay has fresher
    knowledge, so it cannot be covered by the source signature.
    """

    signed: SignedMessage  # body is a GucBody
    rhl: int
    sender_addr: int
    sender_position: Position
    dest_position: Position

    def __post_init__(self):
        if self.rhl < 0:
            raise ValueError("rhl must be non-negative")

    @property
    def body(self) -> GucBody:
        return self.signed.body

    @property
    def packet_id(self) -> UnicastId:
        return self.body.packet_id

    @property
    def routing_dest_addr(self) -> int:
        return self.body.dest_addr

    def expired(self, now: float) -> bool:
        return self.body.expired(now)

    def next_hop_copy(
        self,
        *,
        rhl: int,
        sender_addr: int,
        sender_position: Position,
        dest_position: Position,
    ) -> "GeoUnicastPacket":
        return GeoUnicastPacket(
            signed=self.signed,
            rhl=rhl,
            sender_addr=sender_addr,
            sender_position=sender_position,
            dest_position=dest_position,
        )


@dataclass(frozen=True)
class LsRequestBody:
    """The signed content of a Location Service request."""

    source_addr: int
    sequence_number: int
    source_pv: PositionVector
    target_addr: int
    created_at: float

    @property
    def request_id(self) -> UnicastId:
        return (self.source_addr, self.sequence_number)


@dataclass(frozen=True)
class LsRequestPacket:
    """An LS request in flight (simple hop-limited flood)."""

    signed: SignedMessage  # body is an LsRequestBody
    rhl: int
    sender_addr: int

    def __post_init__(self):
        if self.rhl < 0:
            raise ValueError("rhl must be non-negative")

    @property
    def body(self) -> LsRequestBody:
        return self.signed.body

    @property
    def request_id(self) -> UnicastId:
        return self.body.request_id

    def next_hop_copy(self, *, rhl: int, sender_addr: int) -> "LsRequestPacket":
        return LsRequestPacket(signed=self.signed, rhl=rhl, sender_addr=sender_addr)


@dataclass(frozen=True)
class LsReplyBody:
    """The signed content of a Location Service reply.

    Carries the target's fresh PV; routed back to the requester as a
    GeoUnicast-style packet toward the requester's position.
    """

    target_addr: int
    target_pv: PositionVector
    requester_addr: int
    request_sequence_number: int
    created_at: float
    lifetime: float = 10.0

    @property
    def request_id(self) -> UnicastId:
        return (self.requester_addr, self.request_sequence_number)

    def expired(self, now: float) -> bool:
        return now > self.created_at + self.lifetime


@dataclass(frozen=True)
class LsReplyPacket:
    """An LS reply in flight — routed like a GUC toward the requester."""

    signed: SignedMessage  # body is an LsReplyBody
    rhl: int
    sender_addr: int
    sender_position: Position
    dest_position: Position

    def __post_init__(self):
        if self.rhl < 0:
            raise ValueError("rhl must be non-negative")

    @property
    def body(self) -> LsReplyBody:
        return self.signed.body

    @property
    def routing_dest_addr(self) -> int:
        return self.body.requester_addr

    @property
    def packet_id(self) -> Tuple[str, int, int]:
        return ("ls-reply",) + self.body.request_id

    def expired(self, now: float) -> bool:
        return self.body.expired(now)

    def next_hop_copy(
        self,
        *,
        rhl: int,
        sender_addr: int,
        sender_position: Position,
        dest_position: Position,
    ) -> "LsReplyPacket":
        return LsReplyPacket(
            signed=self.signed,
            rhl=rhl,
            sender_addr=sender_addr,
            sender_position=sender_position,
            dest_position=dest_position,
        )
