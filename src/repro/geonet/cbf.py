"""Contention-Based Forwarding (CBF) — intra-area flooding.

On first reception of a GeoBroadcast packet, a node inside the destination
area buffers it and starts a contention timer

    TO = TO_MIN                                        if DIST > DIST_MAX
    TO = TO_MAX + (TO_MIN - TO_MAX)/DIST_MAX * DIST    otherwise

where DIST is the distance to the *previous sender*.  Nodes further from the
sender time out earlier and re-broadcast; hearing a duplicate (same source
address and sequence number) before the timer fires cancels the buffered
copy.  The standard does **not** check who sent the duplicate, from where,
or with what hop count — the three vulnerabilities the intra-area blockage
attack combines.

The §V mitigation is the optional RHL-drop check: a "duplicate" whose RHL is
more than ``rhl_drop_threshold`` below the RHL of the first-received copy is
not accepted as a duplicate (a legitimate peer's re-broadcast differs by one
hop; the attacker's RHL=1 rewrite differs by many).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.geo.position import Position
from repro.geonet.checks import duplicate_rhl_plausible
from repro.geonet.config import GeoNetConfig
from repro.geonet.packets import GeoBroadcastPacket, PacketId
from repro.observability.ledger import reasons
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle


def contention_timeout(distance: float, config: GeoNetConfig) -> float:
    """The CBF buffering timeout for a given distance to the previous sender."""
    if distance < 0:
        raise ValueError("distance must be non-negative")
    if distance > config.dist_max:
        return config.to_min
    return config.to_max + (config.to_min - config.to_max) / config.dist_max * distance


#: Bound on consecutive carrier-sense backoffs, so a pathologically busy
#: medium cannot park a packet forever.
_MAX_CSMA_DEFERS = 20

#: Slack added to a packet's lifetime before its duplicate-detection entry
#: may be dropped.  Generous relative to real copy arrival (forwarders check
#: ``expired()`` before re-emitting and CSMA defers are bounded at
#: ~20 × 1.5 ms), so expiring the entry can never un-suppress a copy that
#: could actually still arrive.
_DONE_GRACE = 1.0

#: How often ``handle_broadcast`` sweeps expired duplicate-detection
#: entries.  Purely a cost/latency trade-off: entries are unreachable the
#: moment their packet is expired either way.
_DONE_SWEEP_INTERVAL = 5.0


@dataclass
class _BufferedPacket:
    packet: GeoBroadcastPacket
    first_rhl: int
    forward_rhl: int
    timer: EventHandle
    buffered_at: float
    defers: int = 0
    #: Plausible duplicates overheard while contending (S-FoT+ cancels
    #: only after ``sfot_dup_threshold`` of them; stock CBF after one).
    dup_heard: int = 0


@dataclass
class CbfStats:
    """Counters for CBF behaviour across a node's lifetime."""

    first_receptions: int = 0
    buffered: int = 0
    rebroadcasts: int = 0
    suppressed_by_duplicate: int = 0
    rhl_exhausted: int = 0
    expired_in_buffer: int = 0
    late_duplicates_ignored: int = 0
    rhl_check_rejections: int = 0
    csma_defers: int = 0
    #: Copies abandoned because the medium never cleared across the whole
    #: CSMA defer budget (terminal ledger outcome ``cbf-defer-exhausted``).
    csma_defer_exhaustions: int = 0
    #: Re-broadcasts withheld by the reactive DCC gate.
    dcc_suppressed: int = 0
    #: S-FoT+ only: first receptions outside the contention sector
    #: (delivered but never buffered).
    sector_skips: int = 0
    #: S-FoT+ only: duplicates heard while below the cancel threshold.
    dup_below_threshold: int = 0


class CbfForwarder:
    """Per-node CBF state machine.

    The owner provides two callbacks: ``deliver`` (first reception of a
    packet — pass it up the stack) and ``broadcast`` (re-emit the packet with
    the given RHL).
    """

    def __init__(
        self,
        sim: Simulator,
        config: GeoNetConfig,
        get_position: Callable[[], Position],
        deliver: Callable[[GeoBroadcastPacket], None],
        broadcast: Callable[[GeoBroadcastPacket, int], None],
        rng=None,
        medium_busy: Optional[Callable[[], bool]] = None,
        ledger=None,
        get_addr: Optional[Callable[[], int]] = None,
        dcc=None,
    ):
        self._sim = sim
        self.config = config
        self._get_position = get_position
        self._deliver = deliver
        self._broadcast = broadcast
        self._rng = rng
        #: Optional per-node :class:`~repro.geonet.dcc.DccGate`; when set,
        #: re-broadcasts that win contention still pass the access-layer
        #: rate gate before hitting the air.
        self._dcc = dcc
        #: Optional PacketLedger plus the owner's (current) address for it.
        self._ledger = ledger
        self._get_addr = get_addr
        #: Carrier-sense hook: when set and True at timer expiry, the
        #: re-broadcast defers briefly (CSMA) — the deferring contender then
        #: hears the in-flight duplicate and cancels like real radios do.
        self._medium_busy = medium_busy
        self._buffers: Dict[PacketId, _BufferedPacket] = {}
        #: Duplicate-detection memory: packet id -> simulation time after
        #: which the entry may be swept.  Keyed on the packet's own lifetime
        #: (plus grace), so the set is bounded by the packets *currently
        #: alive* in the network instead of growing for the whole run.
        self._done: Dict[PacketId, float] = {}
        self._next_done_sweep = _DONE_SWEEP_INTERVAL
        self.stats = CbfStats()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_buffered(self, packet_id: PacketId) -> bool:
        """Whether the packet is currently contending."""
        return packet_id in self._buffers

    def has_processed(self, packet_id: PacketId) -> bool:
        """Whether this node has already received the packet."""
        return packet_id in self._done or packet_id in self._buffers

    def mark_done(
        self, packet_id: PacketId, *, expires_at: Optional[float] = None
    ) -> None:
        """Record a packet as processed without buffering it.

        Used for deliveries that cannot be forwarded (exhausted hop budget).
        ``expires_at`` is the packet's lifetime end when the caller knows it;
        without it the entry is conservatively kept for the protocol's
        default lifetime.  An already-known entry only ever extends.
        """
        if expires_at is None:
            expires_at = self._sim.now + self.config.default_lifetime
        drop_after = expires_at + _DONE_GRACE
        previous = self._done.get(packet_id)
        if previous is None or drop_after > previous:
            self._done[packet_id] = drop_after

    def _remember_done(self, packet: GeoBroadcastPacket) -> None:
        """Mark ``packet`` done until its own lifetime (plus grace) is up."""
        body = packet.body
        self.mark_done(
            packet.packet_id, expires_at=body.created_at + body.lifetime
        )

    def _sweep_done(self, now: float) -> None:
        """Drop duplicate-detection entries whose packets cannot recur."""
        if now < self._next_done_sweep:
            return
        self._next_done_sweep = now + _DONE_SWEEP_INTERVAL
        dead = [pid for pid, drop_after in self._done.items() if now > drop_after]
        for pid in dead:
            del self._done[pid]

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------
    def handle_broadcast(self, packet: GeoBroadcastPacket) -> None:
        """Process a GeoBroadcast heard on the channel (node is in-area)."""
        now = self._sim.now
        self._sweep_done(now)
        packet_id = packet.packet_id
        buffered = self._buffers.get(packet_id)
        if buffered is not None:
            self._handle_duplicate(buffered, packet)
            return
        if packet_id in self._done:
            self.stats.late_duplicates_ignored += 1
            return
        self._first_reception(packet, now)

    def _handle_duplicate(
        self, buffered: _BufferedPacket, duplicate: GeoBroadcastPacket
    ) -> None:
        if self.config.rhl_check and not duplicate_rhl_plausible(
            buffered.first_rhl, duplicate.rhl, self.config.rhl_drop_threshold
        ):
            # Implausibly steep RHL drop: a legitimate peer one hop on would
            # differ by ~1.  Keep contending.
            self.stats.rhl_check_rejections += 1
            return
        self._cancel_buffered(buffered)

    def _cancel_buffered(self, buffered: _BufferedPacket) -> None:
        """Duplicate suppression: stop contending for this copy."""
        buffered.timer.cancel()
        del self._buffers[buffered.packet.packet_id]
        self._remember_done(buffered.packet)
        self.stats.suppressed_by_duplicate += 1
        self._ledger_drop(buffered.packet, reasons.CBF_SUPPRESSED)

    def _first_reception(self, packet: GeoBroadcastPacket, now: float) -> None:
        self.stats.first_receptions += 1
        self._deliver(packet)
        if packet.expired(now):
            self._remember_done(packet)
            self._ledger_drop(packet, reasons.LIFETIME_EXPIRED)
            return
        forward_rhl = packet.rhl - 1
        if forward_rhl <= 0:
            self.stats.rhl_exhausted += 1
            self._remember_done(packet)
            self._ledger_drop(packet, reasons.RHL_EXHAUSTED)
            return
        distance = self._get_position().distance_to(packet.sender_position)
        timeout = contention_timeout(distance, self.config)
        if self._rng is not None and self.config.cbf_timer_jitter > 0:
            # MAC access / processing jitter; breaks equal-distance ties.
            timeout += self._rng.uniform(0, self.config.cbf_timer_jitter)
        timer = self._sim.schedule(timeout, self._contention_expired, packet.packet_id)
        self._buffers[packet.packet_id] = _BufferedPacket(
            packet=packet,
            first_rhl=packet.rhl,
            forward_rhl=forward_rhl,
            timer=timer,
            buffered_at=now,
        )
        self.stats.buffered += 1

    # ------------------------------------------------------------------
    # origination / timer expiry
    # ------------------------------------------------------------------
    def originate(self, packet: GeoBroadcastPacket) -> None:
        """Broadcast a packet this node sources (or injects into the area).

        The node counts as having received its own packet.
        """
        self._remember_done(packet)
        self._ledger_hop(packet, "cbf-originate")
        self._broadcast(packet, packet.rhl)
        self.stats.rebroadcasts += 1

    def _contention_expired(self, packet_id: PacketId) -> None:
        buffered = self._buffers.get(packet_id)
        if buffered is None:
            return
        if self._medium_busy is not None and self._medium_busy():
            if buffered.defers < _MAX_CSMA_DEFERS:
                # Channel busy: back off one airtime and listen — if the
                # ongoing transmission is a duplicate of this packet, it
                # will cancel us.
                buffered.defers += 1
                delay = 0.001
                if self._rng is not None:
                    delay += self._rng.uniform(0, 0.0005)
                buffered.timer = self._sim.schedule(
                    delay, self._contention_expired, packet_id
                )
                self.stats.csma_defers += 1
                return
            # Carrier sense never cleared across the entire defer budget.
            # A real MAC abandons the frame after its retry limit rather
            # than jamming a saturated channel; account the copy with its
            # own terminal outcome instead of force-broadcasting (or, as an
            # earlier revision did, letting it vanish from the ledger).
            del self._buffers[packet_id]
            self._remember_done(buffered.packet)
            self.stats.csma_defer_exhaustions += 1
            self._ledger_drop(buffered.packet, reasons.CBF_DEFER_EXHAUSTED)
            return
        del self._buffers[packet_id]
        self._remember_done(buffered.packet)
        if buffered.packet.expired(self._sim.now):
            self.stats.expired_in_buffer += 1
            self._ledger_drop(buffered.packet, reasons.EXPIRED_IN_BUFFER)
            return
        if self._dcc is not None and not self._dcc.allow(self._sim.now):
            # Won contention but the access layer is rate-limiting this
            # station: the copy is withheld, exactly like a DCC queue drop.
            self.stats.dcc_suppressed += 1
            self._ledger_drop(buffered.packet, reasons.DCC_SUPPRESSED)
            return
        self._ledger_hop(buffered.packet, "cbf-rebroadcast")
        self._broadcast(buffered.packet, buffered.forward_rhl)
        self.stats.rebroadcasts += 1

    # ------------------------------------------------------------------
    # ledger hooks (no-ops without a ledger)
    # ------------------------------------------------------------------
    def _ledger_drop(self, packet: GeoBroadcastPacket, reason: str) -> None:
        if self._ledger is not None:
            self._ledger.dropped(
                "gbc",
                packet.packet_id,
                self._sim.now,
                self._get_addr() if self._get_addr is not None else -1,
                reason,
            )

    def _ledger_hop(self, packet: GeoBroadcastPacket, action: str) -> None:
        if self._ledger is not None:
            self._ledger.hop(
                "gbc",
                packet.packet_id,
                self._sim.now,
                self._get_addr() if self._get_addr is not None else -1,
                action,
            )

    # ------------------------------------------------------------------
    # teardown / power state
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Cancel all contention timers (node leaving the simulation)."""
        for buffered in self._buffers.values():
            buffered.timer.cancel()
        self._buffers.clear()

    def power_off(self) -> None:
        """Fault-injected outage: contending copies die with the power.

        Unlike :meth:`shutdown` the copies are accounted ``node-down`` —
        a rebooting node re-enters the network, so these losses must stay
        attributable.  Stats survive for the run's aggregate totals.
        """
        for buffered in self._buffers.values():
            buffered.timer.cancel()
            self._ledger_drop(buffered.packet, reasons.NODE_DOWN)
        self._buffers.clear()

    def reset_state(self, now: float) -> None:
        """Reboot: duplicate-detection memory is volatile RAM — wipe it."""
        self._done.clear()
        self._next_done_sweep = now + _DONE_SWEEP_INTERVAL


class SfotCbfForwarder(CbfForwarder):
    """S-FoT+ — the sectorial CBF variant of Amador et al. (arXiv
    2403.11271), selected with ``GeoNetConfig.cbf_variant = "sfot+"``.

    Two deviations from stock CBF, both aimed at wasted and hijackable
    contention rounds:

    * **Sectorial contention.**  On first reception, a node contends only
      if it lies inside a sector of ``sfot_sector_deg`` degrees centred on
      the previous-sender -> destination-center direction.  Receivers
      behind or beside the sender still *deliver* the packet but never
      buffer it — their re-broadcast would push the flood away from the
      area.  (With the sender at the area center the flood is already
      home; every receiver contends, as in the original.)
    * **Duplicate threshold.**  A buffered copy is cancelled only after
      ``sfot_dup_threshold`` plausible duplicates instead of the first.
      This is the "+" refinement — and it is directly relevant to the
      paper's intra-area blockage attack, whose suppression primitive is a
      *single* replayed duplicate per contender.

    RNG discipline matches the base class: the sector test and duplicate
    counting draw nothing, so ``cbf_variant="cbf"`` runs are untouched and
    S-FoT+ runs stay deterministic per seed.
    """

    def _in_contention_sector(self, packet: GeoBroadcastPacket) -> bool:
        sender = packet.sender_position
        center = packet.area.center
        own = self._get_position()
        tx = center.x - sender.x
        ty = center.y - sender.y
        t_sq = tx * tx + ty * ty
        if t_sq <= 1e-12:
            return True
        vx = own.x - sender.x
        vy = own.y - sender.y
        v_sq = vx * vx + vy * vy
        if v_sq <= 1e-12:
            return True
        cos_angle = (tx * vx + ty * vy) / math.sqrt(t_sq * v_sq)
        half_rad = math.radians(self.config.sfot_sector_deg / 2.0)
        return cos_angle >= math.cos(half_rad)

    def _first_reception(self, packet: GeoBroadcastPacket, now: float) -> None:
        if not self._in_contention_sector(packet):
            self.stats.first_receptions += 1
            self.stats.sector_skips += 1
            self._deliver(packet)
            self._remember_done(packet)
            return
        super()._first_reception(packet, now)

    def _handle_duplicate(
        self, buffered: _BufferedPacket, duplicate: GeoBroadcastPacket
    ) -> None:
        if self.config.rhl_check and not duplicate_rhl_plausible(
            buffered.first_rhl, duplicate.rhl, self.config.rhl_drop_threshold
        ):
            self.stats.rhl_check_rejections += 1
            return
        buffered.dup_heard += 1
        if buffered.dup_heard < self.config.sfot_dup_threshold:
            self.stats.dup_below_threshold += 1
            return
        self._cancel_buffered(buffered)
