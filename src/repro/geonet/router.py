"""The GeoNetworking router: ties beacons, LocT, GF and CBF together.

Per EN 302 636-4-1 GeoBroadcast forwarding:

* a node *outside* the destination area forwards via GF (link-layer unicast
  to the selected next hop, no acknowledgement);
* a node *inside* the area disseminates via CBF broadcast;
* a GF-carried packet that reaches a node inside the area is delivered and
  injected into the intra-area CBF flood;
* duplicate detection is by (source address, sequence number);
* RHL is decremented at every forwarding and packets are dropped when their
  lifetime or hop budget is exhausted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Set

from repro.geo.areas import DestinationArea
from repro.geonet.cbf import CbfForwarder, SfotCbfForwarder
from repro.geonet.gf import GreedyForwarder
from repro.geonet.guc import UnicastService
from repro.geonet.loct import LocationTable
from repro.geonet.packets import BeaconBody, GbcBody, GeoBroadcastPacket, PacketId
from repro.geonet.unicast import GeoUnicastPacket, LsReplyPacket, LsRequestPacket
from repro.observability.ledger import reasons
from repro.radio.frames import Frame, FrameKind
from repro.security.signing import SignedMessage, sign, verify
from repro.sim.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.geonet.node import GeoNode


@dataclass
class RouterStats:
    """Per-node protocol counters."""

    originated: int = 0
    delivered: int = 0
    beacons_accepted: int = 0
    beacons_rejected_auth: int = 0
    beacons_rejected_stale: int = 0
    gbc_rejected_auth: int = 0
    gf_forwards: int = 0
    gf_rechecks: int = 0
    gf_lifetime_drops: int = 0
    gf_rhl_drops: int = 0
    #: GF forwards held back by the reactive DCC gate and parked in the
    #: recheck loop (they retry after ``gf_recheck_interval``).
    gf_dcc_deferred: int = 0
    unicast_duplicates: int = 0
    out_of_area_broadcasts: int = 0


class GeoRouter:
    """The per-node routing state machine."""

    def __init__(self, node: "GeoNode"):
        self.node = node
        self.config = node.config
        #: Optional PacketLedger shared by every service of this node.
        self.ledger = node.ledger
        self.loct = LocationTable(ttl=self.config.loct_ttl)
        self.gf = GreedyForwarder(self.config, self.loct)
        forwarder_cls = (
            SfotCbfForwarder if self.config.cbf_variant == "sfot+" else CbfForwarder
        )
        self.cbf = forwarder_cls(
            sim=node.sim,
            config=self.config,
            get_position=node.position,
            deliver=self._deliver_local,
            broadcast=self._cbf_broadcast,
            rng=node.rng,
            medium_busy=node._medium_busy,
            ledger=self.ledger,
            get_addr=node._get_address,
            dcc=node.dcc,
        )
        self.unicast = UnicastService(self)
        self._seq = itertools.count(1)
        self._pending_rechecks: Set[EventHandle] = set()
        self.on_deliver: List[Callable[["GeoNode", GeoBroadcastPacket], None]] = []
        self.stats = RouterStats()

    # ------------------------------------------------------------------
    # origination
    # ------------------------------------------------------------------
    def originate(
        self,
        area: DestinationArea,
        payload: str,
        *,
        lifetime: Optional[float] = None,
        rhl: Optional[int] = None,
    ) -> PacketId:
        """Create, sign and route a new GeoBroadcast packet."""
        now = self.node.sim.now
        body = GbcBody(
            source_addr=self.node.address,
            sequence_number=next(self._seq),
            source_pv=self.node.position_vector(),
            area=area,
            payload=payload,
            lifetime=self.config.default_lifetime if lifetime is None else lifetime,
            created_at=now,
        )
        packet = GeoBroadcastPacket(
            signed=sign(body, self.node.credentials),
            rhl=self.config.default_rhl if rhl is None else rhl,
            sender_addr=self.node.address,
            sender_position=self.node.position(),
        )
        self.stats.originated += 1
        if self.ledger is not None:
            self.ledger.originated("gbc", packet.packet_id, now, self.node.address)
        self._route(packet)
        return packet.packet_id

    def _route(self, packet: GeoBroadcastPacket) -> None:
        if packet.area.contains(self.node.position()):
            self._deliver_local(packet)
            self.cbf.originate(packet)
        else:
            self._gf_route(packet)

    # ------------------------------------------------------------------
    # frame reception
    # ------------------------------------------------------------------
    def handle_frame(self, frame: Frame) -> None:
        """Entry point for every frame the radio delivers."""
        payload = frame.payload
        if frame.kind is FrameKind.BEACON:
            self._handle_beacon(payload)
        elif frame.kind is FrameKind.GEO_BROADCAST:
            if isinstance(payload, LsRequestPacket):
                self.unicast.handle_ls_request(payload)
            elif isinstance(payload, GeoBroadcastPacket):
                self._handle_gbc_broadcast(payload)
        elif frame.kind is FrameKind.GEO_UNICAST:
            if isinstance(payload, (GeoUnicastPacket, LsReplyPacket)):
                self.unicast.handle_routed(payload)
            elif isinstance(payload, GeoBroadcastPacket):
                self._handle_gbc_unicast(payload)

    def _handle_beacon(self, message: SignedMessage) -> None:
        if not isinstance(message, SignedMessage):
            return  # other beacon-kind payloads (e.g. SHB) have own handlers
        if not verify(message):
            self.stats.beacons_rejected_auth += 1
            return
        body: BeaconBody = message.body
        if not isinstance(body, BeaconBody):
            return
        if body.source_addr == self.node.address:
            return  # our own beacon echoed back (e.g. by a replayer)
        now = self.node.sim.now
        if body.pv.age(now) > self.config.beacon_freshness_window:
            self.stats.beacons_rejected_stale += 1
            return
        # NOTE: the standard performs *no* distance plausibility check here —
        # an authentic beacon relayed from far away is accepted as a
        # neighbor.  This is deliberate (vulnerability #2 of the paper).
        self.loct.update(body.source_addr, body.pv, now)
        self.stats.beacons_accepted += 1

    def receive_beacons_bulk(self, entries, now: float) -> int:
        """Batched-fleet fast path: accept a tick's worth of beacons.

        ``entries`` are ``(addr, pv)`` pairs from one fleet beacon tick, so
        they share a single timestamp; authenticity was established at
        signing time (the scheduler verifies each signed beacon once, which
        memoises the same :func:`verify` the per-frame path would hit), the
        sweep never produces self pairs, and the freshness window is
        checked once for the whole batch.  Returns how many were accepted.
        Semantics match :meth:`_handle_beacon` for honest one-hop beacons;
        replayed/forged beacons still arrive as real frames through it.
        """
        n = len(entries)
        if n == 0:
            return 0
        if entries[0][1].age(now) > self.config.beacon_freshness_window:
            self.stats.beacons_rejected_stale += n
            return 0
        self.loct.update_many(entries, now)
        self.stats.beacons_accepted += n
        return n

    def _handle_gbc_broadcast(self, packet: GeoBroadcastPacket) -> None:
        if not verify(packet.signed):
            self.stats.gbc_rejected_auth += 1
            return
        if not packet.area.contains(self.node.position()):
            self.stats.out_of_area_broadcasts += 1
            return
        self.cbf.handle_broadcast(packet)

    def _handle_gbc_unicast(self, packet: GeoBroadcastPacket) -> None:
        if not verify(packet.signed):
            self.stats.gbc_rejected_auth += 1
            return
        now = self.node.sim.now
        if packet.expired(now):
            self.stats.gf_lifetime_drops += 1
            self._ledger_drop(packet, now, reasons.LIFETIME_EXPIRED)
            return
        if packet.area.contains(self.node.position()):
            packet_id = packet.packet_id
            if self.cbf.has_processed(packet_id):
                self.stats.unicast_duplicates += 1
                return
            self._deliver_local(packet)
            forward_rhl = packet.rhl - 1
            if forward_rhl > 0:
                self.cbf.originate(
                    packet.next_hop_copy(
                        rhl=forward_rhl,
                        sender_addr=self.node.address,
                        sender_position=self.node.position(),
                    )
                )
            else:
                self.cbf.mark_done(
                    packet_id,
                    expires_at=packet.body.created_at + packet.body.lifetime,
                )
        else:
            self._gf_route(packet)

    # ------------------------------------------------------------------
    # greedy forwarding
    # ------------------------------------------------------------------
    def _gf_route(self, packet: GeoBroadcastPacket, rechecked: bool = False) -> None:
        now = self.node.sim.now
        ledger = self.ledger
        if packet.expired(now):
            self.stats.gf_lifetime_drops += 1
            # A packet that expired while parked in the no-progress recheck
            # loop died of GF starvation, not of ordinary transit lifetime.
            self._ledger_drop(
                packet,
                now,
                reasons.GF_NO_PROGRESS_EXPIRED
                if rechecked
                else reasons.LIFETIME_EXPIRED,
            )
            return
        if packet.rhl < 1:
            self.stats.gf_rhl_drops += 1
            self._ledger_drop(packet, now, reasons.RHL_EXHAUSTED)
            return
        selection = self.gf.select_next_hop(
            self.node.position(),
            packet.area,
            now,
            exclude={self.node.address, packet.sender_addr},
        )
        if selection.next_hop is not None:
            if self.node.dcc is not None and not self.node.dcc.allow(now):
                # The access layer is rate-limiting this station: park the
                # forward in the recheck loop (a DCC queue would hold the
                # frame; the recheck re-selects against a fresher LocT).
                self.stats.gf_dcc_deferred += 1
                if ledger is not None:
                    ledger.hop(
                        "gbc", packet.packet_id, now, self.node.address,
                        "dcc-defer",
                    )
                handle = self.node.sim.schedule(
                    self.config.gf_recheck_interval, self._gf_route, packet, True
                )
                self._pending_rechecks.add(handle)
                self._prune_rechecks()
                return
            out = packet.next_hop_copy(
                rhl=packet.rhl - 1,
                sender_addr=self.node.address,
                sender_position=self.node.position(),
            )
            if ledger is not None:
                ledger.hop(
                    "gbc",
                    packet.packet_id,
                    now,
                    self.node.address,
                    "gf-forward",
                    detail=f"next-hop={selection.next_hop.addr}",
                )
            self.node.send_unicast(selection.next_hop.addr, out)
            self.stats.gf_forwards += 1
        else:
            # "the forwarder either rechecks its LocT later or broadcasts the
            # packet without specifying the next hop" — we recheck.
            self.stats.gf_rechecks += 1
            if ledger is not None:
                ledger.hop(
                    "gbc", packet.packet_id, now, self.node.address, "gf-recheck"
                )
            handle = self.node.sim.schedule(
                self.config.gf_recheck_interval, self._gf_route, packet, True
            )
            self._pending_rechecks.add(handle)
            self._prune_rechecks()

    def _prune_rechecks(self) -> None:
        # A handle whose due time has passed has fired (``cancelled`` stays
        # False after firing), so prune by due time as well — otherwise the
        # set retains every recheck ever scheduled.
        if len(self._pending_rechecks) > 64:
            now = self.node.sim.now
            self._pending_rechecks = {
                h
                for h in self._pending_rechecks
                if not h.cancelled and h.time > now
            }

    # ------------------------------------------------------------------
    # delivery / CBF integration
    # ------------------------------------------------------------------
    def _deliver_local(self, packet: GeoBroadcastPacket) -> None:
        self.stats.delivered += 1
        if self.ledger is not None:
            self.ledger.delivered(
                "gbc", packet.packet_id, self.node.sim.now, self.node.address
            )
        for callback in self.on_deliver:
            callback(self.node, packet)

    def _ledger_drop(
        self, packet: GeoBroadcastPacket, now: float, reason: str
    ) -> None:
        if self.ledger is not None:
            self.ledger.dropped(
                "gbc", packet.packet_id, now, self.node.address, reason
            )

    def _cbf_broadcast(self, packet: GeoBroadcastPacket, rhl: int) -> None:
        out = packet.next_hop_copy(
            rhl=rhl,
            sender_addr=self.node.address,
            sender_position=self.node.position(),
        )
        self.node.send_broadcast(out)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Cancel timers and pending rechecks (node leaving)."""
        self.cbf.shutdown()
        self.unicast.shutdown()
        for handle in self._pending_rechecks:
            handle.cancel()
        self._pending_rechecks.clear()

    # ------------------------------------------------------------------
    # power state (fault injection)
    # ------------------------------------------------------------------
    def power_off(self) -> None:
        """The node lost power: every timer dies and the copies they were
        carrying are accounted ``node-down``.  Stats objects survive — the
        run's aggregate totals read them after the node reboots."""
        now = self.node.sim.now
        self.cbf.power_off()
        self.unicast.power_off()
        for handle in self._pending_rechecks:
            if not handle.cancelled and handle.time > now and handle.args:
                self._ledger_drop(handle.args[0], now, reasons.NODE_DOWN)
            handle.cancel()
        self._pending_rechecks.clear()

    def power_on(self) -> None:
        """Reboot: volatile state (LocT, CBF duplicate memory, GUC maps)
        is wiped; identity, credentials and counters persist."""
        now = self.node.sim.now
        self.loct.clear(now)
        self.cbf.reset_state(now)
        self.unicast.reset_state(now)
