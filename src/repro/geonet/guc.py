"""The GeoUnicast forwarding service with Location Service resolution.

Per-node state machine (owned by the router):

* ``send(dest_addr, payload)`` — route immediately if the destination's
  position is known (LocT), otherwise buffer and flood an LS request;
* LS requests are duplicate-filtered, hop-limited floods; the target
  answers with a signed LS reply routed back toward the requester;
* an LS reply (or any beacon) that reveals the target's position flushes
  the buffered packets;
* unanswered LS requests are retransmitted a bounded number of times, then
  the buffered packets are dropped (counted).

GUC relays use the same GF next-hop selection as inter-area GeoBroadcast,
so the beacon-replay interception attack applies to GUC traffic unchanged
(covered by tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.geo.areas import CircularArea
from repro.geonet.unicast import (
    GeoUnicastPacket,
    GucBody,
    LsReplyBody,
    LsReplyPacket,
    LsRequestBody,
    LsRequestPacket,
    UnicastId,
)
from repro.observability.ledger import reasons
from repro.radio.frames import FrameKind
from repro.security.signing import sign, verify
from repro.sim.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.geonet.router import GeoRouter

#: How often an unanswered LS request is retransmitted, and how many times.
LS_RETRANSMIT_INTERVAL = 1.0
LS_MAX_ATTEMPTS = 4
#: Jitter before re-flooding an LS request (the channel has no CSMA).
LS_FORWARD_JITTER = 0.005

#: Slack added before duplicate-filter / delivery-dedup entries may be
#: swept (mirrors ``CbfForwarder``'s ``_DONE_GRACE``): copies still in
#: flight arrive within milliseconds, so a generous second can never
#: un-suppress a copy that could actually recur.
_SEEN_GRACE = 1.0
#: An LS request id recurs only while its source still retransmits it
#: (same sequence number for every attempt), so an entry is dead this long
#: after its last sighting.
_LS_SEEN_TTL = LS_MAX_ATTEMPTS * LS_RETRANSMIT_INTERVAL + _SEEN_GRACE
#: How often the seen/delivered maps are opportunistically swept.
_SWEEP_INTERVAL = 5.0


@dataclass
class UnicastStats:
    """Counters for GUC/LS behaviour."""

    guc_originated: int = 0
    guc_delivered: int = 0
    guc_forwards: int = 0
    guc_rechecks: int = 0
    guc_drops: int = 0
    ls_requests_sent: int = 0
    ls_requests_forwarded: int = 0
    ls_replies_sent: int = 0
    ls_resolutions: int = 0
    ls_failures: int = 0
    rejected_auth: int = 0


@dataclass
class _PendingResolution:
    target_addr: int
    sequence_number: int
    buffered: List[GucBody] = field(default_factory=list)
    attempts: int = 0
    timer: Optional[EventHandle] = None


class UnicastService:
    """GUC + LS on top of a node's router."""

    def __init__(self, router: "GeoRouter"):
        self.router = router
        self.node = router.node
        self.config = router.config
        self._seq = itertools.count(1)
        self._pending: Dict[int, _PendingResolution] = {}
        #: LS duplicate filter: request id -> time after which the entry may
        #: be swept (the source stops retransmitting the id by then).
        self._ls_seen: Dict[UnicastId, float] = {}
        #: Delivery dedup: packet id -> sweep time keyed on the packet's own
        #: lifetime (plus grace) — bounded by the packets currently alive,
        #: exactly like ``CbfForwarder._done``.
        self._delivered: Dict[tuple, float] = {}
        self._next_sweep = _SWEEP_INTERVAL
        self._rechecks: Set[EventHandle] = set()
        self.on_deliver: List[Callable] = []
        self.stats = UnicastStats()

    # ------------------------------------------------------------------
    # bounded-state sweeping
    # ------------------------------------------------------------------
    def _sweep(self, now: float) -> None:
        """Drop seen/delivered entries whose packets cannot recur."""
        if now < self._next_sweep:
            return
        self._next_sweep = now + _SWEEP_INTERVAL
        for table in (self._ls_seen, self._delivered):
            dead = [key for key, drop_after in table.items() if now > drop_after]
            for key in dead:
                del table[key]

    # ------------------------------------------------------------------
    # origination
    # ------------------------------------------------------------------
    def send(
        self,
        dest_addr: int,
        payload: str,
        *,
        lifetime: Optional[float] = None,
        rhl: Optional[int] = None,
    ) -> UnicastId:
        """GeoUnicast ``payload`` to ``dest_addr``; resolves via LS if needed."""
        now = self.node.sim.now
        body = GucBody(
            source_addr=self.node.address,
            sequence_number=next(self._seq),
            source_pv=self.node.position_vector(),
            dest_addr=dest_addr,
            payload=payload,
            lifetime=self.config.default_lifetime if lifetime is None else lifetime,
            created_at=now,
        )
        self.stats.guc_originated += 1
        ledger = self.router.ledger
        if ledger is not None:
            ledger.originated("guc", body.packet_id, now, self.node.address)
        entry = self.router.loct.get(dest_addr, now)
        if entry is not None:
            self._route(self._packet_for(body, entry.position, rhl))
        else:
            self._buffer_and_resolve(body, rhl)
        return body.packet_id

    def _packet_for(
        self, body: GucBody, dest_position, rhl: Optional[int]
    ) -> GeoUnicastPacket:
        return GeoUnicastPacket(
            signed=sign(body, self.node.credentials),
            rhl=self.config.default_rhl if rhl is None else rhl,
            sender_addr=self.node.address,
            sender_position=self.node.position(),
            dest_position=dest_position,
        )

    # ------------------------------------------------------------------
    # location service
    # ------------------------------------------------------------------
    def _buffer_and_resolve(self, body: GucBody, rhl: Optional[int]) -> None:
        pending = self._pending.get(body.dest_addr)
        if pending is None:
            pending = _PendingResolution(
                target_addr=body.dest_addr, sequence_number=next(self._seq)
            )
            self._pending[body.dest_addr] = pending
            self._send_ls_request(pending)
        pending.buffered.append(body)

    def _send_ls_request(self, pending: _PendingResolution) -> None:
        pending.attempts += 1
        body = LsRequestBody(
            source_addr=self.node.address,
            sequence_number=pending.sequence_number,
            source_pv=self.node.position_vector(),
            target_addr=pending.target_addr,
            created_at=self.node.sim.now,
        )
        packet = LsRequestPacket(
            signed=sign(body, self.node.credentials),
            rhl=self.config.default_rhl,
            sender_addr=self.node.address,
        )
        self._ls_seen[packet.request_id] = self.node.sim.now + _LS_SEEN_TTL
        self.stats.ls_requests_sent += 1
        self.node.iface.send(FrameKind.GEO_BROADCAST, packet)
        pending.timer = self.node.sim.schedule(
            LS_RETRANSMIT_INTERVAL, self._ls_timeout, pending.target_addr
        )

    def _ls_timeout(self, target_addr: int) -> None:
        pending = self._pending.get(target_addr)
        if pending is None:
            return
        if pending.attempts >= LS_MAX_ATTEMPTS:
            del self._pending[target_addr]
            self.stats.ls_failures += 1
            self.stats.guc_drops += len(pending.buffered)
            ledger = self.router.ledger
            if ledger is not None:
                now = self.node.sim.now
                for body in pending.buffered:
                    ledger.dropped(
                        "guc",
                        body.packet_id,
                        now,
                        self.node.address,
                        reasons.LS_FAILURE,
                        detail=f"target={target_addr}",
                    )
            return
        # A beacon may have resolved the target in the meantime.
        entry = self.router.loct.get(target_addr, self.node.sim.now)
        if entry is not None:
            self._flush(target_addr, entry.position)
            return
        self._send_ls_request(pending)

    def _flush(self, target_addr: int, dest_position) -> None:
        pending = self._pending.pop(target_addr, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self.stats.ls_resolutions += 1
        now = self.node.sim.now
        for body in pending.buffered:
            if body.expired(now):
                # Resolution arrived after the buffered packet's lifetime.
                self.stats.guc_drops += 1
                ledger = self.router.ledger
                if ledger is not None:
                    ledger.dropped(
                        "guc",
                        body.packet_id,
                        now,
                        self.node.address,
                        reasons.LIFETIME_EXPIRED,
                        detail="expired-awaiting-ls",
                    )
            else:
                self._route(self._packet_for(body, dest_position, None))

    def handle_ls_request(self, packet: LsRequestPacket) -> None:
        """Process an LS request heard on the channel."""
        if not verify(packet.signed):
            self.stats.rejected_auth += 1
            return
        now = self.node.sim.now
        self._sweep(now)
        request_id = packet.request_id
        if request_id in self._ls_seen:
            # Refresh: the source retransmits the same id for up to
            # LS_MAX_ATTEMPTS intervals, so keep the filter entry alive.
            self._ls_seen[request_id] = now + _LS_SEEN_TTL
            return
        self._ls_seen[request_id] = now + _LS_SEEN_TTL
        body = packet.body
        if body.target_addr == self.node.address:
            self._send_ls_reply(body)
            return
        if packet.rhl > 1:
            forwarded = packet.next_hop_copy(
                rhl=packet.rhl - 1, sender_addr=self.node.address
            )
            jitter = self.node.rng.uniform(0, LS_FORWARD_JITTER)
            self.node.sim.schedule(
                jitter,
                self.node.iface.send,
                FrameKind.GEO_BROADCAST,
                forwarded,
            )
            self.stats.ls_requests_forwarded += 1

    def _send_ls_reply(self, request: LsRequestBody) -> None:
        body = LsReplyBody(
            target_addr=self.node.address,
            target_pv=self.node.position_vector(),
            requester_addr=request.source_addr,
            request_sequence_number=request.sequence_number,
            created_at=self.node.sim.now,
        )
        reply = LsReplyPacket(
            signed=sign(body, self.node.credentials),
            rhl=self.config.default_rhl,
            sender_addr=self.node.address,
            sender_position=self.node.position(),
            dest_position=request.source_pv.position,
        )
        self.stats.ls_replies_sent += 1
        self._route(reply)

    # ------------------------------------------------------------------
    # routed-packet handling (GUC and LS replies share mechanics)
    # ------------------------------------------------------------------
    def handle_routed(self, packet) -> None:
        """Process a GUC or LS-reply frame addressed to us at link layer."""
        if not verify(packet.signed):
            self.stats.rejected_auth += 1
            return
        if packet.routing_dest_addr == self.node.address:
            self._deliver(packet)
        else:
            self._route(packet)

    def _deliver(self, packet) -> None:
        now = self.node.sim.now
        self._sweep(now)
        if packet.packet_id in self._delivered:
            return
        body = packet.body
        self._delivered[packet.packet_id] = (
            body.created_at + body.lifetime + _SEEN_GRACE
        )
        if isinstance(packet, LsReplyPacket):
            # LS-learned positions are not one-hop neighbors: they are
            # routing hints, never GF next-hop candidates.
            self.router.loct.update(
                body.target_addr,
                body.target_pv,
                now,
                neighbor=False,
            )
            self._flush(body.target_addr, body.target_pv.position)
            return
        self.stats.guc_delivered += 1
        ledger = self.router.ledger
        if ledger is not None:
            ledger.delivered("guc", packet.packet_id, now, self.node.address)
        for callback in self.on_deliver:
            callback(self.node, packet)

    def _route(self, packet, rechecked: bool = False) -> None:
        now = self.node.sim.now
        if packet.expired(now):
            self.stats.guc_drops += 1
            self._ledger_drop(
                packet,
                now,
                reasons.GF_NO_PROGRESS_EXPIRED
                if rechecked
                else reasons.LIFETIME_EXPIRED,
            )
            return
        if packet.rhl < 1:
            self.stats.guc_drops += 1
            self._ledger_drop(packet, now, reasons.RHL_EXHAUSTED)
            return
        dest_addr = packet.routing_dest_addr
        # Refresh the routing hint if we know the destination more freshly.
        entry = self.router.loct.get(dest_addr, now)
        dest_position = (
            entry.position if entry is not None else packet.dest_position
        )
        area = CircularArea(dest_position, 1.0)
        selection = self.router.gf.select_next_hop(
            self.node.position(),
            area,
            now,
            exclude={self.node.address, packet.sender_addr},
        )
        if selection.next_hop is not None:
            out = packet.next_hop_copy(
                rhl=packet.rhl - 1,
                sender_addr=self.node.address,
                sender_position=self.node.position(),
                dest_position=dest_position,
            )
            ledger = self.router.ledger
            if ledger is not None and isinstance(packet, GeoUnicastPacket):
                ledger.hop(
                    "guc",
                    packet.packet_id,
                    now,
                    self.node.address,
                    "gf-forward",
                    detail=f"next-hop={selection.next_hop.addr}",
                )
            self.node.send_unicast(selection.next_hop.addr, out)
            self.stats.guc_forwards += 1
        else:
            self.stats.guc_rechecks += 1
            handle = self.node.sim.schedule(
                self.config.gf_recheck_interval, self._route, packet, True
            )
            self._rechecks.add(handle)
            if len(self._rechecks) > 64:
                # Fired handles never flip ``cancelled``; prune by due time
                # so the set tracks only genuinely outstanding rechecks.
                self._rechecks = {
                    h
                    for h in self._rechecks
                    if not h.cancelled and h.time > now
                }

    def _ledger_drop(self, packet, now: float, reason: str) -> None:
        """Record a GUC drop (LS replies are infrastructure — untracked)."""
        ledger = self.router.ledger
        if ledger is not None and isinstance(packet, GeoUnicastPacket):
            ledger.dropped(
                "guc", packet.packet_id, now, self.node.address, reason
            )

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Cancel LS timers and pending rechecks."""
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()
        for handle in self._rechecks:
            handle.cancel()
        self._rechecks.clear()

    def power_off(self) -> None:
        """Fault-injected outage: resolutions and parked packets die.

        Buffered GUC bodies awaiting a Location Service answer and packets
        parked in the no-progress recheck loop are accounted ``node-down``
        so the ledger's conservation invariant survives churn.
        """
        now = self.node.sim.now
        ledger = self.router.ledger
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
            self.stats.guc_drops += len(pending.buffered)
            if ledger is not None:
                for body in pending.buffered:
                    ledger.dropped(
                        "guc",
                        body.packet_id,
                        now,
                        self.node.address,
                        reasons.NODE_DOWN,
                        detail=f"target={pending.target_addr}",
                    )
        self._pending.clear()
        for handle in self._rechecks:
            if not handle.cancelled and handle.time > now and handle.args:
                self._ledger_drop(handle.args[0], now, reasons.NODE_DOWN)
            handle.cancel()
        self._rechecks.clear()

    def reset_state(self, now: float) -> None:
        """Reboot: duplicate filters and delivery dedup are volatile RAM."""
        self._ls_seen.clear()
        self._delivered.clear()
        self._next_sweep = now + _SWEEP_INTERVAL
