"""The beaconing service.

Per the ETSI standard (as the paper describes it): "a beacon is periodically
broadcast every 3 seconds with a random jitter within 0.75 seconds" and
beacons are one-hop broadcast, authenticated but **not encrypted** — which is
the first GF vulnerability (a roadside sniffer learns every advertised
position).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class BeaconService:
    """Periodically triggers a node's beacon broadcast with jitter.

    The first beacon is sent after a uniform random fraction of the period so
    that a freshly-spawned fleet does not beacon in lockstep.
    """

    def __init__(
        self,
        sim: Simulator,
        send_beacon: Callable[[], None],
        rng: random.Random,
        *,
        period: float = 3.0,
        jitter: float = 0.75,
    ):
        if period <= 0 or jitter < 0:
            raise ValueError("invalid beacon timing")
        self._rng = rng
        self._jitter = jitter
        self.beacons_sent = 0

        def _tick() -> None:
            send_beacon()
            self.beacons_sent += 1

        self._process = PeriodicProcess(
            sim,
            period,
            _tick,
            start_delay=rng.uniform(0, period),
            jitter=(lambda: self._rng.uniform(0, self._jitter)) if jitter else None,
        )

    def stop(self) -> None:
        """Stop beaconing (node leaving the simulation)."""
        self._process.stop()

    @property
    def stopped(self) -> bool:
        return self._process.stopped
