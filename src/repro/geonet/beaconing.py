"""The beaconing service.

Per the ETSI standard (as the paper describes it): "a beacon is periodically
broadcast every 3 seconds with a random jitter within 0.75 seconds" and
beacons are one-hop broadcast, authenticated but **not encrypted** — which is
the first GF vulnerability (a roadside sniffer learns every advertised
position).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class BeaconService:
    """Periodically triggers a node's beacon broadcast with jitter.

    The first beacon is sent after a uniform random fraction of the period so
    that a freshly-spawned fleet does not beacon in lockstep.
    """

    def __init__(
        self,
        sim: Simulator,
        send_beacon: Callable[[], None],
        rng: random.Random,
        *,
        period: float = 3.0,
        jitter: float = 0.75,
        extra_jitter: Optional[Callable[[], float]] = None,
    ):
        if period <= 0:
            raise ConfigError(f"beacon period must be positive, got {period!r}")
        if jitter < 0:
            raise ConfigError(f"beacon jitter must be non-negative, got {jitter!r}")
        self._rng = rng
        self._jitter = jitter
        #: Fault-injection hook adding extra seconds to each cycle's delay
        #: (congested-DCC model).  Read at draw time, so it can be installed
        #: or swapped mid-run; None adds nothing.
        self.extra_jitter = extra_jitter
        self.beacons_sent = 0
        # Bound methods, not closures: the pending tick lives in the event
        # heap, and checkpointing re-registers events by (object, method
        # name) descriptor — see repro.sim.checkpoint.
        self._send_beacon = send_beacon
        self._process = PeriodicProcess(
            sim,
            period,
            self._tick,
            start_delay=rng.uniform(0, period),
            jitter=self._draw_jitter,
        )

    def _tick(self) -> None:
        self._send_beacon()
        self.beacons_sent += 1

    def _draw_jitter(self) -> float:
        # The base draw happens exactly when (and only when) the
        # pre-fault implementation drew it, so a run without the hook
        # consumes the identical RNG sequence — and adding the hook's
        # 0.0 when it is unset leaves every delay bit-identical.
        delay = self._rng.uniform(0, self._jitter) if self._jitter > 0 else 0.0
        extra = self.extra_jitter
        if extra is not None:
            delay += extra()
        return delay

    def stop(self) -> None:
        """Stop beaconing (node leaving the simulation)."""
        self._process.stop()

    @property
    def stopped(self) -> bool:
        return self._process.stopped
