"""Reactive DCC: an access-layer gate driven by channel busy ratio.

ETSI ITS stations run Decentralized Congestion Control (TS 102 687)
between the networking and access layers: every station measures the
channel busy ratio (CBR) and throttles its own transmissions when the
channel saturates.  Amador et al. (arXiv 2403.16237) show DCC interacts
strongly with GeoNetworking forwarding — a forwarder that wins CBF
contention may be *gated* by DCC, changing who actually rebroadcasts.

This module implements the reactive flavour: the measured CBR selects one
of three states (relaxed / active / restrictive), each imposing a minimum
gap between consecutive gated transmissions of the same node.  Beacons and
CBF/GF forwards share one gate per node, exactly because DCC sits below
the networking layer — a node that just relayed a burst of forwards must
also hold its beacon.

Measurement piggybacks on the channel's carrier-sense primitive
(:meth:`~repro.radio.channel.BroadcastChannel.medium_busy`): the gate
samples it at every decision point and folds the samples into an
exponentially-weighted CBR estimate.  That keeps the gate event-free (no
per-node sampling timers) and — critically for the reproduction's
bit-identity contract — entirely RNG-free: an enabled gate draws zero
random numbers, and a disabled one (``dcc_enabled=False``, the default)
is never constructed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DccStats:
    """Counters for one node's DCC gate."""

    samples: int = 0
    busy_samples: int = 0
    tx_allowed: int = 0
    tx_throttled: int = 0
    #: Of the throttled transmissions, how many were beacon cycles.
    beacons_throttled: int = 0


class DccGate:
    """Per-node reactive DCC gate.

    ``medium_busy`` is a zero-argument carrier-sense callable (bound to
    the node's own position).  :meth:`allow` is the single decision point:
    it samples the channel, updates the CBR estimate, and admits the
    transmission only when the minimum gap of the current DCC state has
    elapsed since the last admitted one.
    """

    def __init__(self, sim, config, medium_busy):
        self._sim = sim
        self._config = config
        self._medium_busy = medium_busy
        self._cbr = 0.0
        self._last_sample_at = -float("inf")
        self._last_tx_at = -float("inf")
        self.stats = DccStats()

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    @property
    def cbr(self) -> float:
        """Current channel-busy-ratio estimate in [0, 1]."""
        return self._cbr

    def observe(self, now: float) -> None:
        """Fold one carrier-sense sample into the CBR estimate.

        At most one sample per simulation instant: several decisions in the
        same event (e.g. a forward plus a beacon) reuse the measurement.
        """
        if now <= self._last_sample_at:
            return
        self._last_sample_at = now
        busy = bool(self._medium_busy())
        self.stats.samples += 1
        if busy:
            self.stats.busy_samples += 1
        alpha = self._config.dcc_cbr_alpha
        self._cbr = (1.0 - alpha) * self._cbr + alpha * (1.0 if busy else 0.0)

    def min_gap(self) -> float:
        """Minimum inter-transmission gap for the current CBR estimate."""
        cfg = self._config
        if self._cbr <= cfg.dcc_cbr_low:
            return cfg.dcc_gap_relaxed
        if self._cbr <= cfg.dcc_cbr_high:
            return cfg.dcc_gap_active
        return cfg.dcc_gap_restrictive

    # ------------------------------------------------------------------
    # gating
    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """Admit or throttle a gated transmission at time ``now``."""
        self.observe(now)
        if now - self._last_tx_at >= self.min_gap():
            self._last_tx_at = now
            self.stats.tx_allowed += 1
            return True
        self.stats.tx_throttled += 1
        return False

    def reset_state(self) -> None:
        """Wipe volatile state (node reboot via the fault layer)."""
        self._cbr = 0.0
        self._last_sample_at = -float("inf")
        self._last_tx_at = -float("inf")
