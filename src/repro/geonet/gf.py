"""Greedy Forwarding (GF) — EN 302 636-4-1 inter-area next-hop selection.

The forwarder ranks its LocT neighbors by distance to the destination area's
centre and picks the closest one, provided it makes strictly positive
progress (it is closer to the destination than the forwarder itself).  The
standard algorithm performs **no reachability or plausibility check** on the
stored PV and uses **no acknowledgement** — both vulnerabilities the paper
exploits.

The paper's §V mitigation is implemented here as an optional forwarding-time
plausibility filter: candidates whose position is further from the forwarder
than a threshold (default: the technology's NLoS-median range) are skipped
and the next-best candidate is considered.  The filter evaluates the *same*
position the ranking acted on — the advertised PV position by default, the
extrapolated one when ``loct_extrapolation`` is enabled — so the mitigation
always judges exactly what GF is about to trust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set

from repro.geo.areas import DestinationArea
from repro.geo.position import Position
from repro.geonet.checks import position_plausible
from repro.geonet.config import GeoNetConfig
from repro.geonet.loct import LocationTable, LocationTableEntry


@dataclass
class GfSelection:
    """The outcome of a next-hop scan."""

    next_hop: Optional[LocationTableEntry]
    candidates_considered: int = 0
    rejected_by_plausibility: int = 0
    reason: str = ""


@dataclass
class GfStats:
    """Counters for GF decisions across a node's lifetime."""

    selections: int = 0
    no_progress: int = 0
    plausibility_rejections: int = 0


class GreedyForwarder:
    """Stateless next-hop selection over a location table."""

    def __init__(self, config: GeoNetConfig, loct: LocationTable):
        self.config = config
        self.loct = loct
        self.stats = GfStats()

    def select_next_hop(
        self,
        own_position: Position,
        area: DestinationArea,
        now: float,
        *,
        exclude: Optional[Set[int]] = None,
    ) -> GfSelection:
        """Pick the neighbor closest to the area centre (with progress).

        ``exclude`` removes addresses from consideration (self, and the
        packet's source, which would be backwards progress by construction).
        """
        self.stats.selections += 1
        center = area.center
        own_distance = own_position.distance_to(center)
        excluded = exclude or set()
        ranked = self._ranked_candidates(center, now, excluded)
        considered = 0
        rejected_plausibility = 0
        for candidate_distance, candidate_position, entry in ranked:
            if candidate_distance >= own_distance:
                # Candidates are sorted; once progress stops, none remain.
                break
            considered += 1
            # The check judges the position GF ranked by (extrapolated when
            # loct_extrapolation is on), never a different one.
            if self.config.plausibility_check and not position_plausible(
                own_position, candidate_position, self.config.plausibility_threshold
            ):
                rejected_plausibility += 1
                continue
            self.stats.plausibility_rejections += rejected_plausibility
            return GfSelection(
                next_hop=entry,
                candidates_considered=considered,
                rejected_by_plausibility=rejected_plausibility,
                reason="progress",
            )
        self.stats.no_progress += 1
        self.stats.plausibility_rejections += rejected_plausibility
        return GfSelection(
            next_hop=None,
            candidates_considered=considered,
            rejected_by_plausibility=rejected_plausibility,
            reason="no-progress-candidate",
        )

    def _ranked_candidates(
        self, center: Position, now: float, excluded: Set[int]
    ) -> Iterable[tuple[float, Position, LocationTableEntry]]:
        """``(distance, position, entry)`` sorted by distance to ``center``.

        The position each entry was ranked by is returned alongside it so
        the plausibility filter can evaluate the very same coordinates.
        """
        extrapolate = self.config.loct_extrapolation
        candidates = []
        for entry in self.loct.live_entries(now):
            if entry.addr in excluded:
                continue
            if not entry.is_neighbor:
                # IS_NEIGHBOUR is false for indirectly-learned positions
                # (Location Service); only one-hop neighbors are next-hop
                # candidates.  Replayed beacons count as beacons — which is
                # the vulnerability.
                continue
            position = (
                entry.pv.extrapolate(now) if extrapolate else entry.position
            )
            candidates.append((position.distance_to(center), position, entry))
        candidates.sort(key=lambda item: item[0])
        return candidates
