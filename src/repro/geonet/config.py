"""GeoNetworking protocol configuration.

Defaults follow EN 302 636-4-1 and the values the paper states: 3 s beacons
with 0.75 s jitter, 20 s location-table TTL, CBF timers of 1–100 ms, and a
default hop limit of 10.  ``dist_max`` (CBF's DIST_MAX) is the theoretical
maximum range of the access technology and is set per experiment from
Table II.

Validation raises :class:`~repro.errors.ConfigError` (a ``ValueError``)
naming the offending field, so a nonsensical value fails at construction
time instead of deep inside a run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class GeoNetConfig:
    """Tunable parameters of the GeoNetworking stack."""

    # --- beaconing -----------------------------------------------------
    beacon_period: float = 3.0
    beacon_jitter: float = 0.75
    #: Receivers reject beacons whose PV timestamp is older than this
    #: (the freshness check the paper notes is performed — and passed by
    #: immediately-relayed replays).
    beacon_freshness_window: float = 2.0

    # --- location table ------------------------------------------------
    loct_ttl: float = 20.0
    #: Dead-reckon stored PVs to the current time when GF ranks candidates
    #: (an optional LocTE PV refinement; EN 302 636-4-1 allows keeping PVs
    #: current by linear extrapolation from speed and heading).  Off by
    #: default: ranking on the *advertised* position is what the paper's GF
    #: does ("it likely picks a vehicle outside its communication range ...
    #: given its authentic PV"), and it reproduces the paper's baselines;
    #: extrapolation makes replayed-beacon poison track the traffic and
    #: overshoots the measured interception rates (see the ablation bench).
    #: The plausibility-check mitigation evaluates the same position GF
    #: ranks by — advertised by default, extrapolated when this is on — so
    #: the §V-A filter always judges what the forwarder actually acts on.
    loct_extrapolation: bool = False

    # --- greedy forwarding ----------------------------------------------
    #: How long a packet with no forward-progress neighbor waits before the
    #: LocT is re-scanned.
    gf_recheck_interval: float = 0.5

    # --- contention-based forwarding -------------------------------------
    to_min: float = 0.001  # TO_MIN, seconds
    to_max: float = 0.100  # TO_MAX, seconds
    dist_max: float = 1283.0  # DIST_MAX, metres (DSRC LoS median by default)
    #: Uniform random addition to each contention timer, modelling MAC
    #: access and processing delays.  Without it, two vehicles at (almost)
    #: equal distance from the previous sender fire in the same sub-
    #: millisecond window, their mutual duplicates suppress the entire next
    #: hop, and floods stall in a way real (CSMA) radios do not exhibit.
    cbf_timer_jitter: float = 0.002

    # --- packets ---------------------------------------------------------
    default_rhl: int = 10
    default_lifetime: float = 60.0

    # --- mitigations (paper §V) -------------------------------------------
    plausibility_check: bool = False
    plausibility_threshold: float = 486.0
    rhl_check: bool = False
    rhl_drop_threshold: int = 3

    # --- forwarder variant ------------------------------------------------
    #: ``"cbf"`` is the stock EN 302 636-4-1 contention forwarder the
    #: paper attacks; ``"sfot+"`` selects the S-FoT+ sectorial variant
    #: (Amador et al., arXiv 2403.11271): only receivers inside a sector
    #: toward the destination contend, and a buffered copy is cancelled
    #: only after ``sfot_dup_threshold`` distinct duplicates.
    cbf_variant: str = "cbf"
    #: Full opening angle (degrees) of the S-FoT+ contention sector,
    #: centred on the sender->destination-center direction.
    sfot_sector_deg: float = 120.0
    #: Number of overheard duplicates needed to cancel a buffered copy
    #: under S-FoT+ (stock CBF cancels on the first).
    sfot_dup_threshold: int = 2

    # --- DCC (reactive, TS 102 687 flavour) -------------------------------
    #: Off by default: the gate is then never constructed, and runs stay
    #: bit-identical to the pre-DCC goldens.
    dcc_enabled: bool = False
    #: EWMA weight of each carrier-sense sample in the CBR estimate.
    dcc_cbr_alpha: float = 0.5
    #: CBR thresholds separating the relaxed / active / restrictive states.
    dcc_cbr_low: float = 0.30
    dcc_cbr_high: float = 0.60
    #: Minimum gap (s) between gated transmissions in each state.  Beacons
    #: and CBF/GF forwards share one gate per node.
    dcc_gap_relaxed: float = 0.0
    dcc_gap_active: float = 0.1
    dcc_gap_restrictive: float = 0.5

    def __post_init__(self):
        if self.beacon_period <= 0:
            raise ConfigError(
                f"beacon_period must be positive, got {self.beacon_period!r}"
            )
        if self.beacon_jitter < 0:
            raise ConfigError(
                f"beacon_jitter must be non-negative, got {self.beacon_jitter!r}"
            )
        if self.beacon_freshness_window <= 0:
            raise ConfigError(
                "beacon_freshness_window must be positive, got "
                f"{self.beacon_freshness_window!r}"
            )
        if self.loct_ttl <= 0:
            raise ConfigError(f"loct_ttl must be positive, got {self.loct_ttl!r}")
        if not (0 < self.to_min < self.to_max):
            raise ConfigError(
                "to_min/to_max must satisfy 0 < to_min < to_max, got "
                f"to_min={self.to_min!r} to_max={self.to_max!r}"
            )
        if self.cbf_timer_jitter < 0:
            raise ConfigError(
                "cbf_timer_jitter must be non-negative, got "
                f"{self.cbf_timer_jitter!r}"
            )
        if self.dist_max <= 0:
            raise ConfigError(f"dist_max must be positive, got {self.dist_max!r}")
        if self.default_rhl < 1:
            raise ConfigError(f"default_rhl must be >= 1, got {self.default_rhl!r}")
        if self.default_lifetime <= 0:
            raise ConfigError(
                f"default_lifetime must be positive, got {self.default_lifetime!r}"
            )
        if self.plausibility_threshold <= 0:
            raise ConfigError(
                "plausibility_threshold must be positive, got "
                f"{self.plausibility_threshold!r}"
            )
        if self.rhl_drop_threshold < 1:
            raise ConfigError(
                "rhl_drop_threshold must be >= 1, got "
                f"{self.rhl_drop_threshold!r}"
            )
        if self.gf_recheck_interval <= 0:
            raise ConfigError(
                "gf_recheck_interval must be positive, got "
                f"{self.gf_recheck_interval!r}"
            )
        if self.cbf_variant not in ("cbf", "sfot+"):
            raise ConfigError(
                f"cbf_variant must be 'cbf' or 'sfot+', got {self.cbf_variant!r}"
            )
        if not 0 < self.sfot_sector_deg <= 360:
            raise ConfigError(
                "sfot_sector_deg must be in (0, 360], got "
                f"{self.sfot_sector_deg!r}"
            )
        if self.sfot_dup_threshold < 1:
            raise ConfigError(
                "sfot_dup_threshold must be >= 1, got "
                f"{self.sfot_dup_threshold!r}"
            )
        if not 0 < self.dcc_cbr_alpha <= 1:
            raise ConfigError(
                f"dcc_cbr_alpha must be in (0, 1], got {self.dcc_cbr_alpha!r}"
            )
        if not 0 <= self.dcc_cbr_low <= self.dcc_cbr_high <= 1:
            raise ConfigError(
                "dcc CBR thresholds must satisfy 0 <= dcc_cbr_low <= "
                f"dcc_cbr_high <= 1, got low={self.dcc_cbr_low!r} "
                f"high={self.dcc_cbr_high!r}"
            )
        if not (
            0
            <= self.dcc_gap_relaxed
            <= self.dcc_gap_active
            <= self.dcc_gap_restrictive
        ):
            raise ConfigError(
                "dcc gaps must satisfy 0 <= dcc_gap_relaxed <= dcc_gap_active"
                " <= dcc_gap_restrictive, got "
                f"relaxed={self.dcc_gap_relaxed!r} "
                f"active={self.dcc_gap_active!r} "
                f"restrictive={self.dcc_gap_restrictive!r}"
            )

    def with_mitigations(
        self,
        *,
        plausibility_check: bool | None = None,
        rhl_check: bool | None = None,
    ) -> "GeoNetConfig":
        """A copy with mitigation switches flipped."""
        updates = {}
        if plausibility_check is not None:
            updates["plausibility_check"] = plausibility_check
        if rhl_check is not None:
            updates["rhl_check"] = rhl_check
        return replace(self, **updates)
