"""The GeoNetworking location table (LocT).

Every node stores the position vectors of the neighbors it has heard
beacons from, as ``LocTE (addr, PV, TTL)`` per the paper.  Entries expire
``ttl`` seconds after their last refresh (default 20 s).

The table trusts whatever authenticated beacon it is given: EN 302 636-4-1
performs no distance-plausibility check on reception, which is the second
GF vulnerability the paper identifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.geo.position import Position, PositionVector


@dataclass
class LocationTableEntry:
    """One LocTE: address, PV, neighbor flag and expiry bookkeeping.

    ``is_neighbor`` mirrors the standard's IS_NEIGHBOUR flag: True when the
    PV came from a one-hop beacon (so GF may pick the node as a next hop),
    False when it was learned indirectly (Location Service, multi-hop
    packets).  The inter-area attack works precisely because a *replayed*
    beacon is still a beacon — the victim "labels V3 as a neighbor".
    """

    addr: int
    pv: PositionVector
    updated_at: float
    expires_at: float
    is_neighbor: bool = True

    def is_live(self, now: float) -> bool:
        """Whether the entry is still within its TTL."""
        return now <= self.expires_at

    @property
    def position(self) -> Position:
        """The advertised position (as beaconed — never extrapolated)."""
        return self.pv.position


class LocationTable:
    """addr -> LocTE with TTL expiry.

    Expired entries are already invisible to every liveness-aware query
    (:meth:`get`, :meth:`live_entries`), but they used to stay in the dict
    forever — on long runs a node's table grew with every vehicle that ever
    drove past it.  :meth:`update` therefore opportunistically purges dead
    entries once per ``purge_interval`` (default: one TTL), piggybacking on
    the beacon path so the table stays bounded by the *recent* neighbor
    population without a dedicated timer.
    """

    def __init__(self, ttl: float, *, purge_interval: Optional[float] = None):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = ttl
        #: Seconds between opportunistic purges; dead entries survive at
        #: most ``ttl + purge_interval`` after their last refresh.
        self.purge_interval = ttl if purge_interval is None else purge_interval
        self._entries: Dict[int, LocationTableEntry] = {}
        self._next_purge_at = self.purge_interval
        #: Churn counters (monotonic; never reset by :meth:`clear`).  An
        #: inter-area attacker inflates ``inserts`` — every replayed beacon
        #: teaches victims far "neighbors" they would never hear directly —
        #: so the online detection pipeline streams these as features.
        self.inserts = 0
        self.refreshes = 0
        self.purged = 0

    def update(
        self,
        addr: int,
        pv: PositionVector,
        now: float,
        *,
        neighbor: bool = True,
    ) -> LocationTableEntry:
        """Insert or refresh the entry for ``addr`` with a new PV.

        ``neighbor=False`` records indirectly-learned positions (Location
        Service); it never downgrades an entry already known as a neighbor.
        """
        self.maybe_purge(now)
        entry = self._entries.get(addr)
        if entry is None:
            self.inserts += 1
            entry = LocationTableEntry(
                addr=addr,
                pv=pv,
                updated_at=now,
                expires_at=now + self.ttl,
                is_neighbor=neighbor,
            )
            self._entries[addr] = entry
        else:
            self.refreshes += 1
            entry.pv = pv
            entry.updated_at = now
            entry.expires_at = now + self.ttl
            entry.is_neighbor = entry.is_neighbor or neighbor
        return entry

    def update_many(
        self,
        pairs,
        now: float,
        *,
        neighbor: bool = True,
    ) -> None:
        """Bulk :meth:`update`: insert/refresh ``(addr, pv)`` pairs.

        Semantically equivalent to calling :meth:`update` once per pair —
        including the opportunistic purge, which runs (at most once) before
        the first insert exactly as it would on the single-entry path.  The
        batched beacon delivery path hands a whole tick's worth of accepted
        beacons to one call, so the purge check and attribute lookups are
        paid once per batch instead of once per beacon.
        """
        self.maybe_purge(now)
        entries = self._entries
        ttl = self.ttl
        expires_at = now + ttl
        for addr, pv in pairs:
            entry = entries.get(addr)
            if entry is None:
                self.inserts += 1
                entries[addr] = LocationTableEntry(
                    addr=addr,
                    pv=pv,
                    updated_at=now,
                    expires_at=expires_at,
                    is_neighbor=neighbor,
                )
            else:
                self.refreshes += 1
                entry.pv = pv
                entry.updated_at = now
                entry.expires_at = expires_at
                entry.is_neighbor = entry.is_neighbor or neighbor

    def get(self, addr: int, now: float) -> Optional[LocationTableEntry]:
        """The live entry for ``addr``, or None."""
        entry = self._entries.get(addr)
        if entry is None or not entry.is_live(now):
            return None
        return entry

    def remove(self, addr: int) -> None:
        """Drop the entry for ``addr`` if present."""
        self._entries.pop(addr, None)

    def clear(self, now: Optional[float] = None) -> None:
        """Wipe every entry (node reboot); resets the purge clock."""
        self._entries.clear()
        if now is not None:
            self._next_purge_at = now + self.purge_interval

    def live_entries(self, now: float) -> Iterator[LocationTableEntry]:
        """Iterate non-expired entries."""
        for entry in self._entries.values():
            if entry.is_live(now):
                yield entry

    def purge(self, now: float) -> int:
        """Physically remove expired entries; returns how many were dropped."""
        dead = [addr for addr, e in self._entries.items() if not e.is_live(now)]
        for addr in dead:
            del self._entries[addr]
        self.purged += len(dead)
        return len(dead)

    def maybe_purge(self, now: float) -> int:
        """Purge if ``purge_interval`` has elapsed since the last purge."""
        if now < self._next_purge_at:
            return 0
        self._next_purge_at = now + self.purge_interval
        return self.purge(now)

    def contains(self, addr: int, now: float) -> bool:
        """Whether a *live* entry exists for ``addr`` (liveness-aware)."""
        entry = self._entries.get(addr)
        return entry is not None and entry.is_live(now)

    def __len__(self) -> int:
        """Physical entry count, expired included (storage footprint —
        use :meth:`live_entries` to count usable neighbors)."""
        return len(self._entries)

    def __contains__(self, addr: int) -> bool:
        """Physical presence, expired included.  Time-free by necessity —
        use :meth:`contains` with ``now`` for a liveness check."""
        return addr in self._entries
