"""Wire format: byte encodings of GeoNetworking messages.

A simplified but structurally faithful encoding of the secured GN packets
(EN 302 636-4-1 headers inside an IEEE 1609.2-style security envelope).
Two uses:

* round-trip serialization so the packet formats are honest data structures
  (tested field-for-field);
* on-air byte accounting for the §V overhead analysis — the paper rejects
  beacon encryption partly on overhead grounds, and with real frame sizes
  that argument can be quantified (see
  :mod:`repro.experiments.overhead`).

Layout (big-endian):

* **Basic header** (4 B): version, next-header, RHL, reserved.
* **Long position vector** (28 B): GN address (8 B), timestamp (8 B),
  x, y (4 B each, centimetres), speed (2 B, cm/s), heading (2 B, centideg).
* **Security envelope**: certificate digest (8 B) + ECDSA-size signature
  (64 B) around the signed payload.

The signature bytes are carried opaque (our crypto is simulated); the
*sizes* match the real system, which is what the overhead model needs.
"""

from __future__ import annotations

import math
import struct
from typing import Tuple

from repro.geo.areas import CircularArea, DestinationArea, RectangularArea
from repro.geo.position import Position, PositionVector

BASIC_HEADER = struct.Struct("!BBBB")
LONG_PV = struct.Struct("!QQiihh")
AREA_HEADER = struct.Struct("!Biiiii")
GBC_HEADER = struct.Struct("!QIdd")  # source, seq, lifetime, created_at
SECURITY_TRAILER_SIZE = 8 + 64  # certificate digest + ECDSA signature
BEACON_TYPE, GBC_TYPE = 1, 4

_AREA_CIRCLE, _AREA_RECT = 1, 2


class WireError(ValueError):
    """Raised on malformed byte strings."""


# ---------------------------------------------------------------------------
# position vectors
# ---------------------------------------------------------------------------
def encode_pv(addr: int, pv: PositionVector) -> bytes:
    """Encode a long position vector (address + PV)."""
    return LONG_PV.pack(
        addr,
        int(pv.timestamp * 1000),  # ms
        int(round(pv.position.x * 100)),  # cm
        int(round(pv.position.y * 100)),
        min(int(round(pv.speed * 100)), 0x7FFF),  # cm/s
        int(round(math.degrees(pv.heading) * 100)) % 36000,
    )


def decode_pv(data: bytes) -> Tuple[int, PositionVector]:
    """Decode a long position vector; returns (address, PV)."""
    if len(data) < LONG_PV.size:
        raise WireError("truncated position vector")
    addr, ts_ms, x_cm, y_cm, speed_cms, heading_cd = LONG_PV.unpack_from(data)
    return addr, PositionVector(
        position=Position(x_cm / 100.0, y_cm / 100.0),
        speed=speed_cms / 100.0,
        heading=math.radians(heading_cd / 100.0),
        timestamp=ts_ms / 1000.0,
    )


# ---------------------------------------------------------------------------
# destination areas
# ---------------------------------------------------------------------------
def encode_area(area: DestinationArea) -> bytes:
    """Encode a circular or rectangular destination area."""
    if isinstance(area, CircularArea):
        return AREA_HEADER.pack(
            _AREA_CIRCLE,
            int(round(area.center_point.x * 100)),
            int(round(area.center_point.y * 100)),
            int(round(area.radius * 100)),
            0,
            0,
        )
    if isinstance(area, RectangularArea):
        return AREA_HEADER.pack(
            _AREA_RECT,
            int(round(area.x_min * 100)),
            int(round(area.x_max * 100)),
            int(round(area.y_min * 100)),
            int(round(area.y_max * 100)),
            0,
        )
    raise WireError(f"unsupported area type {type(area).__name__}")


def decode_area(data: bytes) -> DestinationArea:
    """Decode a destination area."""
    if len(data) < AREA_HEADER.size:
        raise WireError("truncated area")
    kind, a, b, c, d, _pad = AREA_HEADER.unpack_from(data)
    if kind == _AREA_CIRCLE:
        return CircularArea(Position(a / 100.0, b / 100.0), c / 100.0)
    if kind == _AREA_RECT:
        return RectangularArea(a / 100.0, b / 100.0, c / 100.0, d / 100.0)
    raise WireError(f"unknown area kind {kind}")


# ---------------------------------------------------------------------------
# whole messages
# ---------------------------------------------------------------------------
def encode_beacon(addr: int, pv: PositionVector) -> bytes:
    """Serialize a beacon (basic header + long PV + security trailer)."""
    header = BASIC_HEADER.pack(1, BEACON_TYPE, 1, 0)
    body = encode_pv(addr, pv)
    return header + body + b"\x00" * SECURITY_TRAILER_SIZE


def decode_beacon(data: bytes) -> Tuple[int, PositionVector]:
    """Parse a serialized beacon; returns (address, PV)."""
    if len(data) < BASIC_HEADER.size + LONG_PV.size + SECURITY_TRAILER_SIZE:
        raise WireError("truncated beacon")
    version, next_header, _rhl, _res = BASIC_HEADER.unpack_from(data)
    if version != 1 or next_header != BEACON_TYPE:
        raise WireError("not a beacon")
    return decode_pv(data[BASIC_HEADER.size :])


def encode_gbc(
    *,
    source_addr: int,
    sequence_number: int,
    source_pv: PositionVector,
    area: DestinationArea,
    payload: str,
    lifetime: float,
    created_at: float,
    rhl: int,
) -> bytes:
    """Serialize a GeoBroadcast packet."""
    header = BASIC_HEADER.pack(1, GBC_TYPE, rhl & 0xFF, 0)
    gbc = GBC_HEADER.pack(source_addr, sequence_number, lifetime, created_at)
    pv = encode_pv(source_addr, source_pv)
    area_bytes = encode_area(area)
    payload_bytes = payload.encode("utf-8")
    length = struct.pack("!H", len(payload_bytes))
    return (
        header
        + gbc
        + pv
        + area_bytes
        + length
        + payload_bytes
        + b"\x00" * SECURITY_TRAILER_SIZE
    )


def decode_gbc(data: bytes) -> dict:
    """Parse a serialized GeoBroadcast packet into its fields."""
    offset = 0
    if len(data) < BASIC_HEADER.size:
        raise WireError("truncated basic header")
    version, next_header, rhl, _res = BASIC_HEADER.unpack_from(data, offset)
    if version != 1 or next_header != GBC_TYPE:
        raise WireError("not a GeoBroadcast packet")
    offset += BASIC_HEADER.size
    source_addr, seq, lifetime, created_at = GBC_HEADER.unpack_from(data, offset)
    offset += GBC_HEADER.size
    _addr, source_pv = decode_pv(data[offset:])
    offset += LONG_PV.size
    area = decode_area(data[offset:])
    offset += AREA_HEADER.size
    (payload_len,) = struct.unpack_from("!H", data, offset)
    offset += 2
    payload = data[offset : offset + payload_len].decode("utf-8")
    offset += payload_len
    if len(data) < offset + SECURITY_TRAILER_SIZE:
        raise WireError("truncated security trailer")
    return {
        "source_addr": source_addr,
        "sequence_number": seq,
        "source_pv": source_pv,
        "area": area,
        "payload": payload,
        "lifetime": lifetime,
        "created_at": created_at,
        "rhl": rhl,
    }


# ---------------------------------------------------------------------------
# size accounting
# ---------------------------------------------------------------------------
def beacon_size() -> int:
    """On-air bytes of one signed beacon."""
    return BASIC_HEADER.size + LONG_PV.size + SECURITY_TRAILER_SIZE


def gbc_size(payload: str) -> int:
    """On-air bytes of one signed GeoBroadcast packet."""
    return (
        BASIC_HEADER.size
        + GBC_HEADER.size
        + LONG_PV.size
        + AREA_HEADER.size
        + 2
        + len(payload.encode("utf-8"))
        + SECURITY_TRAILER_SIZE
    )


#: Extra bytes when a message is encrypted instead of merely signed
#: (IEEE 1609.2 encrypted-data envelope: recipient info + AES-CCM nonce/tag).
ENCRYPTION_OVERHEAD = 40


# ---------------------------------------------------------------------------
# GeoUnicast / Location Service / SHB encodings
# ---------------------------------------------------------------------------
GUC_HEADER = struct.Struct("!QIQdd")  # source, seq, dest addr, lifetime, created
LS_REQUEST_HEADER = struct.Struct("!QIQd")  # source, seq, target, created_at
SHB_HEADER = struct.Struct("!QI")  # source, seq
GUC_TYPE, LS_REQUEST_TYPE, SHB_TYPE = 2, 6, 5


def encode_guc(
    *,
    source_addr: int,
    sequence_number: int,
    source_pv: PositionVector,
    dest_addr: int,
    dest_position: Position,
    payload: str,
    lifetime: float,
    created_at: float,
    rhl: int,
) -> bytes:
    """Serialize a GeoUnicast packet (dest position is the routing hint)."""
    header = BASIC_HEADER.pack(1, GUC_TYPE, rhl & 0xFF, 0)
    guc = GUC_HEADER.pack(source_addr, sequence_number, dest_addr, lifetime, created_at)
    pv = encode_pv(source_addr, source_pv)
    hint = struct.pack(
        "!ii",
        int(round(dest_position.x * 100)),
        int(round(dest_position.y * 100)),
    )
    payload_bytes = payload.encode("utf-8")
    length = struct.pack("!H", len(payload_bytes))
    return (
        header + guc + pv + hint + length + payload_bytes
        + b"\x00" * SECURITY_TRAILER_SIZE
    )


def decode_guc(data: bytes) -> dict:
    """Parse a serialized GeoUnicast packet."""
    offset = 0
    version, next_header, rhl, _res = BASIC_HEADER.unpack_from(data, offset)
    if version != 1 or next_header != GUC_TYPE:
        raise WireError("not a GeoUnicast packet")
    offset += BASIC_HEADER.size
    source_addr, seq, dest_addr, lifetime, created_at = GUC_HEADER.unpack_from(
        data, offset
    )
    offset += GUC_HEADER.size
    _addr, source_pv = decode_pv(data[offset:])
    offset += LONG_PV.size
    hint_x, hint_y = struct.unpack_from("!ii", data, offset)
    offset += 8
    (payload_len,) = struct.unpack_from("!H", data, offset)
    offset += 2
    payload = data[offset : offset + payload_len].decode("utf-8")
    offset += payload_len
    if len(data) < offset + SECURITY_TRAILER_SIZE:
        raise WireError("truncated security trailer")
    return {
        "source_addr": source_addr,
        "sequence_number": seq,
        "dest_addr": dest_addr,
        "dest_position": Position(hint_x / 100.0, hint_y / 100.0),
        "source_pv": source_pv,
        "payload": payload,
        "lifetime": lifetime,
        "created_at": created_at,
        "rhl": rhl,
    }


def encode_ls_request(
    *,
    source_addr: int,
    sequence_number: int,
    source_pv: PositionVector,
    target_addr: int,
    created_at: float,
    rhl: int,
) -> bytes:
    """Serialize a Location Service request."""
    header = BASIC_HEADER.pack(1, LS_REQUEST_TYPE, rhl & 0xFF, 0)
    body = LS_REQUEST_HEADER.pack(source_addr, sequence_number, target_addr, created_at)
    pv = encode_pv(source_addr, source_pv)
    return header + body + pv + b"\x00" * SECURITY_TRAILER_SIZE


def decode_ls_request(data: bytes) -> dict:
    """Parse a serialized Location Service request."""
    minimum = (
        BASIC_HEADER.size
        + LS_REQUEST_HEADER.size
        + LONG_PV.size
        + SECURITY_TRAILER_SIZE
    )
    if len(data) < minimum:
        raise WireError("truncated LS request")
    offset = 0
    version, next_header, rhl, _res = BASIC_HEADER.unpack_from(data, offset)
    if version != 1 or next_header != LS_REQUEST_TYPE:
        raise WireError("not an LS request")
    offset += BASIC_HEADER.size
    source_addr, seq, target_addr, created_at = LS_REQUEST_HEADER.unpack_from(
        data, offset
    )
    offset += LS_REQUEST_HEADER.size
    _addr, source_pv = decode_pv(data[offset:])
    offset += LONG_PV.size
    if len(data) < offset + SECURITY_TRAILER_SIZE:
        raise WireError("truncated security trailer")
    return {
        "source_addr": source_addr,
        "sequence_number": seq,
        "target_addr": target_addr,
        "created_at": created_at,
        "source_pv": source_pv,
        "rhl": rhl,
    }


def encode_shb(
    *, source_addr: int, sequence_number: int, pv: PositionVector, payload: str
) -> bytes:
    """Serialize a Single-Hop Broadcast (CAM/BSM)."""
    header = BASIC_HEADER.pack(1, SHB_TYPE, 1, 0)
    body = SHB_HEADER.pack(source_addr, sequence_number)
    pv_bytes = encode_pv(source_addr, pv)
    payload_bytes = payload.encode("utf-8")
    length = struct.pack("!H", len(payload_bytes))
    return (
        header + body + pv_bytes + length + payload_bytes
        + b"\x00" * SECURITY_TRAILER_SIZE
    )


def decode_shb(data: bytes) -> dict:
    """Parse a serialized Single-Hop Broadcast."""
    offset = 0
    version, next_header, _rhl, _res = BASIC_HEADER.unpack_from(data, offset)
    if version != 1 or next_header != SHB_TYPE:
        raise WireError("not an SHB")
    offset += BASIC_HEADER.size
    source_addr, seq = SHB_HEADER.unpack_from(data, offset)
    offset += SHB_HEADER.size
    _addr, pv = decode_pv(data[offset:])
    offset += LONG_PV.size
    (payload_len,) = struct.unpack_from("!H", data, offset)
    offset += 2
    payload = data[offset : offset + payload_len].decode("utf-8")
    offset += payload_len
    if len(data) < offset + SECURITY_TRAILER_SIZE:
        raise WireError("truncated security trailer")
    return {
        "source_addr": source_addr,
        "sequence_number": seq,
        "pv": pv,
        "payload": payload,
    }


def shb_size(payload: str) -> int:
    """On-air bytes of one signed SHB."""
    return (
        BASIC_HEADER.size
        + SHB_HEADER.size
        + LONG_PV.size
        + 2
        + len(payload.encode("utf-8"))
        + SECURITY_TRAILER_SIZE
    )
