"""An ETSI GeoNetworking (EN 302 636-4-1) stack.

Implements the parts of the standard the paper analyses:

* position-vector **beaconing** (3 s period, 0.75 s jitter) feeding a
  **location table** (LocT) with per-entry TTL;
* **Greedy Forwarding** (GF) for inter-area transport — pick the LocT
  neighbor closest to the destination area, forward link-layer unicast, no
  acknowledgement;
* **Contention-Based Forwarding** (CBF) for intra-area flooding — buffer,
  contend with a distance-dependent timer, suppress on duplicate;
* packet formats whose signed/unsigned field split mirrors the secured
  standard (the source-signed body vs the per-hop mutable RHL and sender
  position).

Mitigation hooks (the paper's §V defences) are part of the stack config:
:attr:`GeoNetConfig.plausibility_check` and :attr:`GeoNetConfig.rhl_check`.
"""

from repro.geonet.config import GeoNetConfig
from repro.geonet.packets import BeaconBody, GbcBody, GeoBroadcastPacket, PacketId
from repro.geonet.loct import LocationTable, LocationTableEntry
from repro.geonet.beaconing import BeaconService
from repro.geonet.gf import GreedyForwarder
from repro.geonet.cbf import CbfForwarder, contention_timeout
from repro.geonet.guc import UnicastService, UnicastStats
from repro.geonet.unicast import (
    GeoUnicastPacket,
    GucBody,
    LsReplyBody,
    LsReplyPacket,
    LsRequestBody,
    LsRequestPacket,
)
from repro.geonet.shb import ShbBody, ShbService, ShbStats
from repro.geonet.router import GeoRouter, RouterStats
from repro.geonet.node import GeoNode, StaticMobility, VehicleMobility

__all__ = [
    "BeaconBody",
    "BeaconService",
    "CbfForwarder",
    "GbcBody",
    "GeoBroadcastPacket",
    "GeoNetConfig",
    "GeoNode",
    "GeoRouter",
    "GeoUnicastPacket",
    "GreedyForwarder",
    "GucBody",
    "LocationTable",
    "LocationTableEntry",
    "LsReplyBody",
    "LsReplyPacket",
    "LsRequestBody",
    "LsRequestPacket",
    "PacketId",
    "RouterStats",
    "ShbBody",
    "ShbService",
    "ShbStats",
    "StaticMobility",
    "UnicastService",
    "UnicastStats",
    "VehicleMobility",
    "contention_timeout",
]
