"""GeoNodes: the integration of mobility, radio, security and routing.

A :class:`GeoNode` is a vehicle or a piece of roadside infrastructure that
participates in GeoNetworking: it beacons its position vector, maintains a
location table, and forwards GeoBroadcast packets via GF/CBF.  Nodes hold
CA-issued credentials; every message they emit is signed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.geo.areas import DestinationArea
from repro.geo.position import Position, PositionVector
from repro.geonet.beaconing import BeaconService
from repro.geonet.config import GeoNetConfig
from repro.geonet.packets import BeaconBody, GeoBroadcastPacket, PacketId
from repro.geonet.router import GeoRouter
from repro.geonet.unicast import GeoUnicastPacket
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.frames import Frame, FrameKind
from repro.security.certificates import Credentials
from repro.security.signing import sign
from repro.sim.engine import Simulator
from repro.traffic.vehicle import Vehicle


class VehicleMobility:
    """Mobility source backed by a simulated vehicle."""

    def __init__(self, vehicle: Vehicle):
        self.vehicle = vehicle

    def position(self) -> Position:
        return self.vehicle.position

    def position_vector(self, now: float) -> PositionVector:
        return self.vehicle.position_vector(now)


class StaticMobility:
    """Mobility source for roadside units and fixed destinations."""

    def __init__(self, position: Position):
        self._position = position

    def position(self) -> Position:
        return self._position

    def position_vector(self, now: float) -> PositionVector:
        return PositionVector(
            position=self._position, speed=0.0, heading=0.0, timestamp=now
        )


def ledger_kind(payload) -> Optional[str]:
    """The :class:`~repro.observability.PacketLedger` namespace of a frame
    payload: ``"gbc"`` / ``"guc"`` for application packets, None for
    infrastructure traffic (beacons, SHB, Location Service floods)."""
    if isinstance(payload, GeoBroadcastPacket):
        return "gbc"
    if isinstance(payload, GeoUnicastPacket):
        return "guc"
    return None


class GeoNode:
    """A GeoNetworking participant."""

    def __init__(
        self,
        *,
        sim: Simulator,
        channel: BroadcastChannel,
        config: GeoNetConfig,
        credentials: Credentials,
        mobility,
        tx_range: float,
        rng: Optional[random.Random] = None,
        beaconing: bool = True,
        name: str = "",
        pseudonym_pool=None,
        pseudonym_period: Optional[float] = None,
        ledger=None,
    ):
        self.sim = sim
        self.channel = channel
        self.config = config
        self.credentials = credentials
        self.mobility = mobility
        self.name = name
        self._shut_down = False
        #: Optional :class:`~repro.observability.PacketLedger`; must be set
        #: before the router is built so every service can capture it.
        self.ledger = ledger
        self.iface = RadioInterface(get_position=mobility.position, tx_range=tx_range)
        channel.register(self.iface)
        #: Per-node randomness (beacon jitter, LS flood jitter).
        self.rng = rng if rng is not None else random.Random(self.iface.address)
        self.router = GeoRouter(self)
        self.iface.attach(self._on_frame)
        self.beacon_service: Optional[BeaconService] = None
        if beaconing:
            if rng is None:
                raise ValueError("beaconing requires an rng for jitter")
            self.beacon_service = BeaconService(
                sim,
                self.send_beacon,
                rng,
                period=config.beacon_period,
                jitter=config.beacon_jitter,
            )
        # --- pseudonym rotation (privacy, paper §II) ----------------------
        # "A personal vehicle is allowed to use a pseudonym to hide its true
        # identity."  Rotation swaps the link-layer address; neighbors'
        # stale LocT entries for the old address linger until TTL and any
        # in-flight unicast toward it is lost — the real-world session-
        # continuity cost of pseudonym change.
        self._pseudonym_pool = pseudonym_pool
        self._rotation_process = None
        self.pseudonyms_used = 1
        if pseudonym_period is not None:
            if pseudonym_pool is None:
                raise ValueError("pseudonym rotation requires a pool")
            if pseudonym_period <= 0:
                raise ValueError("pseudonym_period must be positive")
            from repro.sim.process import PeriodicProcess

            def _rotate_tick() -> None:
                self.rotate_pseudonym()

            self._rotation_process = PeriodicProcess(
                sim,
                pseudonym_period,
                _rotate_tick,
                start_delay=pseudonym_period,
            )

    # ------------------------------------------------------------------
    # identity / state
    # ------------------------------------------------------------------
    @property
    def address(self) -> int:
        """The node's GeoNetworking (= link-layer) address."""
        return self.iface.address

    @property
    def is_shut_down(self) -> bool:
        return self._shut_down

    def position(self) -> Position:
        """The node's current position."""
        return self.mobility.position()

    def position_vector(self) -> PositionVector:
        """The PV the node would advertise right now."""
        return self.mobility.position_vector(self.sim.now)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def send_beacon(self) -> None:
        """Sign and broadcast a beacon with the current PV."""
        if self._shut_down:
            return
        body = BeaconBody(source_addr=self.address, pv=self.position_vector())
        self.iface.send(FrameKind.BEACON, sign(body, self.credentials))

    def send_unicast(self, dest_addr: int, packet: GeoBroadcastPacket) -> None:
        """Link-layer unicast of a GF-forwarded packet.

        No acknowledgement exists: if ``dest_addr`` is out of range the
        packet is silently lost (GF vulnerability #3).
        """
        if self._shut_down:
            self._ledger_swallowed(packet)
            return
        self.iface.send(FrameKind.GEO_UNICAST, packet, dest_addr=dest_addr)

    def send_broadcast(self, packet: GeoBroadcastPacket) -> None:
        """Link-layer broadcast of a CBF packet."""
        if self._shut_down:
            self._ledger_swallowed(packet)
            return
        self.iface.send(FrameKind.GEO_BROADCAST, packet)

    def _ledger_swallowed(self, packet) -> None:
        """Account a copy a shut-down node could no longer transmit."""
        if self.ledger is None:
            return
        kind = ledger_kind(packet)
        if kind is not None:
            self.ledger.hop(
                kind,
                packet.packet_id,
                self.sim.now,
                self.address,
                "swallowed",
                detail="node-shut-down",
            )

    def originate(
        self,
        area: DestinationArea,
        payload: str,
        *,
        lifetime: Optional[float] = None,
        rhl: Optional[int] = None,
    ) -> PacketId:
        """Source a new GeoBroadcast packet toward ``area``."""
        return self.router.originate(area, payload, lifetime=lifetime, rhl=rhl)

    def send_geo_unicast(
        self,
        dest_addr: int,
        payload: str,
        *,
        lifetime: Optional[float] = None,
        rhl: Optional[int] = None,
    ) -> PacketId:
        """GeoUnicast ``payload`` to another node's GN address.

        Resolves the destination's position through the Location Service if
        it is not in the location table.
        """
        return self.router.unicast.send(
            dest_addr, payload, lifetime=lifetime, rhl=rhl
        )

    # ------------------------------------------------------------------
    # pseudonym rotation
    # ------------------------------------------------------------------
    def rotate_pseudonym(self) -> int:
        """Swap to a fresh pseudonymous link-layer address.

        Returns the new address.  The old interface leaves the channel, so
        unicasts addressed to the previous pseudonym are silently lost.
        """
        if self._pseudonym_pool is None:
            raise RuntimeError("node was created without a pseudonym pool")
        if self._shut_down:
            return self.address
        old_iface = self.iface
        new_iface = RadioInterface(
            get_position=self.mobility.position,
            tx_range=old_iface.tx_range,
            address=self._pseudonym_pool.draw(),
        )
        self.channel.unregister(old_iface)
        self.channel.register(new_iface)
        new_iface.attach(self._on_frame)
        self.iface = new_iface
        self.pseudonyms_used += 1
        # Announce the new identity immediately so neighbors relearn us.
        self.send_beacon()
        return self.address

    # ------------------------------------------------------------------
    # reception / teardown
    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        if self._shut_down:
            return
        self.router.handle_frame(frame)

    def shutdown(self) -> None:
        """Leave the network: stop beaconing, cancel timers, detach radio."""
        if self._shut_down:
            return
        self._shut_down = True
        if self.beacon_service is not None:
            self.beacon_service.stop()
        if self._rotation_process is not None:
            self._rotation_process.stop()
        self.router.shutdown()
        self.channel.unregister(self.iface)
