"""GeoNodes: the integration of mobility, radio, security and routing.

A :class:`GeoNode` is a vehicle or a piece of roadside infrastructure that
participates in GeoNetworking: it beacons its position vector, maintains a
location table, and forwards GeoBroadcast packets via GF/CBF.  Nodes hold
CA-issued credentials; every message they emit is signed.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.geo.areas import DestinationArea
from repro.geo.position import Position, PositionVector
from repro.geonet.beaconing import BeaconService
from repro.geonet.config import GeoNetConfig
from repro.geonet.dcc import DccGate
from repro.geonet.packets import BeaconBody, GeoBroadcastPacket, PacketId
from repro.geonet.router import GeoRouter
from repro.geonet.unicast import GeoUnicastPacket
from repro.observability.ledger import reasons
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.frames import Frame, FrameKind
from repro.security.certificates import Credentials
from repro.security.signing import sign
from repro.sim.engine import Simulator
from repro.traffic.vehicle import Vehicle


class VehicleMobility:
    """Mobility source backed by a simulated vehicle."""

    def __init__(self, vehicle: Vehicle):
        self.vehicle = vehicle

    def position(self) -> Position:
        return self.vehicle.position

    def position_vector(self, now: float) -> PositionVector:
        return self.vehicle.position_vector(now)


class StaticMobility:
    """Mobility source for roadside units and fixed destinations."""

    def __init__(self, position: Position):
        self._position = position

    def position(self) -> Position:
        return self._position

    def position_vector(self, now: float) -> PositionVector:
        return PositionVector(
            position=self._position, speed=0.0, heading=0.0, timestamp=now
        )


def ledger_kind(payload) -> Optional[str]:
    """The :class:`~repro.observability.PacketLedger` namespace of a frame
    payload: ``"gbc"`` / ``"guc"`` for application packets, None for
    infrastructure traffic (beacons, SHB, Location Service floods)."""
    if isinstance(payload, GeoBroadcastPacket):
        return "gbc"
    if isinstance(payload, GeoUnicastPacket):
        return "guc"
    return None


class GeoNode:
    """A GeoNetworking participant."""

    def __init__(
        self,
        *,
        sim: Simulator,
        channel: BroadcastChannel,
        config: GeoNetConfig,
        credentials: Credentials,
        mobility,
        tx_range: float,
        rng: Optional[random.Random] = None,
        beaconing: bool = True,
        name: str = "",
        pseudonym_pool=None,
        pseudonym_period: Optional[float] = None,
        ledger=None,
    ):
        self.sim = sim
        self.channel = channel
        self.config = config
        self.credentials = credentials
        self.mobility = mobility
        self.name = name
        self._shut_down = False
        #: Powered off by a fault-injected outage (distinct from the
        #: permanent ``_shut_down``): the radio leaves the channel and every
        #: protocol timer dies, but the node can :meth:`come_up` later.
        self._down = False
        #: Fault-injection hooks (installed by
        #: :class:`~repro.faults.injector.FaultInjector`; None costs
        #: nothing).  ``pv_fault`` perturbs the PV advertised in beacons —
        #: never the true mobility; ``beacon_extra_jitter`` delays beacon
        #: cycles further.
        self.pv_fault: Optional[Callable[[PositionVector], PositionVector]] = None
        self.beacon_extra_jitter: Optional[Callable[[], float]] = None
        #: Optional :class:`~repro.observability.PacketLedger`; must be set
        #: before the router is built so every service can capture it.
        self.ledger = ledger
        #: Observers of batched beacon deliveries (``tap(entries, now)``).
        #: The fleet path hands beacons to the router without a Frame ever
        #: crossing the radio handler, so passive monitors (misbehavior
        #: detectors) register here to stay blind-spot-free.  Empty by
        #: default: the hot loop pays one truthiness check per batch.
        self.bulk_beacon_taps: list = []
        self.iface = RadioInterface(get_position=mobility.position, tx_range=tx_range)
        channel.register(self.iface)
        #: Per-node randomness (beacon jitter, LS flood jitter).
        self.rng = rng if rng is not None else random.Random(self.iface.address)
        #: Reactive DCC gate shared by beacons and CBF/GF forwards; None
        #: when DCC is off (the default) so the stack stays bit-identical
        #: to the pre-DCC goldens.  Built before the router so the
        #: forwarding services can capture it.
        self.dcc: Optional[DccGate] = None
        if config.dcc_enabled:
            self.dcc = DccGate(sim, config, self._medium_busy)
        self.router = GeoRouter(self)
        self.iface.attach(self._on_frame)
        self.beacon_service: Optional[BeaconService] = None
        self._beaconing = beaconing
        if beaconing:
            if rng is None:
                raise ValueError("beaconing requires an rng for jitter")
            self.beacon_service = self._make_beacon_service()
        # --- pseudonym rotation (privacy, paper §II) ----------------------
        # "A personal vehicle is allowed to use a pseudonym to hide its true
        # identity."  Rotation swaps the link-layer address; neighbors'
        # stale LocT entries for the old address linger until TTL and any
        # in-flight unicast toward it is lost — the real-world session-
        # continuity cost of pseudonym change.
        self._pseudonym_pool = pseudonym_pool
        self._rotation_process = None
        self.pseudonyms_used = 1
        if pseudonym_period is not None:
            if pseudonym_pool is None:
                raise ValueError("pseudonym rotation requires a pool")
            if pseudonym_period <= 0:
                raise ValueError("pseudonym_period must be positive")
            from repro.sim.process import PeriodicProcess

            self._rotation_process = PeriodicProcess(
                sim,
                pseudonym_period,
                self._rotate_tick,
                start_delay=pseudonym_period,
            )

    def _make_beacon_service(self) -> BeaconService:
        return BeaconService(
            self.sim,
            self.send_beacon,
            self.rng,
            period=self.config.beacon_period,
            jitter=self.config.beacon_jitter,
            extra_jitter=self._draw_beacon_extra_jitter,
        )

    def _draw_beacon_extra_jitter(self) -> float:
        """Extra per-cycle beacon delay from the fault layer (0.0 unset)."""
        hook = self.beacon_extra_jitter
        return 0.0 if hook is None else hook()

    def _medium_busy(self) -> bool:
        """Whether the medium is busy at the node's current position (the
        DCC/CBF carrier-sense probe, as a checkpointable descriptor)."""
        return self.channel.medium_busy(self.mobility.position())

    def _get_address(self) -> int:
        """The current link-layer address (survives pseudonym rotation)."""
        return self.iface.address

    def _rotate_tick(self) -> None:
        self.rotate_pseudonym()

    # ------------------------------------------------------------------
    # identity / state
    # ------------------------------------------------------------------
    @property
    def address(self) -> int:
        """The node's GeoNetworking (= link-layer) address."""
        return self.iface.address

    @property
    def is_shut_down(self) -> bool:
        return self._shut_down

    @property
    def is_down(self) -> bool:
        """Powered off by a fault-injected outage (may reboot later)."""
        return self._down

    def position(self) -> Position:
        """The node's current position."""
        return self.mobility.position()

    def position_vector(self) -> PositionVector:
        """The PV the node would advertise right now."""
        return self.mobility.position_vector(self.sim.now)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def send_beacon(self) -> None:
        """Sign and broadcast a beacon with the current PV.

        The advertised PV passes through the fault layer's ``pv_fault``
        transform (GPS error/drift) when one is installed; the node's true
        mobility is never perturbed.
        """
        if self._shut_down or self._down:
            return
        if self.dcc is not None and not self.dcc.allow(self.sim.now):
            self.dcc.stats.beacons_throttled += 1
            return
        pv = self.position_vector()
        if self.pv_fault is not None:
            pv = self.pv_fault(pv)
        body = BeaconBody(source_addr=self.address, pv=pv)
        self.iface.send(FrameKind.BEACON, sign(body, self.credentials))

    def send_unicast(self, dest_addr: int, packet: GeoBroadcastPacket) -> None:
        """Link-layer unicast of a GF-forwarded packet.

        No acknowledgement exists: if ``dest_addr`` is out of range the
        packet is silently lost (GF vulnerability #3).
        """
        if self._shut_down or self._down:
            self._ledger_swallowed(packet)
            return
        self.iface.send(FrameKind.GEO_UNICAST, packet, dest_addr=dest_addr)

    def send_broadcast(self, packet: GeoBroadcastPacket) -> None:
        """Link-layer broadcast of a CBF packet."""
        if self._shut_down or self._down:
            self._ledger_swallowed(packet)
            return
        self.iface.send(FrameKind.GEO_BROADCAST, packet)

    def _ledger_swallowed(self, packet) -> None:
        """Account a copy a shut-down / powered-off node couldn't transmit."""
        if self.ledger is None:
            return
        kind = ledger_kind(packet)
        if kind is not None:
            self.ledger.hop(
                kind,
                packet.packet_id,
                self.sim.now,
                self.address,
                "swallowed",
                detail="node-down" if self._down else "node-shut-down",
            )

    def originate(
        self,
        area: DestinationArea,
        payload: str,
        *,
        lifetime: Optional[float] = None,
        rhl: Optional[int] = None,
    ) -> PacketId:
        """Source a new GeoBroadcast packet toward ``area``."""
        return self.router.originate(area, payload, lifetime=lifetime, rhl=rhl)

    def send_geo_unicast(
        self,
        dest_addr: int,
        payload: str,
        *,
        lifetime: Optional[float] = None,
        rhl: Optional[int] = None,
    ) -> PacketId:
        """GeoUnicast ``payload`` to another node's GN address.

        Resolves the destination's position through the Location Service if
        it is not in the location table.
        """
        return self.router.unicast.send(
            dest_addr, payload, lifetime=lifetime, rhl=rhl
        )

    # ------------------------------------------------------------------
    # pseudonym rotation
    # ------------------------------------------------------------------
    def rotate_pseudonym(self) -> int:
        """Swap to a fresh pseudonymous link-layer address.

        Returns the new address.  The old interface leaves the channel, so
        unicasts addressed to the previous pseudonym are silently lost.
        """
        if self._pseudonym_pool is None:
            raise RuntimeError("node was created without a pseudonym pool")
        if self._shut_down or self._down:
            return self.address
        old_iface = self.iface
        new_iface = RadioInterface(
            get_position=self.mobility.position,
            tx_range=old_iface.tx_range,
            address=self._pseudonym_pool.draw(),
        )
        self.channel.unregister(old_iface)
        self.channel.register(new_iface)
        new_iface.attach(self._on_frame)
        self.iface = new_iface
        self.pseudonyms_used += 1
        # Announce the new identity immediately so neighbors relearn us.
        self.send_beacon()
        return self.address

    # ------------------------------------------------------------------
    # power state (fault injection)
    # ------------------------------------------------------------------
    def go_down(self) -> None:
        """Power off mid-run (fault-injected outage).

        The radio leaves the channel, beaconing stops, and every pending
        protocol timer dies — buffered copies are accounted ``node-down``
        in the ledger.  Stats counters survive (they feed the run's
        aggregate totals).  :meth:`come_up` reverses this.
        """
        if self._shut_down or self._down:
            return
        self._down = True
        if self.beacon_service is not None:
            self.beacon_service.stop()
            self.beacon_service = None
        self.router.power_off()
        self.channel.unregister(self.iface)

    def come_up(self) -> None:
        """Reboot after :meth:`go_down`.

        The radio rejoins the channel and beaconing restarts, but volatile
        router state — LocT, CBF duplicate memory, GUC resolution/dedup
        maps — is wiped, exactly what a real OBU loses with its RAM.
        """
        if self._shut_down or not self._down:
            return
        self._down = False
        self.router.power_on()
        if self.dcc is not None:
            self.dcc.reset_state()
        self.channel.register(self.iface)
        if self._beaconing:
            self.beacon_service = self._make_beacon_service()

    # ------------------------------------------------------------------
    # reception / teardown
    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        if self._shut_down:
            return
        if self._down:
            # In-flight deliveries scheduled before the outage land on a
            # dead radio.  A unicast addressed to this node dies here for
            # good; broadcast copies are redundant and not terminal.
            if frame.dest_addr == self.address and self.ledger is not None:
                kind = ledger_kind(frame.payload)
                if kind is not None:
                    self.ledger.dropped(
                        kind,
                        frame.payload.packet_id,
                        self.sim.now,
                        self.address,
                        reasons.NODE_DOWN,
                        detail="delivered-to-powered-off-radio",
                    )
            return
        self.router.handle_frame(frame)

    def shutdown(self) -> None:
        """Leave the network: stop beaconing, cancel timers, detach radio."""
        if self._shut_down:
            return
        self._shut_down = True
        if self.beacon_service is not None:
            self.beacon_service.stop()
        if self._rotation_process is not None:
            self._rotation_process.stop()
        self.router.shutdown()
        self.channel.unregister(self.iface)
