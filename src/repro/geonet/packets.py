"""GeoNetworking packet formats.

The split between the *signed body* and the *per-hop mutable header* is the
load-bearing design decision.  In secured GeoNetworking the source signs the
payload, its position vector and the addressing information end-to-end, but
fields that legitimate forwarders must rewrite on every hop — the Remaining
Hop Limit and the forwarder (sender) position — cannot be covered by the
source's signature.  The paper's third CBF vulnerability is precisely
"**RHL is not integrity protected**"; here that is a structural property:
:class:`GeoBroadcastPacket` carries the immutable
:class:`~repro.security.signing.SignedMessage` plus the mutable hop fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geo.areas import DestinationArea
from repro.geo.position import Position, PositionVector
from repro.security.signing import SignedMessage

#: (source GN address, source sequence number) — GeoNetworking's duplicate
#: detection key.
PacketId = Tuple[int, int]


@dataclass(frozen=True)
class BeaconBody:
    """The signed content of a beacon: source address and position vector."""

    source_addr: int
    pv: PositionVector


@dataclass(frozen=True)
class GbcBody:
    """The source-signed part of a GeoBroadcast packet."""

    source_addr: int
    sequence_number: int
    source_pv: PositionVector
    area: DestinationArea
    payload: str
    lifetime: float
    created_at: float

    def __post_init__(self):
        if self.lifetime <= 0:
            raise ValueError("lifetime must be positive")

    @property
    def packet_id(self) -> PacketId:
        return (self.source_addr, self.sequence_number)

    def expired(self, now: float) -> bool:
        """Whether the packet's lifetime has elapsed."""
        return now > self.created_at + self.lifetime


@dataclass(frozen=True)
class GeoBroadcastPacket:
    """A GeoBroadcast packet as it travels: signed body + per-hop fields.

    Instances are immutable; forwarding produces a copy via
    :meth:`next_hop_copy` with the same signed body, a decremented RHL and
    the forwarder's identity — exactly what a legitimate forwarder does, and
    exactly what an attacker can also do, since none of the per-hop fields
    is covered by the signature.
    """

    signed: SignedMessage  # body is a GbcBody
    rhl: int
    sender_addr: int
    sender_position: Position

    def __post_init__(self):
        if self.rhl < 0:
            raise ValueError("rhl must be non-negative")

    @property
    def body(self) -> GbcBody:
        return self.signed.body

    @property
    def packet_id(self) -> PacketId:
        return self.body.packet_id

    @property
    def area(self) -> DestinationArea:
        return self.body.area

    def expired(self, now: float) -> bool:
        return self.body.expired(now)

    def next_hop_copy(
        self, *, rhl: int, sender_addr: int, sender_position: Position
    ) -> "GeoBroadcastPacket":
        """The packet as re-emitted by a (legitimate or not) forwarder."""
        return GeoBroadcastPacket(
            signed=self.signed,
            rhl=rhl,
            sender_addr=sender_addr,
            sender_position=sender_position,
        )
