"""Standard-compatible plausibility checks (the paper's §V mitigations).

Both checks are pure predicates so they can be unit- and property-tested in
isolation; the GF and CBF state machines consult them when the corresponding
:class:`~repro.geonet.config.GeoNetConfig` switch is enabled.
"""

from __future__ import annotations

from repro.geo.position import Position


def position_plausible(
    own_position: Position, advertised_position: Position, threshold: float
) -> bool:
    """GF forwarding-time plausibility check.

    A candidate next hop is plausible iff the distance between the forwarder
    and the position advertised in the candidate's beacon is within
    ``threshold`` (the paper uses the technology's NLoS-median range).  A
    beacon relayed from an out-of-coverage vehicle advertises a position
    farther than any direct neighbor could be, so it fails this check.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    return own_position.distance_to(advertised_position) <= threshold


def duplicate_rhl_plausible(
    first_rhl: int, duplicate_rhl: int, threshold: int
) -> bool:
    """CBF RHL-drop check.

    A genuine peer re-broadcast differs from the first-received copy by about
    one hop; the blockage attacker must rewrite RHL down to 1, producing a
    steep drop.  A duplicate is plausible iff the drop is at most
    ``threshold`` (the paper uses 3).
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    return first_rhl - duplicate_rhl <= threshold
