"""Pseudonymous link-layer addresses.

ETSI allows personal vehicles to use pseudonyms to hide their identity.  The
same mechanism lets the attacker transmit with throwaway addresses — privacy
protection is one of the levers of both attacks ("use a pseudonym ... to
conceal its identity while sending the same or modified packet").
"""

from __future__ import annotations

import random
from typing import Set

#: Pseudonymous addresses live above the statically-allocated range.
PSEUDONYM_FLOOR = 1 << 32


class PseudonymPool:
    """Draws unique pseudonymous link-layer addresses."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._used: Set[int] = set()

    def draw(self) -> int:
        """Return a fresh pseudonymous address."""
        while True:
            address = self._rng.randrange(PSEUDONYM_FLOOR, PSEUDONYM_FLOOR << 16)
            if address not in self._used:
                self._used.add(address)
                return address

    @property
    def issued(self) -> int:
        """How many pseudonyms have been drawn."""
        return len(self._used)

    @staticmethod
    def is_pseudonym(address: int) -> bool:
        """Whether an address is from the pseudonymous range."""
        return address >= PSEUDONYM_FLOOR
