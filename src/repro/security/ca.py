"""The certificate authority.

Legitimate vehicles and roadside units enroll once and receive
:class:`~repro.security.certificates.Credentials`.  The paper's attacker is
an *outsider*: it never enrolls, so it cannot produce signatures that verify
(tested), and must resort to replaying legitimately-signed frames.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict

from repro.security.certificates import Certificate, Credentials
from repro.security.signing import register_keypair


class CertificateAuthority:
    """Issues certificates and registers keypairs with the crypto substrate."""

    def __init__(self, name: str = "USDOT-CA", secret: str = "ca-root-secret"):
        self.name = name
        self._secret = secret
        self._serial = itertools.count(1)
        self._issued: Dict[str, Certificate] = {}

    def _ca_signature(self, subject_id: str, public_token: str) -> str:
        digest = hashlib.sha256()
        digest.update(self._secret.encode("utf-8"))
        digest.update(subject_id.encode("utf-8"))
        digest.update(public_token.encode("utf-8"))
        return digest.hexdigest()

    def enroll(self, subject_id: str) -> Credentials:
        """Issue credentials for ``subject_id``.

        Idempotent per subject: re-enrolling returns fresh credentials with a
        new keypair (models certificate renewal).
        """
        serial = next(self._serial)
        seed = f"{self.name}:{subject_id}:{serial}"
        public_token = hashlib.sha256(f"pub:{seed}".encode("utf-8")).hexdigest()
        private_token = hashlib.sha256(f"priv:{seed}".encode("utf-8")).hexdigest()
        certificate = Certificate(
            subject_id=subject_id,
            public_token=public_token,
            ca_name=self.name,
            ca_signature=self._ca_signature(subject_id, public_token),
        )
        register_keypair(public_token, private_token)
        self._issued[subject_id] = certificate
        return Credentials(certificate=certificate, private_token=private_token)

    def verify_certificate(self, certificate: Certificate) -> bool:
        """Check that a certificate was issued by this CA."""
        if certificate.ca_name != self.name:
            return False
        expected = self._ca_signature(
            certificate.subject_id, certificate.public_token
        )
        return certificate.ca_signature == expected

    @property
    def issued_count(self) -> int:
        """Number of subjects currently holding certificates."""
        return len(self._issued)
