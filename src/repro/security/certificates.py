"""Certificates and node credentials."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Certificate:
    """A CA-issued certificate binding a subject to a public token.

    ``ca_signature`` is produced by the issuing CA over
    ``(subject_id, public_token)`` and can be checked by anyone who trusts
    the CA.
    """

    subject_id: str
    public_token: str
    ca_name: str
    ca_signature: str


@dataclass(frozen=True)
class Credentials:
    """A node's certificate plus its private token.

    The private token never travels on the channel; it stands in for the
    private key of the real system.
    """

    certificate: Certificate
    private_token: str
