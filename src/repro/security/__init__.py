"""Simulated ETSI TS 102 731 / IEEE 1609.2 security services.

Models exactly the security boundary the paper's threat model depends on:

* a certificate authority enrolls legitimate nodes;
* every beacon / GeoBroadcast *payload* is signed and verified — a message
  with a forged or altered signed body is rejected;
* a **replayed** message still carries a valid signature and passes
  verification (the inter-area attack's lever);
* per-hop mutable header fields (RHL, per-hop sender position) are *outside*
  the signature (the intra-area attack's lever);
* pseudonymous link-layer addresses are allowed for privacy, which is what
  lets the attacker transmit without revealing an identity.

The cryptography is simulated (keyed hashes with a private-key registry that
stands in for the asymmetric math); no attack in this reproduction ever
breaks it, mirroring the paper's outsider attacker.
"""

from repro.security.ca import CertificateAuthority
from repro.security.certificates import Certificate, Credentials
from repro.security.signing import (
    SignedMessage,
    SigningError,
    canonical_bytes,
    sign,
    verify,
)
from repro.security.pseudonym import PseudonymPool

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "Credentials",
    "PseudonymPool",
    "SignedMessage",
    "SigningError",
    "canonical_bytes",
    "sign",
    "verify",
]
