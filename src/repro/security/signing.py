"""Message signing and verification.

A :class:`SignedMessage` wraps an immutable body with the signer's
certificate and a signature.  The signature is a keyed hash over a canonical
byte encoding of the body; the "asymmetric math" is simulated by a
module-private registry mapping public tokens to private tokens, which the
verifier consults.  The registry plays the role of the mathematics of ECDSA:
it is not an object an attacker entity in the simulation has access to.

Two properties matter for the paper and are enforced (and unit-tested):

* altering any signed field, or signing with an unenrolled certificate,
  makes :func:`verify` return False;
* re-transmitting an existing :class:`SignedMessage` verbatim verifies fine
  regardless of who transmits it — authentication does not prove the
  link-layer sender is the signer.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.security.certificates import Certificate, Credentials


class SigningError(RuntimeError):
    """Raised when signing is attempted without usable credentials."""


#: public_token -> private_token, maintained by the CA at enrollment.
_KEY_REGISTRY: Dict[str, str] = {}


def register_keypair(public_token: str, private_token: str) -> None:
    """Record a keypair (called by the CA; not part of the attacker API)."""
    _KEY_REGISTRY[public_token] = private_token


def clear_key_registry() -> None:
    """Forget all keypairs (test isolation helper)."""
    _KEY_REGISTRY.clear()


def key_registry_state() -> Dict[str, str]:
    """A copy of the CA keypair registry (captured by checkpoints).

    A restored world re-verifies messages signed before the checkpoint, so
    a fresh process must recover the registry alongside the world graph —
    without it every pre-checkpoint signature reads as unenrolled."""
    return dict(_KEY_REGISTRY)


def set_key_registry_state(state: Dict[str, str]) -> None:
    """Replace the CA keypair registry (restored by checkpoints)."""
    _KEY_REGISTRY.clear()
    _KEY_REGISTRY.update(state)


def canonical_bytes(body: Any) -> bytes:
    """A canonical byte encoding of a message body.

    Bodies are frozen dataclasses composed of primitives and other frozen
    dataclasses, so a structural recursive encoding is deterministic.
    """
    return _encode(body).encode("utf-8")


def _encode(value: Any) -> str:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={_encode(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (str, int, bool, bytes)) or value is None:
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(_encode(v) for v in value) + "]"
    if isinstance(value, dict):
        items = sorted(value.items())
        return "{" + ",".join(f"{_encode(k)}:{_encode(v)}" for k, v in items) + "}"
    # Enums and anything else with a stable repr.
    return repr(value)


def _signature_over(body: Any, private_token: str) -> str:
    digest = hashlib.sha256()
    digest.update(private_token.encode("utf-8"))
    digest.update(canonical_bytes(body))
    return digest.hexdigest()


@dataclass(frozen=True, eq=False)
class SignedMessage:
    """An immutable signed body.

    Verification results are memoized per object: a message is checked once
    no matter how many receivers hear it (or how many times an attacker
    replays the same capture), which keeps large simulations fast without
    changing semantics.
    """

    body: Any
    certificate: Certificate
    signature: str
    _verified: Optional[bool] = field(default=None, compare=False, repr=False)

    def cached_verdict(self) -> Optional[bool]:
        """The memoized verification verdict, if any."""
        return self._verified

    def _remember(self, verdict: bool) -> None:
        object.__setattr__(self, "_verified", verdict)


def sign(body: Any, credentials: Credentials) -> SignedMessage:
    """Sign ``body`` with a node's credentials."""
    if credentials is None:
        raise SigningError("cannot sign without credentials")
    return SignedMessage(
        body=body,
        certificate=credentials.certificate,
        signature=_signature_over(body, credentials.private_token),
    )


def verify(message: SignedMessage) -> bool:
    """Check a message's signature against its certificate.

    Returns False for forged bodies, forged signatures, or certificates
    whose keypair was never enrolled with the CA.
    """
    cached = message.cached_verdict()
    if cached is not None:
        return cached
    private_token = _KEY_REGISTRY.get(message.certificate.public_token)
    if private_token is None:
        verdict = False
    else:
        verdict = _signature_over(message.body, private_token) == message.signature
    message._remember(verdict)
    return verdict
