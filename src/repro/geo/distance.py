"""Distance helpers shared by the forwarding algorithms."""

from __future__ import annotations

from repro.geo.areas import DestinationArea
from repro.geo.position import Position


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two positions, in metres."""
    return a.distance_to(b)


def distance_to_area(position: Position, area: DestinationArea) -> float:
    """Distance from ``position`` to the *centre* of ``area``.

    EN 302 636-4-1's GF forwarder compares distances to the area centre when
    ranking candidate next hops; this is deliberately the centre distance,
    not the boundary distance, so progress is still measurable inside large
    areas.
    """
    return position.distance_to(area.center)


def progress_toward(
    current: Position, candidate: Position, area: DestinationArea
) -> float:
    """Forward progress (metres) the candidate makes toward the area centre.

    Positive values mean the candidate is closer to the destination than the
    current forwarder; GF only forwards on strictly positive progress.
    """
    return distance_to_area(current, area) - distance_to_area(candidate, area)
