"""Destination areas for GeoBroadcast addressing.

EN 302 931 defines circular, rectangular and elliptical target areas; the
paper uses a circular "range radius r" for inter-area delivery and the whole
road segment (a rectangle) for intra-area flooding.  All areas expose
containment, a centre (GF routes toward the centre) and a boundary distance.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.geo.position import Position


class DestinationArea(ABC):
    """A geographic target area for GeoBroadcast packets."""

    @property
    @abstractmethod
    def center(self) -> Position:
        """The point GF forwards toward."""

    @abstractmethod
    def contains(self, position: Position) -> bool:
        """Whether ``position`` lies inside (or on the boundary of) the area."""

    @abstractmethod
    def distance_from(self, position: Position) -> float:
        """Distance from ``position`` to the area (0 when inside)."""


@dataclass(frozen=True)
class CircularArea(DestinationArea):
    """A disc of radius ``radius`` centred on ``center_point``."""

    center_point: Position
    radius: float

    def __post_init__(self):
        if self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")

    @property
    def center(self) -> Position:
        return self.center_point

    def contains(self, position: Position) -> bool:
        return position.distance_to(self.center_point) <= self.radius

    def distance_from(self, position: Position) -> float:
        return max(0.0, position.distance_to(self.center_point) - self.radius)


@dataclass(frozen=True)
class RectangularArea(DestinationArea):
    """An axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def __post_init__(self):
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(
                f"degenerate rectangle: x=[{self.x_min}, {self.x_max}] "
                f"y=[{self.y_min}, {self.y_max}]"
            )

    @property
    def center(self) -> Position:
        return Position((self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2)

    def contains(self, position: Position) -> bool:
        return (
            self.x_min <= position.x <= self.x_max
            and self.y_min <= position.y <= self.y_max
        )

    def distance_from(self, position: Position) -> float:
        dx = max(self.x_min - position.x, 0.0, position.x - self.x_max)
        dy = max(self.y_min - position.y, 0.0, position.y - self.y_max)
        return math.hypot(dx, dy)


class RoadSegmentArea(RectangularArea):
    """The whole road segment as a destination area (intra-area flooding).

    A thin convenience subclass: the paper's intra-area experiments set the
    destination area to the full 4 000 m segment, all lanes.
    """

    def __init__(self, length: float, total_width: float, y_offset: float = 0.0):
        if length <= 0 or total_width <= 0:
            raise ValueError("road segment area needs positive length and width")
        super().__init__(
            x_min=0.0, x_max=length, y_min=y_offset, y_max=y_offset + total_width
        )
