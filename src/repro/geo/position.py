"""Positions and ETSI-style position vectors.

A :class:`Position` is a point in the local Cartesian plane (metres).  A
:class:`PositionVector` (PV) is what GeoNetworking beacons carry: position,
speed, heading and a generation timestamp.  PVs are immutable — a location
table stores the PV it received, so an attacker replaying a beacon replays an
*authentic* PV, which is exactly the property the inter-area attack abuses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Position:
    """A point in the local Cartesian plane, in metres."""

    x: float
    y: float = 0.0

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float = 0.0) -> "Position":
        """Return a new position offset by ``(dx, dy)``."""
        return Position(self.x + dx, self.y + dy)

    def __iter__(self):
        yield self.x
        yield self.y


@dataclass(frozen=True, slots=True)
class PositionVector:
    """An ETSI GeoNetworking position vector (PV).

    Attributes:
        position: geographic position at ``timestamp``.
        speed: ground speed in m/s (non-negative).
        heading: direction of travel in radians, measured from +x.
        timestamp: simulation time at which the PV was generated.
    """

    position: Position
    speed: float
    heading: float
    timestamp: float

    def __post_init__(self):
        if self.speed < 0:
            raise ValueError(f"speed must be non-negative, got {self.speed}")

    @property
    def velocity(self) -> tuple[float, float]:
        """The (vx, vy) velocity implied by speed and heading."""
        return (
            self.speed * math.cos(self.heading),
            self.speed * math.sin(self.heading),
        )

    def extrapolate(self, at_time: float) -> Position:
        """Dead-reckon the position at ``at_time`` assuming constant velocity.

        Used by plausibility heuristics; GeoNetworking itself never
        extrapolates stored PVs, which is part of why stale entries hurt.
        """
        dt = at_time - self.timestamp
        vx, vy = self.velocity
        return Position(self.position.x + vx * dt, self.position.y + vy * dt)

    def age(self, now: float) -> float:
        """Seconds elapsed since the PV was generated."""
        return now - self.timestamp
