"""Geographic primitives: positions, position vectors and destination areas.

ETSI GeoNetworking addresses packets to geographic *areas*.  We work in a
local Cartesian plane (metres), which is the natural frame for the paper's
4 km road segment; the geometry of circular / rectangular / elliptical areas
matches EN 302 931 up to that projection.
"""

from repro.geo.position import Position, PositionVector
from repro.geo.areas import (
    CircularArea,
    DestinationArea,
    RectangularArea,
    RoadSegmentArea,
)
from repro.geo.distance import distance, distance_to_area, progress_toward

__all__ = [
    "CircularArea",
    "DestinationArea",
    "Position",
    "PositionVector",
    "RectangularArea",
    "RoadSegmentArea",
    "distance",
    "distance_to_area",
    "progress_toward",
]
