"""repro — a full-stack reproduction of
"Breaking Geographic Routing Among Connected Vehicles" (DSN 2023).

The package layers, bottom-up:

* :mod:`repro.sim` — discrete-event engine and deterministic random streams.
* :mod:`repro.geo` — positions, position vectors, destination areas.
* :mod:`repro.radio` — DSRC / C-V2X unit-disk broadcast channel (Table II).
* :mod:`repro.traffic` — IDM road-traffic microsimulation (Table I).
* :mod:`repro.security` — simulated ETSI/IEEE 1609.2 credentials & signing.
* :mod:`repro.geonet` — the GeoNetworking stack: beacons, LocT, GF, CBF.
* :mod:`repro.core` — the paper's contribution: the two attacks, the two
  mitigations, and the vulnerable-packet geometry.
* :mod:`repro.experiments` — world builder, A/B runner, metrics, and one
  driver per paper table/figure.

Quickstart::

    from repro.experiments import ExperimentConfig, run_ab

    config = ExperimentConfig.inter_area_default(duration=60.0)
    result = run_ab(config, runs=3)
    print(result.summary())
"""

from repro.geo import CircularArea, Position, PositionVector, RectangularArea
from repro.geonet import GeoNetConfig, GeoNode
from repro.radio import CV2X, DSRC, RangeClass
from repro.core import (
    InterAreaInterceptor,
    IntraAreaBlocker,
    VulnerabilityModel,
    enable_plausibility_check,
    enable_rhl_check,
)

__version__ = "1.0.0"

__all__ = [
    "CV2X",
    "CircularArea",
    "DSRC",
    "GeoNetConfig",
    "GeoNode",
    "InterAreaInterceptor",
    "IntraAreaBlocker",
    "Position",
    "PositionVector",
    "RangeClass",
    "RectangularArea",
    "VulnerabilityModel",
    "enable_plausibility_check",
    "enable_rhl_check",
    "__version__",
]
