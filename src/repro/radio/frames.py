"""Access-layer frames.

A :class:`Frame` is what travels on the :class:`~repro.radio.channel.
BroadcastChannel`: a payload (a GeoNetworking packet) stamped with the sender
address, transmit position, power (range) and time.  Frames are the unit an
attacker can sniff and replay.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.geo.position import Position

_frame_counter = itertools.count()


def reset_frame_ids() -> None:
    """Restart frame-id allocation at 0 (fresh-process state)."""
    global _frame_counter
    _frame_counter = itertools.count()


def frame_id_state():
    """The live frame-id counter (captured by checkpoints)."""
    return _frame_counter


def set_frame_id_state(counter) -> None:
    """Replace the frame-id counter (restored by checkpoints)."""
    global _frame_counter
    _frame_counter = counter


class FrameKind(enum.Enum):
    """The GeoNetworking message type carried by a frame."""

    BEACON = "beacon"
    GEO_BROADCAST = "gbc"
    GEO_UNICAST = "guc"


@dataclass(frozen=True)
class Frame:
    """A single over-the-air transmission.

    ``dest_addr is None`` means link-layer broadcast; otherwise the frame is
    unicast and only the addressee (plus promiscuous sniffers) process it.
    """

    kind: FrameKind
    sender_addr: int
    payload: Any
    tx_position: Position
    tx_range: float
    tx_time: float
    dest_addr: Optional[int] = None
    frame_id: int = field(default_factory=lambda: next(_frame_counter))

    @property
    def is_broadcast(self) -> bool:
        """Whether the frame is link-layer broadcast."""
        return self.dest_addr is None
