"""The unit-disk broadcast channel.

Delivery rule: a receiver hears a frame iff

    dist(sender, receiver) <= link_range

where ``link_range`` is the sender's transmit range for that frame, unless
the *receiver* declares a ``link_range`` override — then the override
applies.  The override models the attacker's asymmetric channel: a roadside
sniffer on a mast has line-of-sight where vehicles are obstructed, so every
link touching it — sniffing *and* injection — has the attack range, not the
vehicle-to-vehicle range ("the attacker-to-vehicle communication range can
easily be larger than the vehicle-to-vehicle one", §III-B).  A worst-NLoS
attacker is conversely limited to its short range in both directions.

Vehicle-to-vehicle links have no override and reduce to the classic unit
disk at the technology's NLoS-median range.

Unicast frames are delivered to the addressee only (if in range), but
promiscuous interfaces overhear them — radio is a broadcast medium.

Receiver lookup is served by a :class:`~repro.radio.spatial.SpatialGrid`
keyed on the interfaces' cached positions, so a transmit only examines the
~k interfaces near the sender instead of scanning all N registered ones.
The grid is maintained incrementally — interfaces are inserted/removed on
register/unregister and *moved* (usually within their current cell) when
:meth:`BroadcastChannel.invalidate_positions` marks the cache stale.
Deliveries happen in interface *registration order* regardless of how the
grid buckets candidates, which keeps RNG draw order — and therefore whole
fixed-seed runs — identical to the plain linear-scan implementation
(available as ``use_spatial_index=False`` for A/B benchmarking).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.geo.position import Position
from repro.radio.frames import Frame, FrameKind
from repro.radio.spatial import SpatialGrid
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

_address_counter = itertools.count(1)


def reset_addresses() -> None:
    """Restart link-layer address allocation at 1 (fresh-process state)."""
    global _address_counter
    _address_counter = itertools.count(1)


def address_state():
    """The live address counter (captured by checkpoints)."""
    return _address_counter


def set_address_state(counter) -> None:
    """Replace the address counter (restored by checkpoints)."""
    global _address_counter
    _address_counter = counter

#: Fallback grid cell size when no registered interface implies one.
_DEFAULT_CELL_SIZE = 500.0


def allocate_address() -> int:
    """Allocate a unique link-layer address."""
    return next(_address_counter)


class RadioInterface:
    """A node's attachment point to the channel."""

    def __init__(
        self,
        get_position: Callable[[], Position],
        tx_range: float,
        *,
        link_range: Optional[float] = None,
        address: Optional[int] = None,
        promiscuous: bool = False,
    ):
        if tx_range < 0:
            raise ValueError(f"tx_range must be non-negative, got {tx_range}")
        if link_range is not None and link_range <= 0:
            raise ValueError(f"link_range must be positive, got {link_range}")
        self.address = allocate_address() if address is None else address
        self.get_position = get_position
        self.tx_range = float(tx_range)
        #: When set, every link toward this interface uses this range instead
        #: of the sender's transmit range (asymmetric-channel override).
        self.link_range = None if link_range is None else float(link_range)
        self.promiscuous = promiscuous
        self.handler: Optional[Callable[[Frame], None]] = None
        self.channel: Optional["BroadcastChannel"] = None
        #: Channel-assigned registration sequence; fixes delivery order.
        self._reg_order = -1
        #: ``(reg_order, self)`` — the object stored in the spatial grid.
        #: Keeping the sequence number inside the grid item lets the channel
        #: sort raw query results into delivery order without building a
        #: second candidate list per transmit.
        self._grid_item: Optional[tuple] = None

    def attach(self, handler: Callable[[Frame], None]) -> None:
        """Register the receive callback for this interface."""
        self.handler = handler

    def send(
        self,
        kind: FrameKind,
        payload,
        *,
        dest_addr: Optional[int] = None,
        tx_range: Optional[float] = None,
    ) -> Frame:
        """Transmit a frame on the attached channel."""
        if self.channel is None:
            raise RuntimeError("interface is not registered on a channel")
        return self.channel.transmit(
            self, kind, payload, dest_addr=dest_addr, tx_range=tx_range
        )

    def deliver(self, frame: Frame) -> None:
        """Hand a received frame to the attached handler (if any)."""
        if self.handler is not None:
            self.handler(frame)


@dataclass
class ChannelStats:
    """Aggregate channel counters for diagnostics and overhead accounting."""

    frames_sent: int = 0
    frames_delivered: int = 0
    frames_faded: int = 0
    #: Receptions eaten by the fault-injection ``link_fault`` hook (distinct
    #: from ``frames_faded``, the channel's own fading model).
    frames_fault_dropped: int = 0
    unicast_lost: int = 0
    #: Candidate receivers examined across all transmits (the cost the
    #: spatial index shrinks from N per frame to ~k).
    receiver_candidates: int = 0
    sent_by_kind: Dict[FrameKind, int] = field(default_factory=dict)
    delivered_by_kind: Dict[FrameKind, int] = field(default_factory=dict)

    def record_sent(self, kind: FrameKind) -> None:
        self.frames_sent += 1
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1

    def record_sent_batch(self, kind: FrameKind, count: int) -> None:
        """Batch counterpart of :meth:`record_sent` (batched beacon tick)."""
        self.frames_sent += count
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + count

    def record_delivered(self, kind: FrameKind, count: int) -> None:
        self.frames_delivered += count
        self.delivered_by_kind[kind] = self.delivered_by_kind.get(kind, 0) + count

    @property
    def mean_receivers_per_frame(self) -> float:
        """Average deliveries per transmitted frame."""
        if self.frames_sent == 0:
            return 0.0
        return self.frames_delivered / self.frames_sent

    @property
    def mean_candidates_per_frame(self) -> float:
        """Average candidate receivers examined per transmitted frame."""
        if self.frames_sent == 0:
            return 0.0
        return self.receiver_candidates / self.frames_sent


class BroadcastChannel:
    """The shared medium all radio interfaces are registered on.

    Positions are cached (in the spatial grid, or in numpy arrays for the
    linear-scan fallback) and refreshed when :meth:`invalidate_positions`
    is called (the mobility loop calls it every step); since node positions
    only change at mobility steps, the cache is exact.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        *,
        base_latency: float = 5e-4,
        latency_jitter: float = 2e-4,
        loss_rate: float = 0.0,
        use_spatial_index: bool = True,
        cell_size: Optional[float] = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if cell_size is not None and cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._sim = sim
        self._rng = streams.get("channel")
        self._loss_rng = streams.get("channel-loss")
        self.base_latency = base_latency
        self.latency_jitter = latency_jitter
        #: Independent per-receiver frame-loss probability (fading model).
        self.loss_rate = loss_rate
        self._interfaces: List[RadioInterface] = []
        self._index_of: Dict[int, int] = {}
        self._next_reg_order = 0
        self._obstructions: List[Callable[[Position, Position], bool]] = []
        #: Heap of (end_time, x, y, range) of in-flight transmissions, for
        #: carrier sense; expired entries are popped from the top lazily.
        self._active_tx: List[tuple] = []
        #: Batched in-flight transmissions: ``(end_time, xs, ys, ranges)``
        #: numpy triples noted by the fleet beacon tick (one entry per tick
        #: instead of one heap push per sender).  Appended in increasing
        #: end-time order, so expiry drops from the front.
        self._active_tx_batches: List[tuple] = []
        #: Addresses opted into the batched fleet path (their beacons are
        #: generated by the fleet tick, so they are skipped when the tick
        #: enumerates per-object receivers) and the registered interfaces
        #: *not* in the fleet (static destinations, attacker masts) that
        #: must keep receiving real frames.
        self._fleet_addrs: set = set()
        self._nonfleet: Dict[int, RadioInterface] = {}
        self._positions_dirty = True
        self._use_grid = use_spatial_index
        self._cell_size = cell_size
        self._grid: Optional[SpatialGrid] = None
        #: link_range overrides by address; their max widens grid queries so
        #: a long-eared mast is found beyond the sender's own tx range.
        self._override_ranges: Dict[int, float] = {}
        self._max_override = 0.0
        self._xs = np.empty(0)
        self._ys = np.empty(0)
        self._link_overrides = np.empty(0)
        self.stats = ChannelStats()
        #: Observability hooks fired when a unicast frame misses its
        #: addressee — ``(frame, why)`` with ``why`` one of
        #: ``"out-of-range"`` (addressee not among the receivers) or
        #: ``"faded"`` (addressee drawn into the fading loss).  Purely
        #: passive: the list is empty by default and callbacks must not
        #: mutate protocol state.
        self.on_unicast_lost: List[Callable[[Frame, str], None]] = []
        #: Optional fault-injection predicate ``(sender, receiver, frame) ->
        #: drop?`` consulted per candidate receiver after the fading draw.
        #: None (the default) costs nothing on the hot path; installed by
        #: :class:`~repro.faults.injector.FaultInjector` when the plan has
        #: link impairments.  A dropped addressee fires ``on_unicast_lost``
        #: with ``why="faulted"``.
        self.link_fault: Optional[
            Callable[[RadioInterface, RadioInterface, Frame], bool]
        ] = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, iface: RadioInterface) -> None:
        """Attach an interface to the medium."""
        if iface.address in self._index_of:
            raise ValueError(f"address {iface.address} already registered")
        iface.channel = self
        iface._reg_order = self._next_reg_order
        iface._grid_item = (iface._reg_order, iface)
        self._next_reg_order += 1
        self._index_of[iface.address] = len(self._interfaces)
        self._interfaces.append(iface)
        if iface.link_range is not None:
            self._override_ranges[iface.address] = iface.link_range
            if iface.link_range > self._max_override:
                self._max_override = iface.link_range
        if iface.address not in self._fleet_addrs:
            self._nonfleet[iface.address] = iface
        if self._grid is not None:
            pos = iface.get_position()
            self._grid.insert(iface._grid_item, pos.x, pos.y)
            # The grid is already exact: the new interface was inserted at
            # its current position and nobody else moved since the last
            # refresh, so no full lazy refresh is needed (churn-heavy runs
            # used to pay an O(N) re-move per spawn here).
        else:
            self._positions_dirty = True

    def unregister(self, iface: RadioInterface) -> None:
        """Detach an interface (e.g. a vehicle leaving the road).

        Swap-remove: the last interface takes the departing one's slot, so
        a departure costs O(1) instead of rebuilding the whole index.  (The
        interface list no longer tracks registration order — delivery order
        comes from each interface's registration sequence number.)
        """
        idx = self._index_of.pop(iface.address, None)
        if idx is None:
            return
        last = self._interfaces.pop()
        if last is not iface:
            self._interfaces[idx] = last
            self._index_of[last.address] = idx
        self._nonfleet.pop(iface.address, None)
        if self._grid is not None:
            if iface._grid_item in self._grid:
                self._grid.remove(iface._grid_item)
            # Removal keeps the grid exact; see register().
        else:
            self._positions_dirty = True
        override = self._override_ranges.pop(iface.address, None)
        if override is not None and override >= self._max_override:
            self._max_override = max(
                self._override_ranges.values(), default=0.0
            )
        iface.channel = None

    @property
    def interfaces(self) -> tuple:
        """A snapshot of registered interfaces, in registration order."""
        return tuple(
            sorted(self._interfaces, key=lambda iface: iface._reg_order)
        )

    # ------------------------------------------------------------------
    # batched-fleet integration
    # ------------------------------------------------------------------
    def mark_fleet(self, iface: RadioInterface) -> None:
        """Opt ``iface`` into the batched fleet path.

        Fleet members' beacons are generated and delivered by the fleet
        tick (:mod:`repro.geonet.fleet`); marking keeps them out of the
        non-fleet receiver set the tick enumerates for real-frame delivery.
        The mark survives unregister/re-register cycles (power faults) and
        is keyed by address, so it must be re-applied after a pseudonym
        rotation (which swaps the address).
        """
        self._fleet_addrs.add(iface.address)
        self._nonfleet.pop(iface.address, None)

    def unmark_fleet(self, iface: RadioInterface) -> None:
        """Undo :meth:`mark_fleet` (fleet member removed for good)."""
        self._fleet_addrs.discard(iface.address)
        if iface.address in self._index_of:
            self._nonfleet[iface.address] = iface

    def nonfleet_interfaces(self) -> List[RadioInterface]:
        """Registered interfaces outside the batched fleet, in registration
        order (the delivery order the per-object path would use)."""
        return sorted(self._nonfleet.values(), key=lambda i: i._reg_order)

    def note_tx_batch(self, end_time: float, xs, ys, ranges) -> None:
        """Record a whole tick of fleet transmissions for carrier sense.

        One entry replaces the per-sender ``_active_tx`` heap pushes; the
        position/range arrays are checked vectorised in
        :meth:`medium_busy`.  Ticks are appended in increasing end-time
        order, so expiry pops from the front.
        """
        self._active_tx_batches.append((end_time, xs, ys, ranges))

    def update_fleet_positions(self, items, xs, ys) -> None:
        """Bulk grid refresh for fleet interfaces from the SoA arrays.

        Replaces :meth:`invalidate_positions` in batched mode: instead of
        marking everything stale (and re-reading every ``get_position()``
        on the next query), the fleet's positions are pushed straight into
        the grid with :meth:`SpatialGrid.move_many`.  Non-fleet interfaces
        (static destinations, masts) never move, so their cached positions
        stay exact.  Falls back to the lazy full refresh whenever the cache
        is already stale or an item is missing from the grid (a powered-off
        radio mid-outage).
        """
        if not self._use_grid or self._grid is None or self._positions_dirty:
            self._positions_dirty = True
            return
        try:
            self._grid.move_many(items, xs, ys)
        except KeyError:
            # Partial application is harmless — every position written so
            # far was the item's true current position; the full refresh
            # re-reads the rest.
            self._positions_dirty = True

    def refresh_interface_position(self, iface: RadioInterface) -> None:
        """Re-index one interface whose position changed (a mobile mast).

        Single-item analogue of :meth:`update_fleet_positions`: in batched
        mode the mobility step only moves *fleet* items, so a moving
        non-fleet interface must push its own position or its grid cell
        goes permanently stale.  Falls back to the lazy full refresh when
        the grid is absent, already dirty, or missing the item.
        """
        if not self._use_grid or self._grid is None or self._positions_dirty:
            self._positions_dirty = True
            return
        pos = iface.get_position()
        try:
            self._grid.move(iface._grid_item, pos.x, pos.y)
        except KeyError:
            self._positions_dirty = True

    def add_obstruction(
        self, blocks: Callable[[Position, Position], bool]
    ) -> None:
        """Register a link obstruction predicate (True means link blocked).

        A predicate may optionally expose a vectorised ``blocks_many(tx_x,
        tx_y, rx_x, rx_y) -> bool ndarray`` method; :meth:`block_mask` uses
        it to keep batched (fleet) delivery off the per-pair Python path.
        """
        self._obstructions.append(blocks)

    @property
    def has_obstructions(self) -> bool:
        """True when at least one obstruction predicate is registered."""
        return bool(self._obstructions)

    def is_link_blocked(
        self, tx_position: Position, receiver: RadioInterface
    ) -> bool:
        """Public obstruction check for a single (tx position, receiver) link."""
        return self._is_blocked(tx_position, receiver)

    def block_mask(self, tx_x, tx_y, rx_x, rx_y) -> np.ndarray:
        """Vectorised obstruction check over parallel link-endpoint arrays.

        Returns a boolean mask (True = blocked) the same length as the
        inputs.  Predicates that provide ``blocks_many`` are evaluated in
        one numpy call; plain ``(Position, Position) -> bool`` predicates
        fall back to a per-pair loop over the links still unblocked.
        """
        n = len(tx_x)
        blocked = np.zeros(n, dtype=bool)
        scalar_preds = []
        for blocks in self._obstructions:
            blocks_many = getattr(blocks, "blocks_many", None)
            if blocks_many is not None:
                blocked |= np.asarray(blocks_many(tx_x, tx_y, rx_x, rx_y), dtype=bool)
            else:
                scalar_preds.append(blocks)
        if scalar_preds:
            for k in np.flatnonzero(~blocked):
                a = Position(float(tx_x[k]), float(tx_y[k]))
                b = Position(float(rx_x[k]), float(rx_y[k]))
                if any(blocks(a, b) for blocks in scalar_preds):
                    blocked[k] = True
        return blocked

    def invalidate_positions(self) -> None:
        """Mark the cached position arrays stale (call after mobility steps)."""
        self._positions_dirty = True

    # ------------------------------------------------------------------
    # position cache
    # ------------------------------------------------------------------
    def _auto_cell_size(self) -> float:
        """Cell size = max link range over registered interfaces.

        With cell >= every query radius, a disc query touches at most a 3×3
        cell neighborhood (see :mod:`repro.radio.spatial`).  Interfaces that
        register later with longer ranges stay correct — queries just walk
        more cells.
        """
        best = 0.0
        for iface in self._interfaces:
            best = max(best, iface.tx_range)
            if iface.link_range is not None:
                best = max(best, iface.link_range)
        return best if best > 0 else _DEFAULT_CELL_SIZE

    def _refresh_positions(self) -> None:
        if self._use_grid:
            grid = self._grid
            if grid is None:
                grid = self._grid = SpatialGrid(
                    self._cell_size
                    if self._cell_size is not None
                    else self._auto_cell_size()
                )
                for iface in self._interfaces:
                    pos = iface.get_position()
                    grid.insert(iface._grid_item, pos.x, pos.y)
            else:
                move = grid.move
                for iface in self._interfaces:
                    pos = iface.get_position()
                    move(iface._grid_item, pos.x, pos.y)
        else:
            n = len(self._interfaces)
            xs = np.empty(n)
            ys = np.empty(n)
            link = np.full(n, np.nan)
            for i, iface in enumerate(self._interfaces):
                pos = iface.get_position()
                xs[i] = pos.x
                ys[i] = pos.y
                if iface.link_range is not None:
                    link[i] = iface.link_range
            self._xs, self._ys, self._link_overrides = xs, ys, link
        self._positions_dirty = False

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def transmit(
        self,
        sender: RadioInterface,
        kind: FrameKind,
        payload,
        *,
        dest_addr: Optional[int] = None,
        tx_range: Optional[float] = None,
    ) -> Frame:
        """Send a frame and schedule its deliveries.

        Returns the frame (so callers, e.g. attackers, can track it).
        """
        tx_pos = sender.get_position()
        eff_range = sender.tx_range if tx_range is None else float(tx_range)
        frame = Frame(
            kind=kind,
            sender_addr=sender.address,
            payload=payload,
            tx_position=tx_pos,
            tx_range=eff_range,
            tx_time=self._sim.now,
            dest_addr=dest_addr,
        )
        self.stats.record_sent(kind)
        heapq.heappush(
            self._active_tx,
            (self._sim.now + self.base_latency, tx_pos.x, tx_pos.y, eff_range),
        )
        receivers = self._receivers_for(frame, sender)
        dest_addr = frame.dest_addr
        if dest_addr is not None and not any(
            iface.address == dest_addr for iface in receivers
        ):
            self.stats.unicast_lost += 1
            for hook in self.on_unicast_lost:
                hook(frame, "out-of-range")
        delivered = 0
        # Hot loop: one scheduled delivery per receiver.  The jitter draw is
        # ``uniform(0, j)`` inlined as ``j * random()`` (bit-identical: the
        # stdlib computes ``0 + (j - 0) * random()``), consuming exactly one
        # draw per receiver as before.
        base = self.base_latency
        jitter = self.latency_jitter
        rng_random = self._rng.random
        loss_rate = self.loss_rate
        loss_random = self._loss_rng.random
        link_fault = self.link_fault
        schedule_fire = self._sim.schedule_fire
        for iface in receivers:
            if loss_rate > 0.0 and loss_random() < loss_rate:
                self.stats.frames_faded += 1
                # A faded addressee is the second silent-unicast-loss site.
                if dest_addr is not None and iface.address == dest_addr:
                    for hook in self.on_unicast_lost:
                        hook(frame, "faded")
                continue
            if link_fault is not None and link_fault(sender, iface, frame):
                self.stats.frames_fault_dropped += 1
                # An addressee eaten by the fault layer is the third one.
                if dest_addr is not None and iface.address == dest_addr:
                    for hook in self.on_unicast_lost:
                        hook(frame, "faulted")
                continue
            delivered += 1
            schedule_fire(base + jitter * rng_random(), iface.deliver, frame)
        self.stats.record_delivered(kind, delivered)
        return frame

    def _candidates(self, position: Position, radius: float) -> List[tuple]:
        """``((reg_order, iface), dist_sq)`` for interfaces within ``radius``
        — plus, in grid mode, any interface inside the widened override
        search radius (callers re-check each candidate against its effective
        reach).  The grid stores ``(reg_order, iface)`` items, so its raw
        query output is returned as-is; sorting the list orders candidates
        by registration sequence (``reg_order`` is unique, the interface is
        never compared)."""
        if self._positions_dirty:
            self._refresh_positions()
        if not self._interfaces:
            return []
        if self._use_grid:
            search = radius if radius > self._max_override else self._max_override
            return self._grid.query_disc(position.x, position.y, search)
        dx = self._xs - position.x
        dy = self._ys - position.y
        dist_sq = dx * dx + dy * dy
        hearable = dist_sq <= radius * radius
        if self._override_ranges:
            hearable |= dist_sq <= self._link_overrides * self._link_overrides
        interfaces = self._interfaces
        return [
            (interfaces[i]._grid_item, dist_sq[i])
            for i in np.flatnonzero(hearable)
        ]

    def _receivers_for(
        self, frame: Frame, sender: RadioInterface
    ) -> List[RadioInterface]:
        tx_range = frame.tx_range
        candidates = self._candidates(frame.tx_position, tx_range)
        self.stats.receiver_candidates += len(candidates)
        candidates.sort()
        dest_addr = frame.dest_addr
        check_blocked = self._is_blocked if self._obstructions else None
        receivers: List[RadioInterface] = []
        append = receivers.append
        for (_order, iface), d_sq in candidates:
            if iface is sender:
                continue
            reach = tx_range if iface.link_range is None else iface.link_range
            if d_sq > reach * reach:
                continue
            if dest_addr is not None:
                if iface.address != dest_addr and not iface.promiscuous:
                    continue
            if check_blocked is not None and check_blocked(
                frame.tx_position, iface
            ):
                continue
            append(iface)
        return receivers

    def neighbors_within(
        self, position: Position, radius: float
    ) -> List[RadioInterface]:
        """Registered interfaces within ``radius`` of ``position``.

        Served from the same spatial index the transmit path uses; results
        come back in registration order.  This is the query the traffic and
        analysis layers reuse for proximity lookups (e.g.
        ``World.nodes_near``).
        """
        r_sq = radius * radius
        matches = [
            item
            for item, d_sq in self._candidates(position, radius)
            if d_sq <= r_sq
        ]
        matches.sort()
        return [iface for _order, iface in matches]

    def medium_busy(self, position: Position) -> bool:
        """Carrier sense: is a transmission audible at ``position`` right now?

        CSMA is what guarantees one forwarder per CBF contention round in
        real radios: a contender whose timer expires during a peer's
        transmission defers, receives the duplicate, and cancels.

        ``_active_tx`` is a heap ordered by end time, so expiring old
        transmissions is a few O(log n) pops instead of rebuilding the list
        on every call.
        """
        now = self._sim.now
        active = self._active_tx
        while active and active[0][0] <= now:
            heapq.heappop(active)
        for _end, x, y, tx_range in active:
            dx = position.x - x
            dy = position.y - y
            if dx * dx + dy * dy <= tx_range * tx_range:
                return True
        batches = self._active_tx_batches
        while batches and batches[0][0] <= now:
            batches.pop(0)
        for _end, xs, ys, ranges in batches:
            dx = xs - position.x
            dy = ys - position.y
            if bool(((dx * dx + dy * dy) <= ranges * ranges).any()):
                return True
        return False

    def _is_blocked(self, tx_position: Position, receiver: RadioInterface) -> bool:
        if not self._obstructions:
            return False
        rx_position = receiver.get_position()
        return any(blocks(tx_position, rx_position) for blocks in self._obstructions)
