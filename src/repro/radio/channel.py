"""The unit-disk broadcast channel.

Delivery rule: a receiver hears a frame iff

    dist(sender, receiver) <= link_range

where ``link_range`` is the sender's transmit range for that frame, unless
the *receiver* declares a ``link_range`` override — then the override
applies.  The override models the attacker's asymmetric channel: a roadside
sniffer on a mast has line-of-sight where vehicles are obstructed, so every
link touching it — sniffing *and* injection — has the attack range, not the
vehicle-to-vehicle range ("the attacker-to-vehicle communication range can
easily be larger than the vehicle-to-vehicle one", §III-B).  A worst-NLoS
attacker is conversely limited to its short range in both directions.

Vehicle-to-vehicle links have no override and reduce to the classic unit
disk at the technology's NLoS-median range.

Unicast frames are delivered to the addressee only (if in range), but
promiscuous interfaces overhear them — radio is a broadcast medium.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.geo.position import Position
from repro.radio.frames import Frame, FrameKind
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

_address_counter = itertools.count(1)


def allocate_address() -> int:
    """Allocate a unique link-layer address."""
    return next(_address_counter)


class RadioInterface:
    """A node's attachment point to the channel."""

    def __init__(
        self,
        get_position: Callable[[], Position],
        tx_range: float,
        *,
        link_range: Optional[float] = None,
        address: Optional[int] = None,
        promiscuous: bool = False,
    ):
        if tx_range < 0:
            raise ValueError(f"tx_range must be non-negative, got {tx_range}")
        if link_range is not None and link_range <= 0:
            raise ValueError(f"link_range must be positive, got {link_range}")
        self.address = allocate_address() if address is None else address
        self.get_position = get_position
        self.tx_range = float(tx_range)
        #: When set, every link toward this interface uses this range instead
        #: of the sender's transmit range (asymmetric-channel override).
        self.link_range = None if link_range is None else float(link_range)
        self.promiscuous = promiscuous
        self.handler: Optional[Callable[[Frame], None]] = None
        self.channel: Optional["BroadcastChannel"] = None

    def attach(self, handler: Callable[[Frame], None]) -> None:
        """Register the receive callback for this interface."""
        self.handler = handler

    def send(
        self,
        kind: FrameKind,
        payload,
        *,
        dest_addr: Optional[int] = None,
        tx_range: Optional[float] = None,
    ) -> Frame:
        """Transmit a frame on the attached channel."""
        if self.channel is None:
            raise RuntimeError("interface is not registered on a channel")
        return self.channel.transmit(
            self, kind, payload, dest_addr=dest_addr, tx_range=tx_range
        )

    def deliver(self, frame: Frame) -> None:
        """Hand a received frame to the attached handler (if any)."""
        if self.handler is not None:
            self.handler(frame)


@dataclass
class ChannelStats:
    """Aggregate channel counters for diagnostics and overhead accounting."""

    frames_sent: int = 0
    frames_delivered: int = 0
    frames_faded: int = 0
    unicast_lost: int = 0
    sent_by_kind: Dict[FrameKind, int] = field(default_factory=dict)
    delivered_by_kind: Dict[FrameKind, int] = field(default_factory=dict)

    def record_sent(self, kind: FrameKind) -> None:
        self.frames_sent += 1
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1

    def record_delivered(self, kind: FrameKind, count: int) -> None:
        self.frames_delivered += count
        self.delivered_by_kind[kind] = self.delivered_by_kind.get(kind, 0) + count


class BroadcastChannel:
    """The shared medium all radio interfaces are registered on.

    Positions are cached in numpy arrays and refreshed when
    :meth:`invalidate_positions` is called (the mobility loop calls it every
    step); since node positions only change at mobility steps, the cache is
    exact.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        *,
        base_latency: float = 5e-4,
        latency_jitter: float = 2e-4,
        loss_rate: float = 0.0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self._sim = sim
        self._rng = streams.get("channel")
        self._loss_rng = streams.get("channel-loss")
        self.base_latency = base_latency
        self.latency_jitter = latency_jitter
        #: Independent per-receiver frame-loss probability (fading model).
        self.loss_rate = loss_rate
        self._interfaces: List[RadioInterface] = []
        self._index_of: Dict[int, int] = {}
        self._obstructions: List[Callable[[Position, Position], bool]] = []
        #: (end_time, x, y, range) of recent transmissions, for carrier sense.
        self._active_tx: List[tuple] = []
        self._positions_dirty = True
        self._xs = np.empty(0)
        self._ys = np.empty(0)
        self._link_overrides = np.empty(0)
        self.stats = ChannelStats()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, iface: RadioInterface) -> None:
        """Attach an interface to the medium."""
        if iface.address in self._index_of:
            raise ValueError(f"address {iface.address} already registered")
        iface.channel = self
        self._index_of[iface.address] = len(self._interfaces)
        self._interfaces.append(iface)
        self._positions_dirty = True

    def unregister(self, iface: RadioInterface) -> None:
        """Detach an interface (e.g. a vehicle leaving the road)."""
        idx = self._index_of.pop(iface.address, None)
        if idx is None:
            return
        self._interfaces.pop(idx)
        self._index_of = {
            member.address: i for i, member in enumerate(self._interfaces)
        }
        iface.channel = None
        self._positions_dirty = True

    @property
    def interfaces(self) -> tuple:
        """A snapshot of currently registered interfaces."""
        return tuple(self._interfaces)

    def add_obstruction(
        self, blocks: Callable[[Position, Position], bool]
    ) -> None:
        """Register a link obstruction predicate (True means link blocked)."""
        self._obstructions.append(blocks)

    def invalidate_positions(self) -> None:
        """Mark the cached position arrays stale (call after mobility steps)."""
        self._positions_dirty = True

    def _refresh_positions(self) -> None:
        n = len(self._interfaces)
        xs = np.empty(n)
        ys = np.empty(n)
        link = np.full(n, np.nan)
        for i, iface in enumerate(self._interfaces):
            pos = iface.get_position()
            xs[i] = pos.x
            ys[i] = pos.y
            if iface.link_range is not None:
                link[i] = iface.link_range
        self._xs, self._ys, self._link_overrides = xs, ys, link
        self._positions_dirty = False

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def transmit(
        self,
        sender: RadioInterface,
        kind: FrameKind,
        payload,
        *,
        dest_addr: Optional[int] = None,
        tx_range: Optional[float] = None,
    ) -> Frame:
        """Send a frame and schedule its deliveries.

        Returns the frame (so callers, e.g. attackers, can track it).
        """
        tx_pos = sender.get_position()
        eff_range = sender.tx_range if tx_range is None else float(tx_range)
        frame = Frame(
            kind=kind,
            sender_addr=sender.address,
            payload=payload,
            tx_position=tx_pos,
            tx_range=eff_range,
            tx_time=self._sim.now,
            dest_addr=dest_addr,
        )
        self.stats.record_sent(kind)
        self._active_tx.append(
            (self._sim.now + self.base_latency, tx_pos.x, tx_pos.y, eff_range)
        )
        receivers = self._receivers_for(frame, sender)
        if frame.dest_addr is not None and not any(
            iface.address == frame.dest_addr for iface in receivers
        ):
            self.stats.unicast_lost += 1
        delivered = 0
        for iface in receivers:
            if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
                self.stats.frames_faded += 1
                continue
            delivered += 1
            latency = self.base_latency + self._rng.uniform(0, self.latency_jitter)
            self._sim.schedule(latency, iface.deliver, frame)
        self.stats.record_delivered(kind, delivered)
        return frame

    def _receivers_for(
        self, frame: Frame, sender: RadioInterface
    ) -> List[RadioInterface]:
        if self._positions_dirty:
            self._refresh_positions()
        if len(self._interfaces) == 0:
            return []
        dx = self._xs - frame.tx_position.x
        dy = self._ys - frame.tx_position.y
        dist_sq = dx * dx + dy * dy
        reach = np.where(
            np.isnan(self._link_overrides), frame.tx_range, self._link_overrides
        )
        hearable = dist_sq <= reach * reach
        receivers: List[RadioInterface] = []
        for i in np.flatnonzero(hearable):
            iface = self._interfaces[i]
            if iface is sender:
                continue
            if frame.dest_addr is not None:
                if iface.address != frame.dest_addr and not iface.promiscuous:
                    continue
            if self._is_blocked(frame.tx_position, iface):
                continue
            receivers.append(iface)
        return receivers

    def medium_busy(self, position: Position) -> bool:
        """Carrier sense: is a transmission audible at ``position`` right now?

        CSMA is what guarantees one forwarder per CBF contention round in
        real radios: a contender whose timer expires during a peer's
        transmission defers, receives the duplicate, and cancels.
        """
        now = self._sim.now
        if self._active_tx:
            self._active_tx = [tx for tx in self._active_tx if tx[0] > now]
        for _end, x, y, tx_range in self._active_tx:
            dx = position.x - x
            dy = position.y - y
            if dx * dx + dy * dy <= tx_range * tx_range:
                return True
        return False

    def _is_blocked(self, tx_position: Position, receiver: RadioInterface) -> bool:
        if not self._obstructions:
            return False
        rx_position = receiver.get_position()
        return any(blocks(tx_position, rx_position) for blocks in self._obstructions)
