"""A uniform-grid spatial index over the plane.

The simulation's hot query is "who is within ``r`` metres of this point?"
— the broadcast channel asks it on every transmit, carrier sense and the
traffic layer ask it for proximity lookups.  A :class:`SpatialGrid` buckets
items into square cells of side ``cell_size`` so a disc query only touches
the cells overlapping the disc's bounding box instead of every item.

Cell-size invariant: when ``cell_size >= r`` the bounding box spans at most
a 3×3 cell neighborhood, so a query is answered from at most nine buckets.
Larger radii remain *exact* — the query simply walks the larger cell
rectangle — so an occasional long-range transmission (an attacker's mast)
never misses receivers; it only touches more buckets.

The grid is incremental: items are inserted once and moved in place.
:meth:`move` is O(1) and does not touch the bucket dictionaries at all when
the item stays in its current cell, which is the common case for vehicles
advancing a few metres per mobility step through cells hundreds of metres
wide.

The index imposes no ordering; callers that need deterministic iteration
(the channel's delivery order, for instance) sort the returned candidates
by their own sequence numbers.
"""

from __future__ import annotations

from math import floor
from typing import Dict, Hashable, List, Tuple

import numpy as np

#: Cell keys are the two lattice coordinates packed into one int
#: (``(cx << 32) ^ (cy & 0xFFFFFFFF)``): hashing an int is cheaper than
#: building and hashing a tuple on every probe of the query hot loop.
#: XOR never carries between the halves, so the packing is exact for any
#: Python ints (``key >> 32`` recovers ``cx``; the low half sign-extends
#: back to ``cy``).
Cell = int

_CY_MASK = 0xFFFFFFFF
_CY_SIGN = 1 << 31
_CY_SPAN = 1 << 32


def _unpack(key: Cell) -> Tuple[int, int]:
    cy = key & _CY_MASK
    if cy >= _CY_SIGN:
        cy -= _CY_SPAN
    return key >> 32, cy


class SpatialGrid:
    """Uniform square-cell spatial hash of point items."""

    __slots__ = ("cell_size", "_inv", "_cells", "_cell_of")

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._inv = 1.0 / self.cell_size
        #: cell -> {item: (x, y)}
        self._cells: Dict[Cell, Dict[Hashable, Tuple[float, float]]] = {}
        self._cell_of: Dict[Hashable, Cell] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _key(self, x: float, y: float) -> Cell:
        return (floor(x * self._inv) << 32) ^ (floor(y * self._inv) & _CY_MASK)

    def insert(self, item: Hashable, x: float, y: float) -> None:
        """Add ``item`` at ``(x, y)``; it must not already be present."""
        if item in self._cell_of:
            raise ValueError(f"{item!r} is already in the grid")
        cell = self._key(x, y)
        self._cell_of[item] = cell
        bucket = self._cells.get(cell)
        if bucket is None:
            bucket = self._cells[cell] = {}
        bucket[item] = (x, y)

    def move(self, item: Hashable, x: float, y: float) -> None:
        """Update ``item``'s position, re-bucketing only on a cell change."""
        old_cell = self._cell_of[item]
        cell = self._key(x, y)
        if cell == old_cell:
            self._cells[old_cell][item] = (x, y)
            return
        old_bucket = self._cells[old_cell]
        del old_bucket[item]
        if not old_bucket:
            del self._cells[old_cell]
        self._cell_of[item] = cell
        bucket = self._cells.get(cell)
        if bucket is None:
            bucket = self._cells[cell] = {}
        bucket[item] = (x, y)

    def move_many(self, items, xs, ys) -> int:
        """Bulk :meth:`move`: update ``items[i]`` to ``(xs[i], ys[i])``.

        ``xs``/``ys`` are numpy float arrays; the cell keys for the whole
        batch are computed in one vectorised pass, so the per-item Python
        work reduces to a dict store (and a re-bucket only for the few
        items that actually crossed a cell boundary — vehicles advance a
        few metres per step through cells hundreds of metres wide).

        Returns the number of items re-bucketed.  Equivalent to calling
        :meth:`move` once per item.
        """
        inv = self._inv
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        # floor before the int cast: astype truncates toward zero, which
        # differs from math.floor for negative coordinates.
        cxs = np.floor(xs * inv).astype(np.int64)
        cys = np.floor(ys * inv).astype(np.int64)
        keys = ((cxs << 32) ^ (cys & _CY_MASK)).tolist()
        cells = self._cells
        cell_of = self._cell_of
        moved = 0
        for item, key, x, y in zip(items, keys, xs.tolist(), ys.tolist()):
            old_cell = cell_of[item]
            if key == old_cell:
                cells[old_cell][item] = (x, y)
                continue
            moved += 1
            old_bucket = cells[old_cell]
            del old_bucket[item]
            if not old_bucket:
                del cells[old_cell]
            cell_of[item] = key
            bucket = cells.get(key)
            if bucket is None:
                bucket = cells[key] = {}
            bucket[item] = (x, y)
        return moved

    def remove(self, item: Hashable) -> None:
        """Drop ``item`` from the index."""
        cell = self._cell_of.pop(item)
        bucket = self._cells[cell]
        del bucket[item]
        if not bucket:
            del self._cells[cell]

    def position_of(self, item: Hashable) -> Tuple[float, float]:
        """The ``(x, y)`` the grid currently has for ``item``."""
        return self._cells[self._cell_of[item]][item]

    def __contains__(self, item: Hashable) -> bool:
        return item in self._cell_of

    def __len__(self) -> int:
        return len(self._cell_of)

    @property
    def n_cells(self) -> int:
        """Number of non-empty cells (empty buckets are reclaimed)."""
        return len(self._cells)

    def check_consistency(self) -> None:
        """Verify the two internal maps agree exactly; raise on any drift.

        The properties checked are what churn (register/unregister mid-run)
        must preserve: every indexed item sits in the bucket its cell map
        names, every bucketed position hashes back to that cell, no bucket
        is empty (reclamation), and no bucket holds an unindexed item.
        O(n) — used by the runtime invariant checker and the churn tests.
        """
        for item, cell in self._cell_of.items():
            bucket = self._cells.get(cell)
            if bucket is None or item not in bucket:
                raise ValueError(
                    f"grid inconsistency: {item!r} is indexed in cell "
                    f"{_unpack(cell)} but missing from its bucket"
                )
            x, y = bucket[item]
            if self._key(x, y) != cell:
                raise ValueError(
                    f"grid inconsistency: {item!r} at ({x}, {y}) hashes to "
                    f"cell {_unpack(self._key(x, y))} but is stored in "
                    f"{_unpack(cell)} (stale cell entry)"
                )
        total = 0
        for cell, bucket in self._cells.items():
            if not bucket:
                raise ValueError(
                    f"grid inconsistency: cell {_unpack(cell)} has an empty "
                    "bucket (should have been reclaimed)"
                )
            total += len(bucket)
            for item in bucket:
                if self._cell_of.get(item) != cell:
                    raise ValueError(
                        f"grid inconsistency: {item!r} sits in bucket "
                        f"{_unpack(cell)} but the item index says "
                        f"{self._cell_of.get(item)!r}"
                    )
        if total != len(self._cell_of):
            raise ValueError(
                f"grid inconsistency: buckets hold {total} items but the "
                f"item index has {len(self._cell_of)}"
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_disc(
        self, x: float, y: float, radius: float
    ) -> List[Tuple[Hashable, float]]:
        """All ``(item, dist_sq)`` with ``dist(item, (x, y)) <= radius``.

        The boundary is inclusive, matching the channel's unit-disk rule.
        Results are in no particular order.
        """
        if radius < 0:
            return []
        r_sq = radius * radius
        inv = self._inv
        cx0 = floor((x - radius) * inv)
        cx1 = floor((x + radius) * inv)
        cy0 = floor((y - radius) * inv)
        cy1 = floor((y + radius) * inv)
        out: List[Tuple[Hashable, float]] = []
        cells = self._cells
        if (cx1 - cx0 + 1) * (cy1 - cy0 + 1) >= len(cells):
            # The disc's bounding box covers most of the populated world:
            # walking the populated buckets directly is cheaper.
            buckets = []
            for key, bucket in cells.items():
                cx, cy = _unpack(key)
                if cx0 <= cx <= cx1 and cy0 <= cy <= cy1:
                    buckets.append(bucket)
        else:
            buckets = []
            cells_get = cells.get
            for cx in range(cx0, cx1 + 1):
                base = cx << 32
                for cy in range(cy0, cy1 + 1):
                    bucket = cells_get(base ^ (cy & _CY_MASK))
                    if bucket:
                        buckets.append(bucket)
        append = out.append
        for bucket in buckets:
            for item, (ix, iy) in bucket.items():
                dx = ix - x
                dy = iy - y
                d_sq = dx * dx + dy * dy
                if d_sq <= r_sq:
                    append((item, d_sq))
        return out

    def items_in_disc(self, x: float, y: float, radius: float) -> List[Hashable]:
        """Just the items of :meth:`query_disc` (unordered)."""
        return [item for item, _d in self.query_disc(x, y, radius)]
