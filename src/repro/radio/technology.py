"""Vehicle communication technologies and their measured ranges (Table II).

The ranges come from the Utah DOT field test the paper cites: median
line-of-sight (LoS), median non-line-of-sight (NLoS) and worst-case NLoS.
The paper uses the NLoS-median range for vehicle-to-vehicle links (trucks
block LoS between sedans on a highway) and lets the attacker raise its power
up to the LoS-median range.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RangeClass(enum.Enum):
    """Which measured range to use for a link."""

    LOS_MEDIAN = "mL"
    NLOS_MEDIAN = "mN"
    NLOS_WORST = "wN"


@dataclass(frozen=True)
class RadioTechnology:
    """An access-layer technology with its measured communication ranges."""

    name: str
    los_median_m: float
    nlos_median_m: float
    nlos_worst_m: float

    def __post_init__(self):
        if not (0 < self.nlos_worst_m <= self.nlos_median_m <= self.los_median_m):
            raise ValueError(
                f"{self.name}: ranges must satisfy 0 < worst-NLoS <= median-NLoS"
                f" <= median-LoS"
            )

    def range_for(self, range_class: RangeClass) -> float:
        """The range in metres for the given :class:`RangeClass`."""
        if range_class is RangeClass.LOS_MEDIAN:
            return self.los_median_m
        if range_class is RangeClass.NLOS_MEDIAN:
            return self.nlos_median_m
        return self.nlos_worst_m

    @property
    def vehicle_range_m(self) -> float:
        """The vehicle-to-vehicle range used in the paper (median NLoS)."""
        return self.nlos_median_m

    @property
    def max_range_m(self) -> float:
        """DIST_MAX for CBF: the theoretical maximum communication range.

        EN 302 636-4-1 defines DIST_MAX as the maximum range of the access
        technology; we use the median LoS range, the largest value the field
        test reports.
        """
        return self.los_median_m


#: Dedicated Short Range Communications (ASTM E2213-03), Table II row values.
DSRC = RadioTechnology(
    name="DSRC", los_median_m=1283.0, nlos_median_m=486.0, nlos_worst_m=327.0
)

#: Cellular V2X (ETSI EN 303 613), Table II row values.
CV2X = RadioTechnology(
    name="C-V2X", los_median_m=1703.0, nlos_median_m=593.0, nlos_worst_m=359.0
)

#: Lookup by name, used by the experiment CLI.
TECHNOLOGIES = {tech.name: tech for tech in (DSRC, CV2X)}
