"""Radio substrate: access technologies, frames and the broadcast channel.

The paper reduces the DSRC / C-V2X physical layers to the communication
ranges measured in the Utah DOT field test (Table II); we model the medium as
a unit-disk broadcast channel parameterised by those ranges, with
millisecond-scale delivery latency and optional link obstructions (used by
the road-safety curve scenario).
"""

from repro.radio.technology import (
    CV2X,
    DSRC,
    RadioTechnology,
    RangeClass,
)
from repro.radio.frames import Frame, FrameKind
from repro.radio.channel import BroadcastChannel, ChannelStats, RadioInterface

__all__ = [
    "BroadcastChannel",
    "CV2X",
    "ChannelStats",
    "DSRC",
    "Frame",
    "FrameKind",
    "RadioInterface",
    "RadioTechnology",
    "RangeClass",
]
