"""Corner/building shadowing for Manhattan-grid urban scenarios.

On a city grid, radio propagation is dominated by the buildings between
streets: two vehicles hear each other when they share a street canyon
(line of sight down the corridor), or when both stand close enough to the
same intersection that corner diffraction carries the signal around the
building edge.  Everything else is blocked — the free-space range that the
highway scenarios use is meaningless through a city block.

:class:`ManhattanShadowing` encodes exactly that rule as a link
obstruction predicate for
:meth:`~repro.radio.channel.BroadcastChannel.add_obstruction`:

* **same-street LOS** — both endpoints lie within the half-width of a
  common street corridor (horizontal or vertical);
* **corner clearance** — both endpoints are within ``corner_clearance``
  metres of a common intersection (NLOS-around-the-corner reception);
* otherwise the link is **blocked**.

The model is deliberately binary (blocked or clear) so it composes with
the channel's range/fading model instead of replacing it; Amador et al.
(arXiv 2403.16237) use the same corridor-or-corner approximation for
urban GeoNetworking studies.

The predicate also implements the vectorised ``blocks_many`` protocol, so
the batched fleet path evaluates it with a handful of numpy passes per
tick instead of per-pair Python calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.geo.position import Position


@dataclass(frozen=True)
class ManhattanShadowing:
    """Building shadowing predicate for a rectangular street grid.

    ``street_xs`` are the centerlines of the vertical (north-south)
    streets, ``street_ys`` of the horizontal (east-west) streets.
    ``half_width`` is half the corridor width a position may occupy and
    still count as "on" that street; ``corner_clearance`` is the radius
    around an intersection within which corner diffraction still connects
    two different streets.
    """

    street_xs: Tuple[float, ...]
    street_ys: Tuple[float, ...]
    half_width: float
    corner_clearance: float = 0.0

    def __post_init__(self):
        if not self.street_xs and not self.street_ys:
            raise ValueError("at least one street is required")
        if self.half_width <= 0:
            raise ValueError("half_width must be positive")
        if self.corner_clearance < 0:
            raise ValueError("corner_clearance must be non-negative")
        # Normalise to tuples so the instance stays hashable even when
        # built from lists/arrays.
        object.__setattr__(self, "street_xs", tuple(float(x) for x in self.street_xs))
        object.__setattr__(self, "street_ys", tuple(float(y) for y in self.street_ys))

    @classmethod
    def for_grid(
        cls,
        streets_x: int,
        streets_y: int,
        block_size: float,
        *,
        half_width: float,
        corner_clearance: float = 0.0,
    ) -> "ManhattanShadowing":
        """Build the predicate for a regular grid anchored at the origin.

        ``streets_x`` vertical streets at x = 0, block_size, ...;
        ``streets_y`` horizontal streets at y = 0, block_size, ...
        """
        if streets_x < 1 or streets_y < 1:
            raise ValueError("the grid needs at least one street per axis")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        return cls(
            street_xs=tuple(i * block_size for i in range(streets_x)),
            street_ys=tuple(j * block_size for j in range(streets_y)),
            half_width=half_width,
            corner_clearance=corner_clearance,
        )

    # ------------------------------------------------------------------
    # predicate protocol
    # ------------------------------------------------------------------
    def __call__(self, a: Position, b: Position) -> bool:
        """True when the link a<->b is blocked (the channel-hook contract)."""
        return bool(
            self.blocks_many(
                np.array([a.x]), np.array([a.y]), np.array([b.x]), np.array([b.y])
            )[0]
        )

    def blocks_many(self, tx_x, tx_y, rx_x, rx_y) -> np.ndarray:
        """Vectorised blocked-mask over parallel link-endpoint arrays."""
        tx_x = np.asarray(tx_x, dtype=float)
        tx_y = np.asarray(tx_y, dtype=float)
        rx_x = np.asarray(rx_x, dtype=float)
        rx_y = np.asarray(rx_y, dtype=float)
        hw = self.half_width
        los = np.zeros(tx_x.shape, dtype=bool)
        for sy in self.street_ys:
            los |= (np.abs(tx_y - sy) <= hw) & (np.abs(rx_y - sy) <= hw)
        for sx in self.street_xs:
            los |= (np.abs(tx_x - sx) <= hw) & (np.abs(rx_x - sx) <= hw)
        clearance = self.corner_clearance
        if clearance > 0.0 and not los.all():
            c_sq = clearance * clearance
            for sx in self.street_xs:
                adx = tx_x - sx
                bdx = rx_x - sx
                for sy in self.street_ys:
                    ady = tx_y - sy
                    bdy = rx_y - sy
                    near_a = adx * adx + ady * ady <= c_sq
                    near_b = bdx * bdx + bdy * bdy <= c_sq
                    los |= near_a & near_b
        return ~los

    # ------------------------------------------------------------------
    # geometry helpers (shared with tests and the urban world assembly)
    # ------------------------------------------------------------------
    def on_street(self, position: Position) -> bool:
        """Whether ``position`` lies inside any street corridor."""
        return any(
            abs(position.y - sy) <= self.half_width for sy in self.street_ys
        ) or any(abs(position.x - sx) <= self.half_width for sx in self.street_xs)

    def intersections(self) -> Sequence[Position]:
        """All street intersections, row-major."""
        return [
            Position(sx, sy) for sy in self.street_ys for sx in self.street_xs
        ]
