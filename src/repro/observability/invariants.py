"""Opt-in runtime invariant checking.

A production-scale simulator must not *silently* corrupt results when a
subsystem misbehaves — especially once the fault-injection layer starts
tearing nodes down mid-run.  :class:`InvariantChecker` is scheduled on a
configurable cadence (``ExperimentConfig.invariant_check_interval``) and
asserts, each tick:

* **event queue monotonicity** — no pending event is due before ``now``,
  no time is NaN, the heap property holds, sequence numbers are unique;
* **LocT plausibility** — entries were updated in the past, expire exactly
  one TTL after their update, and carry finite coordinates;
* **CBF timer sanity** — every buffered packet holds a live, non-negative
  contention timer due at or after ``now`` and a positive forward RHL;
* **ledger conservation** — every tracked packet has exactly one outcome,
  outcomes sum to originations, and no event precedes its origination;
* **spatial-grid consistency** — the channel's neighbor index and its
  registered interfaces agree (:meth:`SpatialGrid.check_consistency`).

On the first violation the checker raises :class:`InvariantViolation`
carrying a diagnostic dump (simulation clock, queue depth, the offending
object) — failing fast beats averaging corrupted numbers into a figure.

The checker is strictly read-only over protocol state but *does* occupy
event-queue slots when scheduled, so it is off by default; enabling it
changes event sequence numbers (never their relative order) and is not
covered by the bit-identity golden contract.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Optional

from repro.observability.ledger import PacketLedger

#: Slack for float comparisons against the simulation clock.
_EPS = 1e-9

#: Default bound on plausible LocT coordinates (metres).  Generous — the
#: worlds under study span a few km — while still catching sign garbage,
#: overflow and NaN propagation.
_DEFAULT_POSITION_BOUND = 1e7


class InvariantViolation(RuntimeError):
    """A simulation invariant does not hold.

    ``dump`` carries the multi-line diagnostic the checker assembled at
    detection time (also embedded in ``str(exc)``).
    """

    def __init__(self, message: str, dump: str = ""):
        self.dump = dump
        super().__init__(f"{message}\n{dump}" if dump else message)


class InvariantChecker:
    """Periodic runtime assertion of simulation invariants.

    Duck-typed against its collaborators so it can watch any subset:
    ``iter_nodes`` yields GeoNode-likes (or is None), ``channel`` is a
    BroadcastChannel (or None), ``ledger`` a PacketLedger (or None).
    """

    def __init__(
        self,
        sim,
        *,
        iter_nodes: Optional[Callable[[], Iterable]] = None,
        channel=None,
        ledger: Optional[PacketLedger] = None,
        position_bound: float = _DEFAULT_POSITION_BOUND,
    ):
        self._sim = sim
        self._iter_nodes = iter_nodes
        self._channel = channel
        self._ledger = ledger
        self._position_bound = position_bound
        #: Completed (passing) check sweeps.
        self.checks_run = 0
        self.last_checked_at: Optional[float] = None

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Run every check once; raises :class:`InvariantViolation`."""
        now = self._sim.now
        self._check_event_queue(now)
        if self._channel is not None:
            self._check_grid()
        if self._iter_nodes is not None:
            for node in self._iter_nodes():
                if getattr(node, "is_shut_down", False):
                    continue
                self._check_loct(node, now)
                self._check_cbf(node, now)
        if self._ledger is not None:
            self._check_ledger(now)
        self.checks_run += 1
        self.last_checked_at = now

    # ------------------------------------------------------------------
    # individual checks
    # ------------------------------------------------------------------
    def _fail(self, message: str, *detail: str) -> None:
        lines: List[str] = [
            f"  sim.now={self._sim.now:.6f}s  events_fired={self._sim.events_fired}"
            f"  pending={self._sim.pending}",
        ]
        lines.extend(f"  {line}" for line in detail)
        raise InvariantViolation(f"invariant violated: {message}", "\n".join(lines))

    def _check_event_queue(self, now: float) -> None:
        heap = self._sim._heap
        seen_seq = set()
        for i, entry in enumerate(heap):
            time, _priority, seq = entry[0], entry[1], entry[2]
            if math.isnan(time):
                self._fail("event queue holds a NaN-time event", f"entry[{i}]={entry!r}")
            if time < now - _EPS:
                self._fail(
                    "event queue is non-monotonic: pending event due in the past",
                    f"entry[{i}] due at t={time:.6f} < now={now:.6f}",
                    f"event={entry[3]!r}",
                )
            if seq in seen_seq:
                self._fail(
                    "event queue holds duplicate sequence numbers",
                    f"seq={seq} appears twice",
                )
            seen_seq.add(seq)
        for i in range(len(heap)):
            for child in (2 * i + 1, 2 * i + 2):
                if child < len(heap) and heap[child][:3] < heap[i][:3]:
                    self._fail(
                        "event heap property broken",
                        f"heap[{child}]={heap[child][:3]} < heap[{i}]={heap[i][:3]}",
                    )

    def _check_grid(self) -> None:
        channel = self._channel
        grid = getattr(channel, "_grid", None)
        if grid is None:
            return  # grid is built lazily on first query
        try:
            grid.check_consistency()
        except ValueError as exc:
            self._fail("spatial grid inconsistent", str(exc))
        for iface in channel._interfaces:
            if iface._grid_item not in grid:
                self._fail(
                    "registered interface missing from the spatial grid",
                    f"address={iface.address}",
                )
        if len(grid) != len(channel._interfaces):
            self._fail(
                "spatial grid size disagrees with channel membership",
                f"grid={len(grid)} interfaces={len(channel._interfaces)}",
            )

    def _check_loct(self, node, now: float) -> None:
        loct = node.router.loct
        bound = self._position_bound
        for entry in loct._entries.values():
            if entry.updated_at > now + _EPS:
                self._fail(
                    "LocT entry updated in the future",
                    f"node={node.address} entry addr={entry.addr}"
                    f" updated_at={entry.updated_at:.6f} > now={now:.6f}",
                )
            if abs(entry.expires_at - (entry.updated_at + loct.ttl)) > _EPS:
                self._fail(
                    "LocT entry expiry inconsistent with its TTL",
                    f"node={node.address} entry addr={entry.addr}"
                    f" updated_at={entry.updated_at:.6f}"
                    f" expires_at={entry.expires_at:.6f} ttl={loct.ttl:.6f}",
                )
            x, y = entry.position.x, entry.position.y
            if not (math.isfinite(x) and math.isfinite(y)):
                self._fail(
                    "LocT entry carries a non-finite position",
                    f"node={node.address} entry addr={entry.addr} pos=({x}, {y})",
                )
            if abs(x) > bound or abs(y) > bound:
                self._fail(
                    "LocT entry position outside the plausible world",
                    f"node={node.address} entry addr={entry.addr}"
                    f" pos=({x:.1f}, {y:.1f}) bound={bound:.0f}",
                )

    def _check_cbf(self, node, now: float) -> None:
        for packet_id, buffered in node.router.cbf._buffers.items():
            timer = buffered.timer
            if timer.cancelled:
                self._fail(
                    "CBF buffer holds a cancelled contention timer",
                    f"node={node.address} packet={packet_id}",
                )
            if timer.time < now - _EPS:
                self._fail(
                    "CBF contention timer due in the past",
                    f"node={node.address} packet={packet_id}"
                    f" due={timer.time:.6f} < now={now:.6f}",
                )
            if timer.time < buffered.buffered_at - _EPS:
                self._fail(
                    "CBF contention timeout is negative",
                    f"node={node.address} packet={packet_id}"
                    f" due={timer.time:.6f} buffered_at={buffered.buffered_at:.6f}",
                )
            if buffered.buffered_at > now + _EPS:
                self._fail(
                    "CBF copy buffered in the future",
                    f"node={node.address} packet={packet_id}"
                    f" buffered_at={buffered.buffered_at:.6f} > now={now:.6f}",
                )
            if buffered.forward_rhl < 1:
                self._fail(
                    "CBF buffered a copy with an exhausted hop budget",
                    f"node={node.address} packet={packet_id}"
                    f" forward_rhl={buffered.forward_rhl}",
                )

    def _check_ledger(self, now: float) -> None:
        ledger = self._ledger
        totals = ledger.outcome_totals()
        if sum(totals.values()) != len(ledger):
            self._fail(
                "ledger conservation broken: outcomes do not sum to originations",
                f"sum(outcomes)={sum(totals.values())} originated={len(ledger)}",
                f"totals={totals}",
            )
        for record in ledger.records():
            if record.originated_at > now + _EPS:
                self._fail(
                    "ledger record originated in the future",
                    f"packet={record.packet_id} originated_at="
                    f"{record.originated_at:.6f} > now={now:.6f}",
                )
            first_drop = record.first_drop
            if (
                first_drop is not None
                and first_drop[0] < record.originated_at - _EPS
            ):
                self._fail(
                    "ledger drop precedes the packet's origination",
                    f"packet={record.packet_id} drop at {first_drop[0]:.6f}"
                    f" < originated_at={record.originated_at:.6f}",
                )
            if (
                record.first_delivery is not None
                and record.first_delivery < record.originated_at - _EPS
            ):
                self._fail(
                    "ledger delivery precedes the packet's origination",
                    f"packet={record.packet_id} delivery at "
                    f"{record.first_delivery:.6f}"
                    f" < originated_at={record.originated_at:.6f}",
                )
