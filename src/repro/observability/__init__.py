"""Packet-lifecycle observability.

The paper's attacks work because GF/CBF packets die *silently*: a unicast
toward a poisoned LocT entry simply reaches nobody, and no protocol layer
accounts for the loss.  This package provides the accounting the protocol
lacks — a per-run :class:`PacketLedger` that assigns every originated
application packet exactly one terminal outcome from a drop-reason
taxonomy, with optional per-hop journey records.

The ledger is strictly passive: it consumes no randomness, schedules no
events and never touches protocol state, so enabling it leaves seeded runs
bit-identical (covered by golden tests).
"""

from repro.observability.invariants import InvariantChecker, InvariantViolation
from repro.observability.ledger import (
    DROP_REASONS,
    JourneyEvent,
    OUTCOMES,
    PacketLedger,
    PacketRecord,
    reasons,
)

__all__ = [
    "DROP_REASONS",
    "InvariantChecker",
    "InvariantViolation",
    "JourneyEvent",
    "OUTCOMES",
    "PacketLedger",
    "PacketRecord",
    "reasons",
]
