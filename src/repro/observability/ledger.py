"""The per-run packet ledger and its drop-reason taxonomy.

Every *originated* application packet (GeoBroadcast payloads and
GeoUnicasts; SHB beacons and Location Service floods are infrastructure
and excluded by default) is registered once and resolved to exactly one
terminal outcome:

``delivered``
    at least one in-area / addressee delivery happened;
``gf-no-progress-expired``
    GF found no forward-progress neighbor and the packet expired while
    waiting in the recheck loop;
``unreachable-next-hop``
    a forwarder transmitted the frame link-layer unicast but the addressee
    was out of range (or faded) — the silent loss the interception attack
    manufactures;
``rhl-exhausted``
    the remaining hop limit reached zero before the destination;
``cbf-suppressed``
    a buffered CBF copy was cancelled by a duplicate (the blockage
    attack's lever);
``expired-in-buffer``
    the CBF contention timer outlived the packet's lifetime;
``ls-failure``
    the Location Service never resolved the destination's position;
``lifetime-expired``
    the packet's lifetime elapsed anywhere else on the path;
``faulted-link-loss``
    the fault-injection layer's link impairment (i.i.d. or Gilbert–Elliott
    burst loss) ate the frame carrying the packet to its addressee;
``node-down``
    a fault-injected outage killed the node holding the packet (buffered
    CBF copies, pending GF/GUC rechecks, LS resolutions) or the packet's
    unicast addressee was powered off;
``in-flight-at-end``
    the run ended (or the carrying node shut down) with the packet still
    unresolved — the conservation bucket that keeps outcome counts summing
    to originations no matter when the simulation stops.

A packet many copies of which die (a CBF flood suppresses dozens of
redundant copies while still covering the area) is still *one* packet:
``delivered`` wins over any drop, and among drops the chronologically
first one is the packet's fate.  The per-copy tallies remain available in
:attr:`PacketRecord.drops` for copy-level analyses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class reasons:
    """The drop-reason taxonomy (terminal outcomes)."""

    DELIVERED = "delivered"
    GF_NO_PROGRESS_EXPIRED = "gf-no-progress-expired"
    UNREACHABLE_NEXT_HOP = "unreachable-next-hop"
    RHL_EXHAUSTED = "rhl-exhausted"
    CBF_SUPPRESSED = "cbf-suppressed"
    CBF_DEFER_EXHAUSTED = "cbf-defer-exhausted"
    DCC_SUPPRESSED = "dcc-suppressed"
    EXPIRED_IN_BUFFER = "expired-in-buffer"
    LS_FAILURE = "ls-failure"
    LIFETIME_EXPIRED = "lifetime-expired"
    FAULTED_LINK_LOSS = "faulted-link-loss"
    NODE_DOWN = "node-down"
    IN_FLIGHT_AT_END = "in-flight-at-end"


#: Non-delivered terminal outcomes, in reporting order.
DROP_REASONS: Tuple[str, ...] = (
    reasons.GF_NO_PROGRESS_EXPIRED,
    reasons.UNREACHABLE_NEXT_HOP,
    reasons.RHL_EXHAUSTED,
    reasons.CBF_SUPPRESSED,
    reasons.CBF_DEFER_EXHAUSTED,
    reasons.DCC_SUPPRESSED,
    reasons.EXPIRED_IN_BUFFER,
    reasons.LS_FAILURE,
    reasons.LIFETIME_EXPIRED,
    reasons.FAULTED_LINK_LOSS,
    reasons.NODE_DOWN,
    reasons.IN_FLIGHT_AT_END,
)

#: All terminal outcomes, in reporting order (delivered first).
OUTCOMES: Tuple[str, ...] = (reasons.DELIVERED,) + DROP_REASONS

#: A ledger key: the packet kind ("gbc" or "guc") plus the protocol packet
#: id.  GBC and GUC sequence counters are independent per node, so the two
#: namespaces must not share keys.
LedgerKey = Tuple[str, tuple]


@dataclass(frozen=True)
class JourneyEvent:
    """One per-hop observation of a tracked packet (journeys mode only)."""

    time: float
    node_addr: int
    action: str
    detail: str = ""

    def line(self) -> str:
        extra = f"  {self.detail}" if self.detail else ""
        return f"{self.time:10.4f}s  {self.action:<22} @node {self.node_addr}{extra}"


@dataclass
class PacketRecord:
    """The lifecycle of one originated packet."""

    kind: str
    packet_id: tuple
    source_addr: int
    originated_at: float
    deliveries: int = 0
    first_delivery: Optional[float] = None
    #: Copy-level drop tallies (a flood can lose many redundant copies).
    drops: Counter = field(default_factory=Counter)
    #: ``(time, reason)`` of the chronologically first drop.
    first_drop: Optional[Tuple[float, str]] = None
    #: Per-hop events; populated only when the ledger records journeys.
    events: Optional[List[JourneyEvent]] = None

    @property
    def outcome(self) -> str:
        """The packet's single terminal outcome (delivered > first drop)."""
        if self.deliveries > 0:
            return reasons.DELIVERED
        if self.first_drop is not None:
            return self.first_drop[1]
        return reasons.IN_FLIGHT_AT_END


class PacketLedger:
    """Passive per-run packet-lifecycle accounting.

    Instrumented protocol code reports ``originated`` / ``delivered`` /
    ``dropped`` (and, with ``journeys=True``, per-hop ``hop``) events.
    Events for packets that were never registered — beacons, SHB, LS
    floods, an attacker's replays of unknown traffic — are ignored, which
    is what scopes the ledger to application packets without the protocol
    layers having to know about workloads.
    """

    def __init__(self, *, journeys: bool = False):
        self.journeys = journeys
        self._records: Dict[LedgerKey, PacketRecord] = {}

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------
    def originated(
        self, kind: str, packet_id: tuple, time: float, source_addr: int
    ) -> PacketRecord:
        """Register a freshly-sourced packet (exactly once per packet)."""
        key = (kind, packet_id)
        record = self._records.get(key)
        if record is None:
            record = PacketRecord(
                kind=kind,
                packet_id=packet_id,
                source_addr=source_addr,
                originated_at=time,
                events=[] if self.journeys else None,
            )
            self._records[key] = record
        if record.events is not None:
            record.events.append(
                JourneyEvent(time=time, node_addr=source_addr, action="originated")
            )
        return record

    def delivered(
        self, kind: str, packet_id: tuple, time: float, node_addr: int
    ) -> None:
        """Record a delivery (any one delivery makes the packet delivered)."""
        record = self._records.get((kind, packet_id))
        if record is None:
            return
        record.deliveries += 1
        if record.first_delivery is None:
            record.first_delivery = time
        if record.events is not None:
            record.events.append(
                JourneyEvent(time=time, node_addr=node_addr, action="delivered")
            )

    def dropped(
        self,
        kind: str,
        packet_id: tuple,
        time: float,
        node_addr: int,
        reason: str,
        detail: str = "",
    ) -> None:
        """Record one copy of the packet dying at ``node_addr``."""
        record = self._records.get((kind, packet_id))
        if record is None:
            return
        record.drops[reason] += 1
        if record.first_drop is None or time < record.first_drop[0]:
            record.first_drop = (time, reason)
        if record.events is not None:
            record.events.append(
                JourneyEvent(
                    time=time,
                    node_addr=node_addr,
                    action=f"dropped:{reason}",
                    detail=detail,
                )
            )

    def hop(
        self,
        kind: str,
        packet_id: tuple,
        time: float,
        node_addr: int,
        action: str,
        detail: str = "",
    ) -> None:
        """Record a non-terminal per-hop event (journeys mode only)."""
        if not self.journeys:
            return
        record = self._records.get((kind, packet_id))
        if record is None or record.events is None:
            return
        record.events.append(
            JourneyEvent(time=time, node_addr=node_addr, action=action, detail=detail)
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def tracks(self, kind: str, packet_id: tuple) -> bool:
        """Whether the packet is registered with the ledger."""
        return (kind, packet_id) in self._records

    def record(self, kind: str, packet_id: tuple) -> Optional[PacketRecord]:
        """The record for one packet, or None."""
        return self._records.get((kind, packet_id))

    def records(self) -> List[PacketRecord]:
        """All records, in origination order."""
        return list(self._records.values())

    def journey(self, kind: str, packet_id: tuple) -> List[JourneyEvent]:
        """The per-hop events of one packet (empty unless journeys mode)."""
        record = self._records.get((kind, packet_id))
        if record is None or record.events is None:
            return []
        return list(record.events)

    def outcome_totals(self) -> Dict[str, int]:
        """Terminal-outcome counts over all tracked packets.

        The conservation invariant holds by construction: every record has
        exactly one outcome, so the counts sum to the origination count.
        """
        totals: Counter = Counter(r.outcome for r in self._records.values())
        return {
            outcome: totals[outcome] for outcome in OUTCOMES if totals[outcome]
        }

    def copy_drop_totals(self) -> Dict[str, int]:
        """Copy-level drop tallies summed over all tracked packets."""
        totals: Counter = Counter()
        for record in self._records.values():
            totals.update(record.drops)
        return dict(totals)
