"""Runtime fault injection driven by a :class:`~repro.faults.plan.FaultPlan`.

The injector owns the ``fault:*`` RNG streams and installs hooks only for
the enabled dimensions:

* **link loss** — a ``link_fault`` predicate on the broadcast channel,
  consulted per candidate receiver after the channel's own fading draw;
* **churn** — exponential outage/reboot timers per adopted node, driving
  :meth:`GeoNode.go_down` / :meth:`GeoNode.come_up`;
* **GPS error** — a per-node ``pv_fault`` transform applied to beacon
  payloads only (true mobility, and hence the ground truth the metrics
  snapshot, is never perturbed);
* **beacon timing** — an ``extra_jitter`` draw added to each beacon cycle.

Nothing here touches the pre-existing RNG streams, so disabling a dimension
leaves the rest of the simulation bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set, Tuple

from repro.geo.position import PositionVector
from repro.sim.events import EventHandle

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geonet.node import GeoNode
    from repro.radio.channel import BroadcastChannel, RadioInterface
    from repro.radio.frames import Frame
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams


@dataclass
class FaultStats:
    """What the injector actually did during a run."""

    link_fault_drops: int = 0
    burst_transitions: int = 0
    outages: int = 0
    reboots: int = 0
    gps_faulted_beacons: int = 0
    extra_jitter_draws: int = 0


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live simulation.

    Construct once per run (the experiment world does this when the plan is
    non-zero), then :meth:`adopt` every vehicle node as it spawns and
    :meth:`release` it when it exits the road.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        sim: "Simulator",
        streams: "RandomStreams",
        channel: Optional["BroadcastChannel"] = None,
        ledger=None,
    ):
        self.plan = plan
        self._sim = sim
        self._ledger = ledger
        self.stats = FaultStats()
        #: Addresses of nodes currently powered off — lets the world
        #: attribute "unicast toward a vanished next hop" as ``node-down``.
        self._down_addrs: Set[int] = set()
        self._churn_timers: Dict["GeoNode", EventHandle] = {}
        if plan.link.enabled:
            if channel is None:
                raise ValueError("link faults require a channel")
            self._link_rng = streams.get("fault:link-loss")
            #: Gilbert–Elliott state per directed link: True = bad.
            self._link_bad: Dict[Tuple[int, int], bool] = {}
            channel.link_fault = self._link_drop
        if plan.churn.enabled:
            self._churn_rng = streams.get("fault:churn")
        if plan.gps.enabled:
            self._gps_rng = streams.get("fault:gps")
        if plan.beacon.enabled:
            self._jitter_rng = streams.get("fault:beacon-jitter")

    # ------------------------------------------------------------------
    # node lifecycle
    # ------------------------------------------------------------------
    def adopt(self, node: "GeoNode") -> None:
        """Start injecting faults into ``node`` (call once per vehicle)."""
        if self.plan.gps.enabled:
            node.pv_fault = self._make_pv_fault()
        if self.plan.beacon.enabled:
            node.beacon_extra_jitter = self._draw_extra_jitter
        if self.plan.churn.enabled:
            self._schedule_outage(node)

    def release(self, node: "GeoNode") -> None:
        """Stop injecting into ``node`` (it is leaving the simulation)."""
        timer = self._churn_timers.pop(node, None)
        if timer is not None:
            timer.cancel()
        self._down_addrs.discard(node.address)

    def is_down_addr(self, addr: int) -> bool:
        """Whether ``addr`` belongs to a node currently powered off."""
        return addr in self._down_addrs

    # ------------------------------------------------------------------
    # link loss
    # ------------------------------------------------------------------
    def _link_drop(
        self, sender: "RadioInterface", receiver: "RadioInterface", frame: "Frame"
    ) -> bool:
        """Channel hook: True drops this copy for this receiver."""
        link = self.plan.link
        rng = self._link_rng
        drop = False
        if link.burst_p > 0.0:
            key = (sender.address, receiver.address)
            bad = self._link_bad.get(key, False)
            if bad:
                if rng.random() < link.burst_r:
                    bad = False
                    self.stats.burst_transitions += 1
            elif rng.random() < link.burst_p:
                bad = True
                self.stats.burst_transitions += 1
            self._link_bad[key] = bad
            if bad and rng.random() < link.burst_loss:
                drop = True
        if not drop and link.loss_rate > 0.0 and rng.random() < link.loss_rate:
            drop = True
        if drop:
            self.stats.link_fault_drops += 1
        return drop

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def _schedule_outage(self, node: "GeoNode") -> None:
        delay = self._churn_rng.expovariate(1.0 / self.plan.churn.mean_uptime)
        self._churn_timers[node] = self._sim.schedule(delay, self._outage, node)

    def _outage(self, node: "GeoNode") -> None:
        self._churn_timers.pop(node, None)
        if node.is_shut_down or node.is_down:
            return
        self.stats.outages += 1
        self._down_addrs.add(node.address)
        node.go_down()
        delay = self._churn_rng.expovariate(1.0 / self.plan.churn.mean_downtime)
        self._churn_timers[node] = self._sim.schedule(delay, self._reboot, node)

    def _reboot(self, node: "GeoNode") -> None:
        self._churn_timers.pop(node, None)
        self._down_addrs.discard(node.address)
        if node.is_shut_down:
            return
        self.stats.reboots += 1
        node.come_up()
        self._schedule_outage(node)

    # ------------------------------------------------------------------
    # GPS error
    # ------------------------------------------------------------------
    def _make_pv_fault(self) -> Callable[[PositionVector], PositionVector]:
        """A per-node beacon-PV transform with its own drift state."""
        return _PvFault(self)

    # ------------------------------------------------------------------
    # beacon timing
    # ------------------------------------------------------------------
    def _draw_extra_jitter(self) -> float:
        self.stats.extra_jitter_draws += 1
        return self._jitter_rng.uniform(0.0, self.plan.beacon.extra_jitter)


class _PvFault:
    """Per-node beacon-PV transform with its own drift state.

    A class (not a closure) so a node graph holding these remains
    picklable for checkpointing; the shared injector reference keeps the
    ``fault:gps`` stream and stats counters aliased across nodes.
    """

    def __init__(self, injector: FaultInjector):
        self._injector = injector
        self._ox = 0.0
        self._oy = 0.0
        self._last: Optional[float] = None

    def __call__(self, pv: PositionVector) -> PositionVector:
        injector = self._injector
        gps = injector.plan.gps
        rng = injector._gps_rng
        ox, oy = self._ox, self._oy
        if gps.drift_rate > 0.0:
            last = self._last
            dt = 0.0 if last is None else max(pv.timestamp - last, 0.0)
            if dt > 0.0:
                step = gps.drift_rate * math.sqrt(dt)
                ox += rng.gauss(0.0, step)
                oy += rng.gauss(0.0, step)
                self._ox, self._oy = ox, oy
            self._last = pv.timestamp
        dx, dy = ox, oy
        if gps.error_stddev > 0.0:
            dx += rng.gauss(0.0, gps.error_stddev)
            dy += rng.gauss(0.0, gps.error_stddev)
        injector.stats.gps_faulted_beacons += 1
        if dx == 0.0 and dy == 0.0:
            return pv
        return replace(pv, position=pv.position.translated(dx, dy))


__all__ = ["FaultInjector", "FaultStats"]
