"""Deterministic fault injection: plans (what breaks) and the injector (how).

See :doc:`docs/faults` for the fault model and the RNG determinism contract.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import (
    BeaconTimingPlan,
    ChurnPlan,
    FaultPlan,
    GpsFaultPlan,
    LinkFaultPlan,
)

__all__ = [
    "BeaconTimingPlan",
    "ChurnPlan",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "GpsFaultPlan",
    "LinkFaultPlan",
]
