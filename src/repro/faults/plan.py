"""Declarative fault plans.

A :class:`FaultPlan` describes *what* should go wrong in a run — lossy and
bursty links, node outages, GPS error, beacon timing jitter — as a frozen,
hashable value object that travels inside
:class:`~repro.experiments.config.ExperimentConfig` (and therefore into the
result store's config hash).  The *how* lives in
:class:`~repro.faults.injector.FaultInjector`.

Determinism contract: a plan with every dimension disabled
(:meth:`FaultPlan.is_zero`) installs no hooks and consumes **zero** RNG
draws, so a zero-plan run is bit-identical to a run without a plan at the
same seed.  Enabled dimensions draw exclusively from their own named child
streams of :class:`~repro.sim.random.RandomStreams` (``fault:link-loss``,
``fault:churn``, ``fault:gps``, ``fault:beacon-jitter``), leaving every
pre-existing stream untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


def _require_probability(name: str, value: float, *, exclusive_top: bool = False) -> None:
    top_ok = value < 1.0 if exclusive_top else value <= 1.0
    if not (0.0 <= value and top_ok):
        interval = "[0, 1)" if exclusive_top else "[0, 1]"
        raise ConfigError(f"{name} must be in {interval}, got {value!r}")


def _require_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value!r}")


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


@dataclass(frozen=True)
class LinkFaultPlan:
    """Per-link frame loss: i.i.d. and/or Gilbert–Elliott bursts.

    ``loss_rate`` drops each candidate reception independently.  The burst
    model keeps a two-state Markov chain per *directed* link: a good link
    turns bad with probability ``burst_p`` per transmission, recovers with
    ``burst_r``, and while bad each frame is lost with ``burst_loss``.
    """

    loss_rate: float = 0.0
    burst_p: float = 0.0
    burst_r: float = 0.25
    burst_loss: float = 0.8

    def __post_init__(self) -> None:
        _require_probability("link.loss_rate", self.loss_rate, exclusive_top=True)
        _require_probability("link.burst_p", self.burst_p)
        _require_probability("link.burst_r", self.burst_r)
        _require_probability("link.burst_loss", self.burst_loss)
        if self.burst_p > 0.0 and self.burst_r <= 0.0:
            raise ConfigError(
                "link.burst_r must be positive when link.burst_p is set "
                "(links could never recover from the bad state)"
            )

    @property
    def enabled(self) -> bool:
        return self.loss_rate > 0.0 or self.burst_p > 0.0


@dataclass(frozen=True)
class ChurnPlan:
    """Node outages and reboots.

    Each vehicle stays up for an Exp(``mean_uptime``) interval, powers off
    (radio leaves the channel, every protocol timer dies), stays down for an
    Exp(``mean_downtime``) interval, then reboots with its volatile router
    state — LocT, CBF duplicate memory, GUC maps — wiped.  ``mean_uptime``
    of 0 disables churn.
    """

    mean_uptime: float = 0.0
    mean_downtime: float = 5.0

    def __post_init__(self) -> None:
        _require_non_negative("churn.mean_uptime", self.mean_uptime)
        _require_positive("churn.mean_downtime", self.mean_downtime)

    @property
    def enabled(self) -> bool:
        return self.mean_uptime > 0.0


@dataclass(frozen=True)
class GpsFaultPlan:
    """GPS error on advertised beacon positions — true mobility untouched.

    ``error_stddev`` adds i.i.d. zero-mean Gaussian noise (metres, per axis)
    to every beacon's position.  ``drift_rate`` adds a per-node random-walk
    offset whose per-beacon step has standard deviation
    ``drift_rate * sqrt(dt)`` (metres, per axis) — a slow bias that GF's
    plausibility mitigation should tolerate, unlike an attacker's teleport.
    """

    error_stddev: float = 0.0
    drift_rate: float = 0.0

    def __post_init__(self) -> None:
        _require_non_negative("gps.error_stddev", self.error_stddev)
        _require_non_negative("gps.drift_rate", self.drift_rate)

    @property
    def enabled(self) -> bool:
        return self.error_stddev > 0.0 or self.drift_rate > 0.0


@dataclass(frozen=True)
class BeaconTimingPlan:
    """Extra beacon-interval jitter on top of the protocol's own.

    Each beacon cycle is delayed by a further Uniform(0, ``extra_jitter``)
    seconds, modelling congested DCC queues that hold beacons back.
    """

    extra_jitter: float = 0.0

    def __post_init__(self) -> None:
        _require_non_negative("beacon.extra_jitter", self.extra_jitter)

    @property
    def enabled(self) -> bool:
        return self.extra_jitter > 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A composable bundle of impairments for one run."""

    link: LinkFaultPlan = field(default_factory=LinkFaultPlan)
    churn: ChurnPlan = field(default_factory=ChurnPlan)
    gps: GpsFaultPlan = field(default_factory=GpsFaultPlan)
    beacon: BeaconTimingPlan = field(default_factory=BeaconTimingPlan)

    @property
    def is_zero(self) -> bool:
        """True when no fault dimension is enabled (bit-identity guaranteed)."""
        return not (
            self.link.enabled
            or self.churn.enabled
            or self.gps.enabled
            or self.beacon.enabled
        )

    # ------------------------------------------------------------------
    # convenience factories
    # ------------------------------------------------------------------
    @staticmethod
    def lossy(loss_rate: float) -> "FaultPlan":
        """I.i.d. per-link frame loss only."""
        return FaultPlan(link=LinkFaultPlan(loss_rate=loss_rate))

    @staticmethod
    def bursty(
        burst_p: float = 0.02, burst_r: float = 0.25, burst_loss: float = 0.8
    ) -> "FaultPlan":
        """Gilbert–Elliott burst loss only."""
        return FaultPlan(
            link=LinkFaultPlan(
                burst_p=burst_p, burst_r=burst_r, burst_loss=burst_loss
            )
        )

    @staticmethod
    def churning(mean_uptime: float, mean_downtime: float = 5.0) -> "FaultPlan":
        """Node outages/reboots only."""
        return FaultPlan(
            churn=ChurnPlan(mean_uptime=mean_uptime, mean_downtime=mean_downtime)
        )
