"""Discrete-event simulation engine.

This package provides the simulation substrate used by every other layer:
an event queue with a floating-point clock (:class:`~repro.sim.engine.Simulator`),
cancellable event handles (:class:`~repro.sim.events.EventHandle`), periodic
processes (:func:`~repro.sim.process.every`), and deterministic named random
streams (:class:`~repro.sim.random.RandomStreams`).
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import Event, EventHandle
from repro.sim.process import PeriodicProcess, every
from repro.sim.random import RandomStreams

__all__ = [
    "Event",
    "EventHandle",
    "PeriodicProcess",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "every",
]
