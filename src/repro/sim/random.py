"""Deterministic named random streams.

Every stochastic component draws from its own named stream derived from the
run's root seed.  This keeps A/B experiments paired: adding an attacker (which
draws from its own stream) does not perturb the draws of traffic or beaconing,
so the attacked run sees the *same* traffic as the attack-free run.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``(root_seed, name)``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, reproducible random streams.

    ``streams.get("beacon")`` always returns the same :class:`random.Random`
    object for a given instance, seeded purely from ``(root_seed, "beacon")``.
    """

    def __init__(self, root_seed: int):
        self._root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}
        self._numpy_streams: Dict[str, np.random.Generator] = {}
        self._children: Dict[str, "RandomStreams"] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this factory was created with."""
        return self._root_seed

    def get(self, name: str) -> random.Random:
        """Return the (cached) stdlib stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self._root_seed, name))
            self._streams[name] = stream
        return stream

    def get_numpy(self, name: str) -> np.random.Generator:
        """Return the (cached) numpy generator for ``name``."""
        stream = self._numpy_streams.get(name)
        if stream is None:
            stream = np.random.default_rng(_derive_seed(self._root_seed, name))
            self._numpy_streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Return the (cached) child factory independent of our streams.

        Children are cached by name so that a state snapshot of the parent
        covers every stream the run has touched, including spawned ones.
        """
        child = self._children.get(name)
        if child is None:
            child = RandomStreams(_derive_seed(self._root_seed, f"spawn:{name}"))
            self._children[name] = child
        return child

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Capture every live stream's generator state, recursively.

        The snapshot is pure data (no generator objects) and restorable on
        a fresh factory built from the same root seed."""
        return {
            "root_seed": self._root_seed,
            "streams": {
                name: stream.getstate()
                for name, stream in self._streams.items()
            },
            "numpy_streams": {
                name: stream.bit_generator.state
                for name, stream in self._numpy_streams.items()
            },
            "children": {
                name: child.state_snapshot()
                for name, child in self._children.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_snapshot`, recreating streams on demand.

        Streams absent from the snapshot are left untouched (they were
        never drawn from at capture time, so their state is still the
        seed-derived initial one)."""
        if state["root_seed"] != self._root_seed:
            raise ValueError(
                f"snapshot was taken with root seed {state['root_seed']}, "
                f"this factory uses {self._root_seed}"
            )
        for name, stream_state in state["streams"].items():
            self.get(name).setstate(stream_state)
        for name, numpy_state in state["numpy_streams"].items():
            self.get_numpy(name).bit_generator.state = numpy_state
        for name, child_state in state["children"].items():
            self.spawn(name).restore_state(child_state)
