"""Deterministic named random streams.

Every stochastic component draws from its own named stream derived from the
run's root seed.  This keeps A/B experiments paired: adding an attacker (which
draws from its own stream) does not perturb the draws of traffic or beaconing,
so the attacked run sees the *same* traffic as the attack-free run.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``(root_seed, name)``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, reproducible random streams.

    ``streams.get("beacon")`` always returns the same :class:`random.Random`
    object for a given instance, seeded purely from ``(root_seed, "beacon")``.
    """

    def __init__(self, root_seed: int):
        self._root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}
        self._numpy_streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this factory was created with."""
        return self._root_seed

    def get(self, name: str) -> random.Random:
        """Return the (cached) stdlib stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self._root_seed, name))
            self._streams[name] = stream
        return stream

    def get_numpy(self, name: str) -> np.random.Generator:
        """Return the (cached) numpy generator for ``name``."""
        stream = self._numpy_streams.get(name)
        if stream is None:
            stream = np.random.default_rng(_derive_seed(self._root_seed, name))
            self._numpy_streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are independent of ours."""
        return RandomStreams(_derive_seed(self._root_seed, f"spawn:{name}"))
