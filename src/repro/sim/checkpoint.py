"""Deterministic checkpointing of a running simulation world.

A checkpoint captures the *whole* object graph of a run — simulator clock
and event heap, every named RNG stream, mobility, protocol and attacker
state — in a single pickle so that shared identity (two nodes holding the
same ``RandomStreams`` stream, the channel and a node referencing the same
interface) survives the round trip.  The golden contract, enforced by the
test suite, is:

    restore-then-run is **bit-identical** to the uninterrupted run.

Three rules make this possible:

1. **No lambdas or closures in the scheduled graph.**  Event callbacks,
   periodic-process ticks and protocol hooks must be bound methods, plain
   module-level functions, or instances of callable classes — all of which
   pickle as stable ``(object, attribute-name)`` descriptors and re-bind on
   load.  :class:`RestrictedPickler` rejects anything else with an error
   naming the offender, so a regression fails fast instead of producing a
   checkpoint that cannot be restored in a fresh process.
2. **Module-global allocators are part of the state.**  Vehicle ids, grid
   vehicle ids, link-layer addresses, frame ids and the CA key registry
   live in module globals; :func:`capture_global_state` folds them into the
   payload and :func:`restore_global_state` reinstates them, so id streams
   continue exactly where the original process left off.
3. **Versioned, integrity-checked envelopes.**  The pickled payload is
   wrapped with a format version and a SHA-256 digest; a reader confronted
   with an unknown version or a corrupted payload raises
   :class:`CheckpointError` rather than resuming from garbage.
"""

from __future__ import annotations

import base64
import hashlib
import io
import pickle
import pickletools
import types
import zlib
from typing import Any, Dict

#: Bump whenever the payload layout or the pickled object graph changes
#: incompatibly; readers refuse versions they do not know.
CHECKPOINT_VERSION = 1

#: ``kind`` discriminator used in envelopes (and store records).
CHECKPOINT_KIND = "checkpoint"


class CheckpointError(RuntimeError):
    """Raised when a world cannot be checkpointed or a blob restored."""


# ----------------------------------------------------------------------
# restricted pickling
# ----------------------------------------------------------------------
class RestrictedPickler(pickle.Pickler):
    """A pickler that refuses un-restorable callables.

    Plain pickle serializes a lambda or a function defined inside another
    function *by reference* (module + qualname) — the dump succeeds, but the
    load fails in any process where that exact code path has not run, and
    even where it "works" the closure cells are not captured.  Scheduled
    callbacks must therefore be bound methods, module-level functions or
    callable class instances; this pickler turns a violation into an
    immediate, descriptive :class:`CheckpointError` at *save* time.
    """

    def reducer_override(self, obj: Any):
        if isinstance(obj, types.FunctionType):
            qualname = getattr(obj, "__qualname__", "")
            if "<lambda>" in qualname or "<locals>" in qualname:
                raise CheckpointError(
                    f"cannot checkpoint callable {qualname!r} from module "
                    f"{obj.__module__!r}: lambdas and nested functions do "
                    "not survive a process boundary. Use a bound method, a "
                    "module-level function or a callable class instead "
                    "(see docs/simulation.md)."
                )
        return NotImplemented  # fall back to the normal reduction


def restricted_dumps(obj: Any) -> bytes:
    """``pickle.dumps`` via :class:`RestrictedPickler`."""
    buffer = io.BytesIO()
    RestrictedPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# module-global allocator state
# ----------------------------------------------------------------------
def capture_global_state() -> Dict[str, Any]:
    """Collect the module-global allocators a run draws from.

    Returned objects are live (the counters keep ticking); they are pickled
    together with the world in the same dump, which freezes their value at
    serialization time.
    """
    from repro.radio.channel import address_state
    from repro.radio.frames import frame_id_state
    from repro.security.signing import key_registry_state
    from repro.traffic.grid import grid_vehicle_id_state
    from repro.traffic.vehicle import vehicle_id_state

    return {
        "vehicle_counter": vehicle_id_state(),
        "grid_vehicle_counter": grid_vehicle_id_state(),
        "address_counter": address_state(),
        "frame_counter": frame_id_state(),
        "key_registry": key_registry_state(),
    }


def restore_global_state(state: Dict[str, Any]) -> None:
    """Reinstate allocators captured by :func:`capture_global_state`."""
    from repro.radio.channel import set_address_state
    from repro.radio.frames import set_frame_id_state
    from repro.security.signing import set_key_registry_state
    from repro.traffic.grid import set_grid_vehicle_id_state
    from repro.traffic.vehicle import set_vehicle_id_state

    set_vehicle_id_state(state["vehicle_counter"])
    set_grid_vehicle_id_state(state["grid_vehicle_counter"])
    set_address_state(state["address_counter"])
    set_frame_id_state(state["frame_counter"])
    set_key_registry_state(state["key_registry"])


# ----------------------------------------------------------------------
# world <-> bytes
# ----------------------------------------------------------------------
def snapshot_world(world: Any) -> bytes:
    """Serialize ``world`` plus the global allocator state into one blob.

    The fast path is the stock C pickler: ``reducer_override`` hooks cost
    a per-object callback, which is measurable on multi-megabyte worlds
    checkpointed on the simulation's critical path.  Plain pickle already
    *refuses* lambdas and nested functions (their qualified name cannot be
    looked up), so :class:`RestrictedPickler` is only re-run after a
    failure — purely to turn the stock pickler's terse error into the
    descriptive one naming the offending callable.
    """
    payload = {"world": world, "globals": capture_global_state()}
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as plain_exc:
        try:
            return restricted_dumps(payload)
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                f"world is not checkpointable: {exc}"
            ) from plain_exc


def restore_world(blob: bytes) -> Any:
    """Rebuild a world from :func:`snapshot_world` output.

    Also reinstates the module-global allocators, so ids allocated after
    the restore continue the original process's sequence.
    """
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(f"checkpoint payload does not unpickle: {exc}") from exc
    if not isinstance(payload, dict) or "world" not in payload:
        raise CheckpointError("checkpoint payload has an unexpected layout")
    restore_global_state(payload["globals"])
    return payload["world"]


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
def encode_envelope(blob: bytes, *, sim_time: float, meta: Dict[str, Any] | None = None) -> Dict[str, Any]:
    """Wrap a payload blob in a versioned, integrity-checked JSON envelope.

    ``meta`` entries (run identity such as target/config hash/seed) are
    merged in; they must not collide with the envelope's own keys.
    """
    # Compression level 1: checkpoints are written every interval on the
    # simulation's critical path and deleted when the run commits, so
    # encode speed matters far more than a few percent of size.  The
    # digest covers the *compressed* bytes — cheaper to compute, and it
    # lets readers verify integrity before feeding zlib.
    compressed = zlib.compress(blob, 1)
    envelope: Dict[str, Any] = dict(meta or {})
    envelope.update(
        kind=CHECKPOINT_KIND,
        version=CHECKPOINT_VERSION,
        sim_time=float(sim_time),
        payload_b64=base64.b64encode(compressed).decode("ascii"),
        payload_sha256=hashlib.sha256(compressed).hexdigest(),
    )
    return envelope


def decode_envelope(envelope: Dict[str, Any]) -> bytes:
    """Validate an envelope and return the payload blob.

    Raises :class:`CheckpointError` for anything that is not a current-
    version, integrity-intact checkpoint — the caller quarantines it and
    falls back to a from-scratch run.
    """
    if not isinstance(envelope, dict):
        raise CheckpointError("checkpoint envelope is not a mapping")
    if envelope.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(
            f"not a checkpoint envelope (kind={envelope.get('kind')!r})"
        )
    version = envelope.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    try:
        compressed = base64.b64decode(envelope["payload_b64"])
    except KeyError as exc:
        raise CheckpointError("checkpoint envelope has no payload") from exc
    except Exception as exc:
        raise CheckpointError(f"checkpoint payload does not decode: {exc}") from exc
    digest = hashlib.sha256(compressed).hexdigest()
    if digest != envelope.get("payload_sha256"):
        raise CheckpointError(
            "checkpoint payload digest mismatch "
            f"(stored {envelope.get('payload_sha256')!r}, computed {digest!r})"
        )
    try:
        return zlib.decompress(compressed)
    except Exception as exc:
        raise CheckpointError(f"checkpoint payload does not decode: {exc}") from exc


def audit_blob(blob: bytes) -> list:
    """List the global function references a payload blob pins.

    A diagnostic helper for tests and debugging: every ``STACK_GLOBAL`` /
    ``GLOBAL`` opcode in the pickle stream is a name the restoring process
    must be able to import — scan the result for suspicious entries.
    """
    names = []
    arg_stack: list = []
    for opcode, arg, _pos in pickletools.genops(blob):
        if opcode.name in ("SHORT_BINUNICODE", "BINUNICODE", "UNICODE"):
            arg_stack.append(arg)
            arg_stack = arg_stack[-2:]
        elif opcode.name == "STACK_GLOBAL" and len(arg_stack) == 2:
            names.append(f"{arg_stack[0]}.{arg_stack[1]}")
        elif opcode.name == "GLOBAL":
            names.append(arg.replace(" ", "."))
    return names


__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "RestrictedPickler",
    "audit_blob",
    "capture_global_state",
    "decode_envelope",
    "encode_envelope",
    "restore_global_state",
    "restore_world",
    "restricted_dumps",
    "snapshot_world",
]
