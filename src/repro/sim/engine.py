"""The discrete-event simulator.

:class:`Simulator` owns the clock and the event heap.  All other subsystems
(mobility, radio, GeoNetworking timers, attackers) schedule work through it,
which makes whole-system runs deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

from repro.sim.events import Event, EventHandle


class SimulationError(RuntimeError):
    """Raised on invalid scheduling requests (e.g. scheduling in the past)."""


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run_until(10.0)
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_fired = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        event = Event(time=float(time), priority=priority, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_fired += 1
            event.fire()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``; advance clock to it.

        Events scheduled exactly at ``end_time`` fire.  Events beyond it stay
        queued so the simulation can be resumed.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.6f} is before now {self._now:.6f}"
            )
        self._stopped = False
        self._running = True
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if event.time > end_time:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                self._events_fired += 1
                event.fire()
        finally:
            self._running = False
        if not self._stopped:
            self._now = max(self._now, end_time)

    def run(self) -> None:
        """Run until the event heap is exhausted or :meth:`stop` is called."""
        self._stopped = False
        self._running = True
        try:
            while self._heap and not self._stopped:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                self._events_fired += 1
                event.fire()
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run`/:meth:`run_until` after this event."""
        self._stopped = True
