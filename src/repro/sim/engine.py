"""The discrete-event simulator.

:class:`Simulator` owns the clock and the event heap.  All other subsystems
(mobility, radio, GeoNetworking timers, attackers) schedule work through it,
which makes whole-system runs deterministic for a given seed.

The heap stores ``(time, priority, seq, event)`` tuples rather than event
objects, so sift comparisons are C-level tuple compares; ``seq`` is unique,
which keeps ordering total without ever comparing the payload.  The
simulator also keeps lightweight performance counters — events fired and
wall-clock time spent inside the run loops — so experiment reports can
state events/second without external instrumentation.
"""

from __future__ import annotations

import heapq
import math
import time as _time
from typing import Any, Callable

from repro.sim.events import Event, EventHandle, FireOnce


class SimulationError(RuntimeError):
    """Raised on invalid scheduling requests (e.g. scheduling in the past)."""


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run_until(10.0)
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_fired = 0
        self._wall_time = 0.0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def wall_time_s(self) -> float:
        """Wall-clock seconds spent inside :meth:`run`/:meth:`run_until`."""
        return self._wall_time

    @property
    def events_per_wall_sec(self) -> float:
        """Fired events per wall-clock second of run-loop time."""
        if self._wall_time <= 0.0:
            return 0.0
        return self._events_fired / self._wall_time

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time=float(time), priority=priority, seq=seq, callback=callback, args=args)
        heapq.heappush(self._heap, (event.time, priority, seq, event))
        return EventHandle(event)

    def schedule_many(
        self,
        entries,
        *,
        priority: int = 0,
    ) -> list[EventHandle]:
        """Bulk-schedule ``(delay, callback, *args)`` entries in one call.

        Semantically identical to calling :meth:`schedule` once per entry,
        in order — each entry gets the next sequence number, so the pop
        order (and therefore the whole run) is bit-identical to the loop it
        replaces: the heap's pop order is fixed by the total
        ``(time, priority, seq)`` order regardless of the heap's internal
        layout after insertion.

        The win is the insertion cost: for a batch of k events into a heap
        of size n, k sifts cost O(k log n) while ``extend`` + ``heapify``
        costs O(n + k).  The crossover is handled with a size heuristic so
        small batches into big heaps keep using sifts.
        """
        heap = self._heap
        now = self._now
        seq = self._seq
        new: list[tuple] = []
        handles: list[EventHandle] = []
        for delay, callback, *args in entries:
            time = now + delay
            if math.isnan(time):
                raise SimulationError("cannot schedule an event at NaN time")
            if time < now:
                raise SimulationError(
                    f"cannot schedule at t={time:.6f} before now={now:.6f}"
                )
            event = Event(
                time=float(time),
                priority=priority,
                seq=seq,
                callback=callback,
                args=tuple(args),
            )
            new.append((event.time, priority, seq, event))
            handles.append(EventHandle(event))
            seq += 1
        self._seq = seq
        # heapify is O(n + k); k pushes are O(k log n).  Prefer pushes when
        # the batch is small relative to the heap (k log n < n + k roughly
        # when 4k < n for the heap sizes seen here).
        if len(new) * 4 < len(heap):
            for entry in new:
                heapq.heappush(heap, entry)
        else:
            heap.extend(new)
            heapq.heapify(heap)
        return handles

    def schedule_fire(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        """Fire-and-forget: schedule ``callback(*args)`` with no handle.

        The hot path for bulk one-shot work (frame deliveries): same heap,
        same ordering (priority 0, insertion-order tiebreak) as
        :meth:`schedule`, but skips handle creation and the dataclass event.
        The scheduled callback cannot be cancelled.
        """
        if not delay >= 0.0:  # also rejects NaN
            raise SimulationError(f"schedule_fire delay must be >= 0, got {delay}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heap, (self._now + delay, 0, seq, FireOnce(callback, args))
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the heap is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            event = entry[3]
            if event.cancelled:
                continue
            self._now = entry[0]
            self._events_fired += 1
            event.fire()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``; advance clock to it.

        Events scheduled exactly at ``end_time`` fire.  Events beyond it stay
        queued so the simulation can be resumed.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.6f} is before now {self._now:.6f}"
            )
        self._stopped = False
        self._running = True
        heap = self._heap
        started = _time.perf_counter()
        try:
            while heap and not self._stopped:
                if heap[0][0] > end_time:
                    break
                entry = heapq.heappop(heap)
                event = entry[3]
                if event.cancelled:
                    continue
                self._now = entry[0]
                self._events_fired += 1
                event.fire()
        finally:
            self._running = False
            self._wall_time += _time.perf_counter() - started
        if not self._stopped:
            self._now = max(self._now, end_time)

    def run(self) -> None:
        """Run until the event heap is exhausted or :meth:`stop` is called."""
        self._stopped = False
        self._running = True
        heap = self._heap
        started = _time.perf_counter()
        try:
            while heap and not self._stopped:
                entry = heapq.heappop(heap)
                event = entry[3]
                if event.cancelled:
                    continue
                self._now = entry[0]
                self._events_fired += 1
                event.fire()
        finally:
            self._running = False
            self._wall_time += _time.perf_counter() - started

    def stop(self) -> None:
        """Stop the current :meth:`run`/:meth:`run_until` after this event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture clock, heap and counters for a checkpoint.

        The heap entries reference live :class:`Event` objects (whose
        callbacks must themselves be picklable — see
        :mod:`repro.sim.checkpoint`); callers serialize the returned dict
        together with the object graph those callbacks close over, so
        shared identity is preserved.  Must not be called from inside a
        running event loop.
        """
        if self._running:
            raise SimulationError("cannot snapshot while the event loop runs")
        return {
            "now": self._now,
            "heap": list(self._heap),
            "seq": self._seq,
            "events_fired": self._events_fired,
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot` taken from an equivalent simulator.

        Wall-clock counters are deliberately not restored: they describe
        this process's run loops, not the simulated timeline.
        """
        if self._running:
            raise SimulationError("cannot restore while the event loop runs")
        self._now = state["now"]
        self._heap = list(state["heap"])
        self._seq = state["seq"]
        self._events_fired = state["events_fired"]
        self._stopped = False
