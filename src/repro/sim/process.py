"""Periodic processes on top of the event engine.

A :class:`PeriodicProcess` re-schedules itself every ``period`` seconds until
stopped.  It is used for mobility steps (100 ms), beaconing (with per-tick
jitter), spawners and metric samplers.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import EventHandle


class PeriodicProcess:
    """Calls ``callback()`` every ``period`` seconds (plus optional jitter).

    The callback may return a ``float`` to override the delay until the
    *next* invocation, which lets services apply per-cycle adaptivity.
    Only genuine floats count — callbacks that incidentally return ints
    (counters, addresses) keep the configured period.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        *,
        start_delay: float = 0.0,
        jitter: Optional[Callable[[], float]] = None,
        priority: int = 0,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._priority = priority
        self._handle: Optional[EventHandle] = None
        self._stopped = False
        self._handle = sim.schedule(start_delay, self._tick, priority=priority)

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def _tick(self) -> None:
        if self._stopped:
            return
        override = self._callback()
        if self._stopped:  # the callback may stop the process
            return
        delay = (
            override
            if isinstance(override, float) and not isinstance(override, bool)
            else self._period
        )
        if self._jitter is not None:
            delay += self._jitter()
        self._handle = self._sim.schedule(delay, self._tick, priority=self._priority)

    def stop(self) -> None:
        """Cancel the pending tick and stop rescheduling.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()


def every(
    sim: Simulator,
    period: float,
    callback: Callable[[], Any],
    *,
    start_delay: float = 0.0,
    priority: int = 0,
) -> PeriodicProcess:
    """Convenience wrapper: run ``callback`` every ``period`` seconds."""
    return PeriodicProcess(
        sim, period, callback, start_delay=start_delay, priority=priority
    )
