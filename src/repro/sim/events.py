"""Event primitives for the discrete-event engine.

An :class:`Event` couples a firing time with a callback.  Events are totally
ordered by ``(time, priority, seq)`` so that simultaneous events fire in a
deterministic order: lower ``priority`` first, then insertion order.

The engine's heap does not compare :class:`Event` objects directly — it
stores ``(time, priority, seq, event)`` tuples so heap sifting runs on
C-level tuple comparisons (the ``seq`` tiebreaker is unique, so the event
object itself is never compared).  Profiling dense channel runs showed the
dataclass-generated ``__lt__`` alone consuming ~25 % of wall time before
this change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def fire(self) -> None:
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class FireOnce:
    """A minimal uncancellable event for fire-and-forget scheduling.

    The channel schedules one of these per frame delivery — hundreds of
    thousands per run — and never cancels them, so it skips the dataclass
    machinery and the :class:`EventHandle` that :meth:`Simulator.schedule`
    would create.  ``cancelled`` is a class attribute: the engine's pop
    loop reads it exactly like :class:`Event`'s field.
    """

    __slots__ = ("callback", "args")

    cancelled = False

    def __init__(self, callback: Callable[..., Any], args: tuple):
        self.callback = callback
        self.args = args

    def fire(self) -> None:
        self.callback(*self.args)


class EventHandle:
    """A cancellation token for a scheduled event.

    Holding a handle lets protocol code cancel a pending timer (e.g. a CBF
    contention timer) without the engine having to search its heap; cancelled
    events are skipped lazily when popped.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """The simulation time at which the event is due to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    @property
    def args(self) -> tuple:
        """The scheduled callback's arguments.

        Lets the holder recover what a pending timer was about to act on —
        e.g. a powered-off router ledgers the packet a cancelled recheck
        was still carrying.
        """
        return self._event.args

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True
