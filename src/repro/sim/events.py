"""Event primitives for the discrete-event engine.

An :class:`Event` couples a firing time with a callback.  Events are totally
ordered by ``(time, priority, seq)`` so that simultaneous events fire in a
deterministic order: lower ``priority`` first, then insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def fire(self) -> None:
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventHandle:
    """A cancellation token for a scheduled event.

    Holding a handle lets protocol code cancel a pending timer (e.g. a CBF
    contention timer) without the engine having to search its heap; cancelled
    events are skipped lazily when popped.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """The simulation time at which the event is due to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True
