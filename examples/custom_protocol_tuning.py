#!/usr/bin/env python
"""Use the library as a protocol sandbox: sweep CBF contention timers.

Beyond reproducing the paper, the stack is a general GeoNetworking testbed.
This example sweeps TO_MAX and measures how the contention window trades
flood latency against redundant transmissions on a static chain — the kind
of tuning study EN 302 636-4-1 leaves to deployments.

Usage: python examples/custom_protocol_tuning.py
"""


from repro.geo import Position, RectangularArea
from repro.geonet import GeoNetConfig, GeoNode, StaticMobility
from repro.radio import BroadcastChannel, DSRC
from repro.security import CertificateAuthority
from repro.sim import RandomStreams, Simulator


def run_flood(to_max: float, n_nodes: int = 40, spacing: float = 100.0):
    """Flood a chain once; return (latency to last node, total broadcasts)."""
    sim = Simulator()
    streams = RandomStreams(11)
    channel = BroadcastChannel(sim, streams)
    ca = CertificateAuthority()
    config = GeoNetConfig(to_max=to_max, dist_max=DSRC.max_range_m)
    nodes = [
        GeoNode(
            sim=sim,
            channel=channel,
            config=config,
            credentials=ca.enroll(f"n{i}"),
            mobility=StaticMobility(Position(i * spacing, 0.0)),
            tx_range=DSRC.vehicle_range_m,
            rng=streams.get(f"b{i}"),
            name=f"n{i}",
        )
        for i in range(n_nodes)
    ]
    arrivals = {}
    for node in nodes:
        node.router.on_deliver.append(
            lambda n, p: arrivals.setdefault(n.name, sim.now)
        )
    sim.run_until(8.0)
    start = sim.now
    area = RectangularArea(-100, n_nodes * spacing + 100, -50, 50)
    nodes[0].originate(area, "tuning-probe")
    sim.run_until(start + 5.0)
    rebroadcasts = sum(n.router.cbf.stats.rebroadcasts for n in nodes)
    last = arrivals.get(nodes[-1].name)
    latency = None if last is None else last - start
    coverage = len(arrivals) / n_nodes
    return latency, rebroadcasts, coverage


def main() -> int:
    print("CBF contention-window sweep (40 nodes, 100 m apart, DSRC):")
    print(f"  {'TO_MAX':>8} {'flood latency':>14} {'broadcasts':>11} {'coverage':>9}")
    for to_max in (0.02, 0.05, 0.1, 0.2, 0.4):
        latency, rebroadcasts, coverage = run_flood(to_max)
        latency_txt = f"{latency * 1000:10.1f} ms" if latency else "   (failed)"
        print(
            f"  {to_max * 1000:6.0f}ms {latency_txt:>14} "
            f"{rebroadcasts:11d} {coverage:9.0%}"
        )
    print()
    print("Longer contention windows suppress more duplicates but delay the")
    print("flood roughly linearly per hop — the standard's 100 ms default is")
    print("a latency/overhead compromise.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
