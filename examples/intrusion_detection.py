#!/usr/bin/env python
"""Detect both attacks with the passive misbehavior monitors.

Deploys a :class:`~repro.core.detection.MisbehaviorDetector` on every
vehicle of the full road scenario and compares the fleet-wide alert volume
across three runs: attack-free, inter-area interception, intra-area
blockage.  The attacks are stealthy against *prevention* (the replayed
frames authenticate), but they leave clearly observable signatures.

Usage: python examples/intrusion_detection.py [duration_seconds]
"""

import collections
import sys

from repro.core.detection import MisbehaviorDetector
from repro.experiments import ExperimentConfig
from repro.experiments.world import World


def run_with_detectors(config, attacked: bool, seed: int = 5):
    world = World(config, attacked=attacked, seed=seed)
    detectors = []

    # Instrument vehicles as they (already) exist and as they spawn.
    def instrument(node):
        detectors.append(
            MisbehaviorDetector(node, plausible_range=config.vehicle_range)
        )

    for node in world.nodes.values():
        instrument(node)
    original_attach = world._attach_node

    def attach_and_instrument(vehicle):
        original_attach(vehicle)
        instrument(world.nodes[vehicle.vehicle_id])

    world.traffic.on_spawn.remove(original_attach)
    world.traffic.on_spawn.insert(0, attach_and_instrument)

    world.run()
    totals = collections.Counter()
    for detector in detectors:
        totals["replayed-beacon"] += detector.stats.replayed_beacons
        totals["implausible-position"] += detector.stats.implausible_positions
        totals["rhl-anomaly"] += detector.stats.rhl_anomalies
    return totals, len(detectors)


def main() -> int:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 30.0
    scenarios = [
        ("attack-free", ExperimentConfig.inter_area_default(duration=duration), False),
        (
            "inter-area interception",
            ExperimentConfig.inter_area_default(duration=duration),
            True,
        ),
        (
            "intra-area blockage",
            ExperimentConfig.intra_area_default(duration=duration),
            True,
        ),
    ]
    print(f"fleet-wide alerts over {duration:.0f}s (one detector per vehicle):\n")
    print(f"  {'scenario':<26} {'replayed':>9} {'implausible':>12} {'rhl':>6}")
    for label, config, attacked in scenarios:
        totals, n = run_with_detectors(config, attacked)
        print(
            f"  {label:<26} {totals['replayed-beacon']:9d} "
            f"{totals['implausible-position']:12d} {totals['rhl-anomaly']:6d}"
            f"   ({n} detectors)"
        )
    print(
        "\nAttack-free traffic is alert-silent; every attack lights up its "
        "own signature."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
