#!/usr/bin/env python
"""Evaluate the paper's §V mitigations on the full road scenario.

Runs short A/B experiments for both attacks, with and without the
standard-compatible defences:

* GF forwarding-time plausibility check (threshold: NLoS-median range)
  against the inter-area interception attack;
* CBF RHL-drop check (threshold: 3) against the intra-area blockage attack.

Usage: python examples/mitigation_evaluation.py [duration] [runs]
"""

import sys

from repro.experiments import ExperimentConfig, run_ab


def evaluate_plausibility_check(duration: float, runs: int) -> None:
    base = ExperimentConfig.inter_area_default(duration=duration)
    mitigated = base.with_(
        geonet=base.geonet.with_mitigations(plausibility_check=True)
    )
    print("GF plausibility check vs inter-area interception (wN attacker):")
    plain = run_ab(base, runs=runs)
    protected = run_ab(mitigated, runs=runs)
    print(f"  unmitigated: af={plain.af_overall:6.1%}  attacked={plain.atk_overall:6.1%}")
    print(f"  mitigated:   af={protected.af_overall:6.1%}  attacked={protected.atk_overall:6.1%}")
    print(f"  recovered {protected.atk_overall - plain.atk_overall:+.1%} points under attack;")
    print(f"  the check also lifts the attack-free baseline by "
          f"{protected.af_overall - plain.af_overall:+.1%} (stale-entry filtering).")


def evaluate_rhl_check(duration: float, runs: int) -> None:
    base = ExperimentConfig.intra_area_default(duration=duration)
    mitigated = base.with_(geonet=base.geonet.with_mitigations(rhl_check=True))
    print("CBF RHL-drop check vs intra-area blockage (mN attacker):")
    plain = run_ab(base, runs=runs)
    protected = run_ab(mitigated, runs=runs)
    print(f"  unmitigated: af={plain.af_overall:6.1%}  attacked={plain.atk_overall:6.1%}")
    print(f"  mitigated:   af={protected.af_overall:6.1%}  attacked={protected.atk_overall:6.1%}")
    print(f"  recovered {protected.atk_overall - plain.atk_overall:+.1%} points under attack.")


def main() -> int:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 60.0
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    print(f"({duration:.0f}s per run, {runs} run(s) per setting — "
          f"use 200/3+ for paper-scale numbers)\n")
    evaluate_plausibility_check(duration, runs)
    print()
    evaluate_rhl_check(duration, runs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
