#!/usr/bin/env python
"""Road-safety scenario: a blocked lane-change warning causes a collision.

Reproduces the paper's Fig 11b/Fig 13 showcase: V1 swerves around a hazard
into the opposite lane on a blind curve and broadcasts a CBF warning.  A
roadside unit at the curve's outer edge relays it to oncoming V2 — unless
the attacker, parked beside the RSU, replays the warning with transmission
power tuned so only the RSU hears it (the targeted Spot-2 variant): the RSU
cancels its relay as a "duplicate" and V2 never slows down.

Usage: python examples/collision_avoidance.py
"""

from repro.experiments.safety import compare_safety


def profile(run, vehicle: str, every_s: float = 2.0):
    """Sample a speed profile for printing."""
    speeds = run.v1_speeds if vehicle == "V1" else run.v2_speeds
    step = max(1, int(every_s / 0.1))
    return [(round(t, 1), round(v, 1)) for t, v in
            list(zip(run.times, speeds))[::step]]


def main() -> int:
    print("Running the blind-curve scenario (attack-free vs attacked)...")
    comparison = compare_safety(seed=1)
    print()
    print(comparison.format())
    print()
    for label, run in (("attack-free", comparison.af), ("attacked", comparison.atk)):
        print(f"--- {label} ---")
        if run.warning_sent_at is not None:
            print(f"  V1 broadcast its lane-change warning at t={run.warning_sent_at:.2f}s")
        if run.v2_warned_at is not None:
            print(f"  V2 received it (via the RSU relay) at t={run.v2_warned_at:.2f}s")
        else:
            print("  V2 never received the warning")
        print(f"  V1 speed profile: {profile(run, 'V1')}")
        print(f"  V2 speed profile: {profile(run, 'V2')}")
        if run.collided:
            print(f"  ==> head-on collision at t={run.collision_at:.2f}s")
        else:
            print(f"  ==> no collision; closest same-lane approach "
                  f"{run.min_gap:.1f} m")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
