#!/usr/bin/env python
"""Quickstart: build a small V2X world and watch both attacks in action.

Runs three miniature scenarios on a 2 km road:

1. attack-free baseline — a GF packet crosses the road, a CBF flood
   reaches every vehicle;
2. the inter-area interception attack — a roadside beacon replayer makes a
   forwarder unicast into the void;
3. the intra-area blockage attack — a single replayed packet with RHL=1
   silences the flood past the attacker.

Usage: python examples/quickstart.py
"""

from repro.core import InterAreaInterceptor, IntraAreaBlocker
from repro.geo import CircularArea, Position, RectangularArea
from repro.geonet import GeoNetConfig, GeoNode, StaticMobility
from repro.radio import BroadcastChannel, DSRC
from repro.security import CertificateAuthority
from repro.sim import RandomStreams, Simulator


def build_world(seed: int = 7):
    """A simulator, a channel, a CA and ten parked vehicles 250 m apart."""
    sim = Simulator()
    streams = RandomStreams(seed)
    channel = BroadcastChannel(sim, streams)
    ca = CertificateAuthority()
    config = GeoNetConfig(dist_max=DSRC.max_range_m)
    nodes = []
    for i in range(10):
        node = GeoNode(
            sim=sim,
            channel=channel,
            config=config,
            credentials=ca.enroll(f"vehicle-{i}"),
            mobility=StaticMobility(Position(i * 250.0, 0.0)),
            tx_range=DSRC.vehicle_range_m,  # 486 m NLoS median (Table II)
            rng=streams.get(f"beacon:{i}"),
            name=f"vehicle-{i}",
        )
        nodes.append(node)
    return sim, streams, channel, ca, nodes


def watch(nodes):
    """Attach delivery counters to every node."""
    received = {node.name: [] for node in nodes}
    for node in nodes:
        node.router.on_deliver.append(
            lambda n, packet: received[n.name].append(packet.body.payload)
        )
    return received


def scenario_baseline():
    print("=== 1. attack-free baseline ===")
    sim, _streams, channel, _ca, nodes = build_world()
    received = watch(nodes)
    sim.run_until(10.0)  # beacons populate every location table

    # Greedy Forwarding: vehicle-0 sends toward a small area at the far end.
    far_area = CircularArea(Position(2250.0, 0.0), 30.0)
    nodes[0].originate(far_area, "GF: road closed ahead")
    sim.run_until(12.0)
    print(f"  GF delivery at far end: {received['vehicle-9']}")

    # Contention-Based Forwarding: flood the whole segment.
    whole_road = RectangularArea(-100, 2500, -50, 50)
    nodes[0].originate(whole_road, "CBF: hazard warning")
    sim.run_until(14.0)
    flooded = sum(1 for msgs in received.values() if "CBF: hazard warning" in msgs)
    print(f"  CBF flood reached {flooded}/10 vehicles")
    print(f"  frames on air: {channel.stats.frames_sent}")


def scenario_inter_area_attack():
    print("=== 2. inter-area interception attack ===")
    sim, streams, channel, _ca, nodes = build_world()
    received = watch(nodes)
    attacker = InterAreaInterceptor(
        sim=sim,
        channel=channel,
        streams=streams,
        position=Position(1100.0, -10.0),  # roadside, mid-segment
        attack_range=DSRC.los_median_m,  # a mast with line of sight
    )
    sim.run_until(10.0)
    far_area = CircularArea(Position(2250.0, 0.0), 30.0)
    nodes[0].originate(far_area, "GF: road closed ahead")
    sim.run_until(12.0)
    print(f"  beacons replayed by the attacker: {attacker.beacons_replayed}")
    print(f"  GF delivery at far end: {received['vehicle-9']} (expected: none)")
    print(f"  unicasts lost in the void: {channel.stats.unicast_lost}")


def scenario_intra_area_attack():
    print("=== 3. intra-area blockage attack ===")
    sim, streams, channel, _ca, nodes = build_world()
    received = watch(nodes)
    attacker = IntraAreaBlocker(
        sim=sim,
        channel=channel,
        streams=streams,
        position=Position(1100.0, -10.0),
        attack_range=500.0,  # the paper's most effective range
    )
    sim.run_until(10.0)
    whole_road = RectangularArea(-100, 2500, -50, 50)
    nodes[0].originate(whole_road, "CBF: hazard warning")
    sim.run_until(12.0)
    flooded = sum(1 for msgs in received.values() if msgs)
    print(f"  packets replayed by the attacker: {attacker.packets_replayed}")
    print(f"  CBF flood reached {flooded}/10 vehicles (attack-free: 10/10)")
    blocked = [name for name, msgs in received.items() if not msgs]
    print(f"  blocked vehicles: {', '.join(blocked)}")


if __name__ == "__main__":
    scenario_baseline()
    print()
    scenario_inter_area_attack()
    print()
    scenario_intra_area_attack()
