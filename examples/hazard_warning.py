#!/usr/bin/env python
"""Traffic-efficiency scenario: a hazard warning keeps a road from jamming.

Reproduces the paper's Fig 12 showcase at reduced duration: a hazard blocks
the eastbound lanes at 3 600 m; the stopped vehicle at the event site floods
a CBF warning every second; an entrance gate stops admitting vehicles when
the warning arrives.  With the intra-area blockage attacker in the middle of
the road the warning never reaches the entrance and the jam keeps growing.

Usage: python examples/hazard_warning.py [duration_seconds]
"""

import sys

from repro.experiments.impact import compare_impact


def sparkline(values, width=60):
    """Render a vehicle-count series as a text sparkline."""
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = values[::step]
    lo, hi = min(sampled), max(sampled)
    span = max(hi - lo, 1)
    blocks = " .:-=+*#%@"
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled)


def main() -> int:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    print(f"Running the CBF hazard-warning scenario for {duration:.0f}s "
          f"(attack-free vs attacked)...")
    comparison = compare_impact("2", duration=duration, seed=3)
    print()
    print(comparison.format())
    print()
    print("eastbound vehicles over time (one sample per second):")
    print(f"  attack-free [{comparison.af.east_counts[-1]:3d} final]: "
          f"{sparkline(comparison.af.east_counts)}")
    print(f"  attacked    [{comparison.atk.east_counts[-1]:3d} final]: "
          f"{sparkline(comparison.atk.east_counts)}")
    print()
    if comparison.af.block_time is not None:
        print(f"Attack-free: the entrance closed {comparison.af.block_time:.1f}s "
              f"in; the on-road count plateaus.")
    if comparison.atk.block_time is None:
        print("Attacked: the warning never made it past the blocker — every "
              "vehicle drives into the jam.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
