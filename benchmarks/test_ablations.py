"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they probe how sensitive the reproduction is
to the modelling knobs the paper leaves implicit.
"""

import dataclasses

from repro.experiments import ExperimentConfig, run_ab


def _kw(bench_scale):
    return dict(runs=bench_scale["runs"], processes=bench_scale["processes"])


def _duration(bench_scale):
    return bench_scale["duration"]


def test_attacker_reaction_delay(benchmark, bench_scale):
    """The paper argues <=1 ms suffices; CBF timers leave ~60 ms of slack,
    so blockage should be flat across reaction delays up to ~20 ms."""

    def sweep():
        results = {}
        for delay in (0.0005, 0.005, 0.02):
            base = ExperimentConfig.intra_area_default(
                duration=_duration(bench_scale), seed=bench_scale["seed"]
            )
            config = base.with_(
                attack=dataclasses.replace(base.attack, reaction_delay=delay)
            )
            results[delay] = run_ab(config, **_kw(bench_scale)).drop_rate()
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update({f"delay={k}s": round(v, 4) for k, v in results.items()})
    drops = list(results.values())
    assert max(drops) - min(drops) < 0.2


def test_cbf_timer_bounds(benchmark, bench_scale):
    """Blockage holds across CBF contention-window choices — the attack
    beats any timer because it reacts in ~1 ms."""

    def sweep():
        results = {}
        for to_max in (0.05, 0.1, 0.2):
            base = ExperimentConfig.intra_area_default(
                duration=_duration(bench_scale), seed=bench_scale["seed"]
            )
            config = base.with_(
                geonet=dataclasses.replace(base.geonet, to_max=to_max)
            )
            results[to_max] = run_ab(config, **_kw(bench_scale)).drop_rate()
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"to_max={k}s": round(v, 4) for k, v in results.items()}
    )
    assert all(v > 0.1 for v in results.values())


def test_gf_recheck_interval(benchmark, bench_scale):
    """The hold-and-recheck cadence barely moves attack-free reception on
    the default dense road (neighbors are almost always available)."""

    def sweep():
        results = {}
        for interval in (0.25, 0.5, 1.0):
            base = ExperimentConfig.inter_area_default(
                duration=_duration(bench_scale), seed=bench_scale["seed"]
            )
            config = base.with_(
                geonet=dataclasses.replace(
                    base.geonet, gf_recheck_interval=interval
                )
            )
            results[interval] = run_ab(config, **_kw(bench_scale)).af_overall
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"recheck={k}s": round(v, 4) for k, v in results.items()}
    )
    values = list(results.values())
    assert max(values) - min(values) < 0.25


def test_plausibility_threshold(benchmark, bench_scale):
    """Sweep the §V-A threshold around the 486 m default: tighter keeps
    blocking the attack; much looser lets poisoned entries back in."""

    def sweep():
        results = {}
        for threshold in (350.0, 486.0, 900.0):
            base = ExperimentConfig.inter_area_default(
                duration=_duration(bench_scale), seed=bench_scale["seed"]
            )
            config = base.with_(
                geonet=dataclasses.replace(
                    base.geonet,
                    plausibility_check=True,
                    plausibility_threshold=threshold,
                ),
                attack=dataclasses.replace(base.attack, attack_range=486.0),
            )
            results[threshold] = run_ab(config, **_kw(bench_scale)).atk_overall
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"threshold={k}m": round(v, 4) for k, v in results.items()}
    )
    # A threshold at the radio range keeps reception healthy under attack;
    # a threshold way beyond it readmits unreachable picks.
    assert results[486.0] > results[900.0]


def test_rhl_threshold(benchmark, bench_scale):
    """Sweep the §V-B drop threshold: any small value defeats the RHL=1
    rewrite; a huge value degenerates to unmitigated CBF."""

    def sweep():
        results = {}
        for threshold in (1, 3, 20):
            base = ExperimentConfig.intra_area_default(
                duration=_duration(bench_scale), seed=bench_scale["seed"]
            )
            config = base.with_(
                geonet=dataclasses.replace(
                    base.geonet, rhl_check=True, rhl_drop_threshold=threshold
                )
            )
            results[threshold] = run_ab(config, **_kw(bench_scale)).atk_overall
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"threshold={k}": round(v, 4) for k, v in results.items()}
    )
    assert results[3] > results[20]


def test_loct_extrapolation(benchmark, bench_scale):
    """GF with vs without LocTE PV extrapolation (EN 302 636-4-1 keeps PVs
    current; the flag quantifies how much that choice shapes the baseline
    and the attack)."""

    def sweep():
        results = {}
        for flag in (True, False):
            base = ExperimentConfig.inter_area_default(
                duration=_duration(bench_scale), seed=bench_scale["seed"]
            )
            config = base.with_(
                geonet=dataclasses.replace(base.geonet, loct_extrapolation=flag)
            )
            ab = run_ab(config, **_kw(bench_scale))
            results[flag] = (ab.af_overall, ab.drop_rate())
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for flag, (af, drop) in results.items():
        benchmark.extra_info[f"extrapolation={flag} af"] = round(af, 4)
        benchmark.extra_info[f"extrapolation={flag} drop"] = round(drop, 4)
    # Both variants leave the attack effective.
    assert all(drop > 0.1 for _af, drop in results.values())
