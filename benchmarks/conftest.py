"""Benchmark configuration.

Each benchmark regenerates one paper artefact end-to-end.  Scale is
controlled by environment variables so the same targets serve both a quick
laptop check and a full paper-scale regeneration:

* ``REPRO_BENCH_DURATION`` — simulated seconds per run (default 40; the
  paper uses 200);
* ``REPRO_BENCH_RUNS`` — A/B runs per setting (default 1; the paper uses
  100);
* ``REPRO_BENCH_PROCESSES`` — worker processes (default 1).

Measured drop rates and reception levels are attached to each benchmark's
``extra_info`` so the JSON output doubles as an experiment record.
"""

from __future__ import annotations

import os

import pytest


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_scale():
    return {
        "duration": _env_float("REPRO_BENCH_DURATION", 40.0),
        "runs": _env_int("REPRO_BENCH_RUNS", 1),
        "processes": _env_int("REPRO_BENCH_PROCESSES", 1),
        "seed": _env_int("REPRO_BENCH_SEED", 1),
    }


def record_series(benchmark, figure_result) -> None:
    """Attach a FigureResult's headline numbers to the benchmark record."""
    for series in figure_result.series:
        drop = series.drop
        benchmark.extra_info[f"{series.label} drop"] = (
            None if drop is None else round(drop, 4)
        )
        benchmark.extra_info[f"{series.label} af"] = round(
            series.result.af_overall, 4
        )
        benchmark.extra_info[f"{series.label} atk"] = round(
            series.result.atk_overall, 4
        )
