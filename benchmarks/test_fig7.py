"""Fig 7 benchmarks: inter-area interception effectiveness panels.

Paper reference values (γ, 100 runs x 200 s): (a) DSRC wN/mN/mL =
46.8/~98/99.9 %, (b) C-V2X wN/mL = 35.2/100 %, (c) TTL 20/10/5 s =
46.8/46.2/37.4 %, (d) density-insensitive, (e) two-direction 58.3 %.
"""

from conftest import record_series

from repro.experiments.figures import fig7


def _kw(bench_scale):
    return dict(
        runs=bench_scale["runs"],
        duration=bench_scale["duration"],
        processes=bench_scale["processes"],
        seed=bench_scale["seed"],
    )


def test_fig7a(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig7.fig7a(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    # Shape: the mN/mL attackers intercept essentially everything.
    assert result.get("mN").result.atk_overall <= 0.1
    assert result.get("mL").result.atk_overall <= 0.1
    # And the attack always hurts relative to attack-free.
    for series in result.series:
        assert series.result.atk_overall < series.result.af_overall


def test_fig7b(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig7.fig7b(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    assert result.get("mL").result.atk_overall <= 0.1


def test_fig7c(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig7.fig7c(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    # The mN attacker stays near-total even at the shortest TTL (97.9 %).
    assert result.get("ttl=5s,mN").result.atk_overall <= 0.1


def test_fig7d(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig7.fig7d(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    # Density-insensitive: the attack bites at every spacing.
    for series in result.series:
        assert series.result.atk_overall < series.result.af_overall


def test_fig7e(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig7.fig7e(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    one_dir = result.get("1 direction(s)").result
    two_dir = result.get("2 direction(s)").result
    # GF's baseline is less efficient on two-direction roads (paper §IV-A).
    assert two_dir.af_overall < one_dir.af_overall
