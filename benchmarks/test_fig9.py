"""Fig 9 benchmarks: intra-area blockage effectiveness panels.

Paper reference values (λ, 100 runs x 200 s): (a) DSRC mN = 38.5 % with mL
*weaker* than mN; (b) C-V2X mN = 35.8 %; (c) TTL-insensitive
(38.5/38.2/37.9 %); (d) density-insensitive (~38 %); (e) directions-
insensitive (38.5/38 %); 500 m is the most effective range; sources in the
fully covered area suffer 62.8 % vs 37.2 % outside.
"""

from conftest import record_series

from repro.experiments.figures import fig9


def _kw(bench_scale):
    return dict(
        runs=bench_scale["runs"],
        duration=bench_scale["duration"],
        processes=bench_scale["processes"],
        seed=bench_scale["seed"],
    )


def test_fig9a(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig9.fig9a(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    # Attack-free CBF reaches essentially everyone.
    assert result.get("mN").result.af_overall > 0.9
    # mN blocks a sizeable fraction; mL is *less* effective than mN
    # (the replay itself delivers to most of the road).
    assert result.get("mN").drop > 0.2
    assert result.get("mL").drop < result.get("mN").drop


def test_fig9b(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig9.fig9b(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    assert result.get("mN").drop > 0.2


def test_fig9c(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig9.fig9c(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    # CBF never consults the LocT: λ is TTL-flat (within noise).
    drops = [series.drop for series in result.series]
    assert max(drops) - min(drops) < 0.2


def test_fig9d(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig9.fig9d(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    for series in result.series:
        assert series.drop > 0.1


def test_fig9e(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig9.fig9e(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    drops = [series.drop for series in result.series]
    assert max(drops) - min(drops) < 0.2


def test_attack_range_tuning(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig9.attack_range_tuning(
            ranges=(400.0, 500.0, 700.0), **_kw(bench_scale)
        ),
        rounds=1,
        iterations=1,
    )
    record_series(benchmark, result)
    # ~500 m (just above the 486 m vehicle range) beats a much larger range.
    assert result.get("range=500m").drop >= result.get("range=700m").drop - 0.05


def test_source_location_study(benchmark, bench_scale):
    study = benchmark.pedantic(
        lambda: fig9.source_location_study(
            attack_range=500.0, **_kw(bench_scale)
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["fully_covered_interval"] = study.fully_covered_interval
    benchmark.extra_info["inside_blockage"] = study.inside_blockage
    benchmark.extra_info["outside_blockage"] = study.outside_blockage
    assert study.fully_covered_interval == (1986.0, 2014.0)
    # The 28 m zone sees few sources at bench scale; only check the split
    # when both groups have data.
    if study.inside_blockage is not None and study.outside_blockage is not None:
        assert study.inside_blockage >= study.outside_blockage - 0.1
