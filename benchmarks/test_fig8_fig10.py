"""Fig 8 / Fig 10 benchmarks: accumulated drop rates over time."""

from conftest import record_series

from repro.experiments.figures import fig8, fig10


def _kw(bench_scale):
    return dict(
        runs=bench_scale["runs"],
        duration=bench_scale["duration"],
        processes=bench_scale["processes"],
        seed=bench_scale["seed"],
    )


def test_fig8(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig8.figure8(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    labels = [series.label for series in result.series]
    assert labels == [
        "mL_dflt",
        "mN_dflt",
        "wN_dflt",
        "wN_ttl10",
        "wN_ttl5",
        "wN_i100",
        "wN_i300",
        "wN_2dir",
    ]
    # Cumulative series exist for every scenario and end near the overall γ.
    for series in result.series:
        cumulative = series.result.cumulative_drops()
        assert len(cumulative) == series.result.config.n_bins
    # The mL attacker ends with (near-)total interception.
    assert result.get("mL_dflt").drop > 0.9


def test_fig10(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig10.figure10(**_kw(bench_scale)), rounds=1, iterations=1
    )
    record_series(benchmark, result)
    assert [series.label for series in result.series] == [
        "wN_dflt",
        "mN_dflt",
        "mL_dflt",
        "mN_ttl5",
        "mN_i100",
        "mN_i300",
        "mN_2dir",
    ]
    # "The attack coverage is the only factor impacting the attack
    # effectiveness": the mN variants cluster together...
    mn_drops = [
        result.get(label).drop
        for label in ("mN_dflt", "mN_ttl5", "mN_i100", "mN_2dir")
    ]
    assert max(mn_drops) - min(mn_drops) < 0.25
    # ...and increasing the range to mL does not increase blockage.
    assert result.get("mL_dflt").drop <= result.get("mN_dflt").drop + 0.05
