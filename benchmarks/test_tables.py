"""Benchmarks for Tables I and II (configuration tables)."""

from repro.experiments.figures.tables import table1, table2


def test_table1_idm_parameters(benchmark):
    text = benchmark(table1)
    assert "Desired velocity" in text
    assert "30 m/s" in text


def test_table2_communication_ranges(benchmark):
    text = benchmark(table2)
    assert "1,283" in text and "359" in text
