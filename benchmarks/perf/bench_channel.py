"""Performance benchmark harness for the radio channel's spatial index.

Times the three layers the grid refactor touches and emits a
machine-readable report:

* **dense-channel microbenchmark** — 500 interfaces at 30 m spacing
  beaconing at 10 Hz (the ISSUE's acceptance scenario): end-to-end event
  throughput plus per-call ``transmit`` and receiver-selection cost.
* **neighbor-query scaling** — the same microbenchmarks at 300 m spacing
  with N = 500…4000 interfaces, where the O(N)->O(k) selection asymptotics
  show: the linear scan grows with N while the grid stays flat.
* **full World runs** — three traffic densities of the paper's inter-area
  scenario, reported through :class:`repro.experiments.reporting.PerfSnapshot`.

Each section also runs the in-harness A/B against the linear-scan fallback
(``use_spatial_index=False`` / ``channel_use_spatial_index=False``), and the
report embeds ``pre_change_reference`` — the same workloads measured at the
pre-change seed commit (e78bade) on the reference machine — so speedups are
stated against real pre-change code, not just against the fallback path.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_channel.py [--quick] [--out PATH]

``--quick`` shrinks repetitions and run durations so the whole harness
finishes in a few seconds (used by the ``-m perf`` smoke test); the emitted
JSON has the same shape.  All timings use best-of-``reps`` minima to damp
scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import PerfSnapshot
from repro.experiments.world import World
from repro.geo.position import Position
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.frames import FrameKind
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

TX_RANGE = 486.0  # DSRC NLoS-median vehicle range (paper §IV)

#: The same workloads, measured at the pre-change seed commit (e78bade) on
#: the reference machine (1-vCPU Linux, CPython 3.11): best-of-3 minima of
#: alternating seed/current process runs via a seed-commit git worktree and
#: this script's bench functions.  ``dense500`` is 30 m spacing; the
#: ``n*`` entries are 300 m spacing.  World runs: inter-area attacked,
#: duration 20 s, seed 7, best of 4 alternating runs.
PRE_CHANGE_REFERENCE = {
    "commit": "e78bade",
    "machine": "reference (1 vCPU Linux, CPython 3.11)",
    "microbenchmarks": {
        "dense500": {
            "transmit_call_us": 94.49,
            "receivers_for_us": 15.96,
            "end_to_end_tx_per_s": 6051.0,
        },
        "n500": {
            "transmit_call_us": 19.70,
            "receivers_for_us": 9.35,
            "end_to_end_tx_per_s": 34299.0,
        },
        "n1000": {
            "transmit_call_us": 22.30,
            "receivers_for_us": 12.04,
            "end_to_end_tx_per_s": 32733.0,
        },
        "n2000": {
            "transmit_call_us": 25.66,
            "receivers_for_us": 16.23,
            "end_to_end_tx_per_s": 25029.0,
        },
        "n4000": {
            "transmit_call_us": 35.79,
            "receivers_for_us": 24.04,
            "end_to_end_tx_per_s": 19810.0,
        },
    },
    "world_runs": {
        "20": {"wall_s": 2.165, "tx_per_wall_s": 1384.0, "frames_sent": 2996},
        "30": {"wall_s": 1.062, "tx_per_wall_s": 1947.0, "frames_sent": 2068},
        "60": {"wall_s": 0.341, "tx_per_wall_s": 3207.0, "frames_sent": 1095},
    },
    "post_change_on_reference_machine": {
        "dense500": {
            "transmit_call_us": 46.81,
            "receivers_for_us": 13.64,
            "end_to_end_tx_per_s": 13949.0,
        },
        "n500": {
            "transmit_call_us": 10.54,
            "receivers_for_us": 4.26,
            "end_to_end_tx_per_s": 65893.0,
        },
        "n1000": {
            "transmit_call_us": 10.83,
            "receivers_for_us": 4.32,
            "end_to_end_tx_per_s": 63329.0,
        },
        "n2000": {
            "transmit_call_us": 10.86,
            "receivers_for_us": 4.30,
            "end_to_end_tx_per_s": 63655.0,
        },
        "n4000": {
            "transmit_call_us": 11.09,
            "receivers_for_us": 4.41,
            "end_to_end_tx_per_s": 57996.0,
        },
        "world_runs": {
            "20": {"wall_s": 1.417, "tx_per_wall_s": 2114.0},
            "30": {"wall_s": 0.711, "tx_per_wall_s": 2907.0},
            "60": {"wall_s": 0.257, "tx_per_wall_s": 4260.0},
        },
    },
}


# ----------------------------------------------------------------------
# channel microbenchmarks
# ----------------------------------------------------------------------
def build_channel(n: int, spacing: float, *, use_grid: bool):
    """A standalone channel with ``n`` interfaces on a 250-wide lattice.

    Rows are spaced ``spacing * 50`` apart so tx_range only reaches along a
    row — neighborhood size k is set by ``spacing``, not by n.
    """
    sim = Simulator()
    ch = BroadcastChannel(sim, RandomStreams(1), use_spatial_index=use_grid)
    ifaces = []
    for i in range(n):
        p = Position((i % 250) * spacing, (i // 250) * spacing * 50)
        iface = RadioInterface(lambda p=p: p, TX_RANGE)
        iface.attach(lambda frame: None)
        ch.register(iface)
        ifaces.append(iface)
    return sim, ch, ifaces


def bench_transmit_call(n, spacing, *, use_grid, reps, rounds=3):
    """Best-of-``reps`` per-call cost of transmit (selection + enqueue), us."""
    sim, ch, ifaces = build_channel(n, spacing, use_grid=use_grid)
    best = float("inf")
    for _ in range(reps):
        start_sent = ch.stats.frames_sent
        t0 = time.perf_counter()
        for _ in range(rounds):
            for iface in ifaces:
                iface.send(FrameKind.BEACON, b"x" * 32)
        dt = time.perf_counter() - t0
        best = min(best, dt / (ch.stats.frames_sent - start_sent))
        sim.run_until(sim.now + 1.0)  # drain deliveries (untimed)
        ch._active_tx = []  # reset carrier-sense backlog between reps
    return best * 1e6


def bench_receivers_for(n, spacing, *, use_grid, reps, rounds=6):
    """Best-of-``reps`` per-call cost of the receiver-selection path, us."""
    sim, ch, ifaces = build_channel(n, spacing, use_grid=use_grid)
    frames = [iface.send(FrameKind.BEACON, b"x") for iface in ifaces]
    sim.run_until(1.0)
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(rounds):
            for iface, frame in zip(ifaces, frames):
                ch._receivers_for(frame, iface)
        best = min(best, (time.perf_counter() - t0) / (rounds * n))
    return best * 1e6


def bench_end_to_end(n, spacing, *, use_grid, reps, duration):
    """10 Hz staggered beaconing through the full event loop, tx/s."""
    best = float("inf")
    sent = 0
    for _ in range(reps):
        sim, ch, ifaces = build_channel(n, spacing, use_grid=use_grid)

        def beacon(iface):
            iface.send(FrameKind.BEACON, b"x" * 32)
            sim.schedule(0.1, beacon, iface)

        for k, iface in enumerate(ifaces):
            sim.schedule(k / n * 0.1, beacon, iface)
        t0 = time.perf_counter()
        sim.run_until(duration)
        best = min(best, time.perf_counter() - t0)
        sent = ch.stats.frames_sent
    return sent / best


def microbenchmark(n, spacing, *, use_grid, reps, e2e_duration):
    return {
        "transmit_call_us": round(
            bench_transmit_call(n, spacing, use_grid=use_grid, reps=reps), 2
        ),
        "receivers_for_us": round(
            bench_receivers_for(n, spacing, use_grid=use_grid, reps=reps), 2
        ),
        "end_to_end_tx_per_s": round(
            bench_end_to_end(
                n, spacing, use_grid=use_grid, reps=reps, duration=e2e_duration
            ),
            0,
        ),
    }


# ----------------------------------------------------------------------
# full World runs
# ----------------------------------------------------------------------
def bench_world(spacing, *, use_grid, reps, duration):
    """One attacked inter-area World per rep; best wall time + counters."""
    best_wall = float("inf")
    snapshot = None
    config = ExperimentConfig.inter_area_default(duration=duration, seed=7)
    config = replace(
        config,
        road=replace(config.road, inter_vehicle_space=spacing),
        channel_use_spatial_index=use_grid,
    )
    for _ in range(reps):
        world = World(config, attacked=True)
        t0 = time.perf_counter()
        world.run()
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall = wall
            snapshot = PerfSnapshot.from_world(world)
    return {
        "wall_s": round(best_wall, 3),
        "tx_per_wall_s": round(snapshot.frames_sent / best_wall, 0),
        "frames_sent": snapshot.frames_sent,
        "frames_delivered": snapshot.frames_delivered,
        "events_fired": snapshot.events_fired,
        "events_per_wall_s": round(snapshot.events_fired / best_wall, 0),
        "mean_receivers_per_frame": round(snapshot.mean_receivers_per_frame, 2),
        "mean_candidates_per_frame": round(snapshot.mean_candidates_per_frame, 2),
    }


def _speedup(pre, post, metric):
    """pre/post for us-per-call metrics, post/pre for throughput metrics."""
    if metric.endswith("_us") or metric == "wall_s":
        return round(pre / post, 2) if post else None
    return round(post / pre, 2) if pre else None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single-rep short runs for the -m perf smoke test",
    )
    parser.add_argument(
        "--ns",
        default=None,
        help=(
            "comma-separated interface counts for the scaling sweep "
            "(same flag as bench_fleet.py, e.g. --ns 500,5000,50000)"
        ),
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "BENCH_channel.json"),
        help="output JSON path ('-' for stdout only)",
    )
    args = parser.parse_args(argv)

    reps = 1 if args.quick else 3
    e2e_duration = 0.25 if args.quick else 1.0
    world_duration = 4.0 if args.quick else 20.0
    scaling_ns = (500, 1000) if args.quick else (500, 1000, 2000, 4000)
    if args.ns:
        scaling_ns = tuple(int(s) for s in args.ns.split(","))
    world_spacings = (30.0,) if args.quick else (20.0, 30.0, 60.0)

    report = {
        "meta": {
            "mode": "quick" if args.quick else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "best_of": reps,
            "tx_range_m": TX_RANGE,
            "methodology": (
                "All numbers are best-of-N minima. 'scan' columns are the "
                "in-harness linear-scan fallback (use_spatial_index=False), "
                "measured in the same process — speedup_vs_scan isolates "
                "the grid's contribution and is immune to machine-load "
                "drift, but understates the PR's total gain because the "
                "fallback also benefits from the event-loop optimizations. "
                "The authoritative pre/post comparison is "
                "'pre_change_reference': alternating seed-commit (e78bade, "
                "via git worktree) vs post-change process runs on the "
                "reference machine, paired within the same load period. "
                "speedup_vs_pre_change compares this live run against that "
                "capture and inherits any cross-period load drift."
            ),
        },
        "pre_change_reference": PRE_CHANGE_REFERENCE,
    }

    # --- dense-channel microbenchmark (the acceptance scenario) --------
    dense = {
        "n_interfaces": 500,
        "spacing_m": 30.0,
        "beacon_hz": 10.0,
        "grid": microbenchmark(
            500, 30.0, use_grid=True, reps=reps, e2e_duration=e2e_duration
        ),
        "scan": microbenchmark(
            500, 30.0, use_grid=False, reps=reps, e2e_duration=e2e_duration
        ),
    }
    ref = PRE_CHANGE_REFERENCE["microbenchmarks"]["dense500"]
    dense["speedup_vs_scan"] = {
        m: _speedup(dense["scan"][m], dense["grid"][m], m) for m in ref
    }
    dense["speedup_vs_pre_change"] = {
        m: _speedup(ref[m], dense["grid"][m], m) for m in ref
    }
    report["dense_channel_microbenchmark"] = dense

    # --- neighbor-query scaling ---------------------------------------
    scaling = {"spacing_m": 300.0, "by_n": {}}
    for n in scaling_ns:
        entry = {
            "grid": microbenchmark(
                n, 300.0, use_grid=True, reps=reps, e2e_duration=e2e_duration
            ),
            "scan": microbenchmark(
                n, 300.0, use_grid=False, reps=reps, e2e_duration=e2e_duration
            ),
        }
        metrics = ("transmit_call_us", "receivers_for_us", "end_to_end_tx_per_s")
        entry["speedup_vs_scan"] = {
            m: _speedup(entry["scan"][m], entry["grid"][m], m) for m in metrics
        }
        ref = PRE_CHANGE_REFERENCE["microbenchmarks"].get(f"n{n}")
        if ref:
            entry["speedup_vs_pre_change"] = {
                m: _speedup(ref[m], entry["grid"][m], m) for m in ref
            }
        scaling["by_n"][str(n)] = entry
    report["neighbor_query_scaling"] = scaling

    # --- full World runs (A/B: grid vs linear-scan fallback) -----------
    worlds = {"scenario": "inter-area attacked, seed 7", "by_spacing": {}}
    for spacing in world_spacings:
        entry = {
            "grid": bench_world(
                spacing, use_grid=True, reps=reps, duration=world_duration
            ),
            "scan": bench_world(
                spacing, use_grid=False, reps=reps, duration=world_duration
            ),
        }
        if entry["grid"]["frames_sent"] != entry["scan"]["frames_sent"]:
            raise AssertionError(
                "grid/scan World runs diverged — equivalence broken"
            )
        entry["speedup_vs_scan"] = {
            "wall_s": _speedup(entry["scan"]["wall_s"], entry["grid"]["wall_s"], "wall_s")
        }
        ref = PRE_CHANGE_REFERENCE["world_runs"].get(str(int(spacing)))
        if ref and not args.quick:
            entry["speedup_vs_pre_change"] = {
                "wall_s": _speedup(ref["wall_s"], entry["grid"]["wall_s"], "wall_s")
            }
        worlds["by_spacing"][str(int(spacing))] = entry
    report["world_runs"] = worlds

    # --- headline summary ---------------------------------------------
    ref = PRE_CHANGE_REFERENCE
    post = ref["post_change_on_reference_machine"]
    report["summary"] = {
        "headline": (
            "receiver selection is O(k) instead of O(N): on the reference "
            "machine 3.8x faster at N=2000 and 5.5x at N=4000 "
            "(16.23->4.30 us, 24.04->4.41 us); the dense 500-interface "
            "10 Hz microbenchmark runs 2.3x faster end-to-end "
            "(6051->13949 tx/s) and full World runs 1.3-1.5x faster."
        ),
        "reference_machine_speedups": {
            "receivers_for_n2000": _speedup(
                ref["microbenchmarks"]["n2000"]["receivers_for_us"],
                post["n2000"]["receivers_for_us"],
                "receivers_for_us",
            ),
            "receivers_for_n4000": _speedup(
                ref["microbenchmarks"]["n4000"]["receivers_for_us"],
                post["n4000"]["receivers_for_us"],
                "receivers_for_us",
            ),
            "dense500_end_to_end": _speedup(
                ref["microbenchmarks"]["dense500"]["end_to_end_tx_per_s"],
                post["dense500"]["end_to_end_tx_per_s"],
                "end_to_end_tx_per_s",
            ),
            "world_wall_time_20m": _speedup(
                ref["world_runs"]["20"]["wall_s"],
                post["world_runs"]["20"]["wall_s"],
                "wall_s",
            ),
        },
    }

    payload = json.dumps(report, indent=2, sort_keys=False)
    if args.out != "-":
        Path(args.out).write_text(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
