"""Smoke test for the perf harness (run with ``pytest -m perf``).

Excluded from tier-1 (the default test paths don't collect ``benchmarks/``
and the ``perf`` marker keeps it opt-in even when this directory is given
explicitly).  Asserts the harness's --quick mode finishes fast and emits
well-formed JSON — it does not assert any speedup, since CI machines vary.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
HARNESS = Path(__file__).parent / "bench_channel.py"
FLEET_HARNESS = Path(__file__).parent / "bench_fleet.py"


def test_quick_harness_emits_valid_json_under_30s(tmp_path):
    out_path = tmp_path / "bench.json"
    env = {"PYTHONPATH": str(REPO_ROOT / "src")}
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, str(HARNESS), "--quick", "--out", str(out_path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    elapsed = time.perf_counter() - t0
    assert proc.returncode == 0, proc.stderr
    assert elapsed < 30.0, f"--quick harness took {elapsed:.1f}s"

    report = json.loads(out_path.read_text())
    assert report == json.loads(proc.stdout)  # stdout mirrors the file
    assert report["meta"]["mode"] == "quick"
    for section in (
        "pre_change_reference",
        "dense_channel_microbenchmark",
        "neighbor_query_scaling",
        "world_runs",
        "summary",
    ):
        assert section in report, f"missing section {section}"

    dense = report["dense_channel_microbenchmark"]
    for mode in ("grid", "scan"):
        for metric in (
            "transmit_call_us",
            "receivers_for_us",
            "end_to_end_tx_per_s",
        ):
            assert dense[mode][metric] > 0

    # grid and scan World runs must stay behaviorally identical
    for entry in report["world_runs"]["by_spacing"].values():
        assert entry["grid"]["frames_sent"] == entry["scan"]["frames_sent"]


def test_quick_fleet_harness_emits_valid_json_under_60s(tmp_path):
    out_path = tmp_path / "bench_fleet.json"
    env = {"PYTHONPATH": str(REPO_ROOT / "src")}
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, str(FLEET_HARNESS), "--quick", "--out", str(out_path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=180,
    )
    elapsed = time.perf_counter() - t0
    assert proc.returncode == 0, proc.stderr
    assert elapsed < 60.0, f"--quick fleet harness took {elapsed:.1f}s"

    report = json.loads(out_path.read_text())
    assert report["meta"]["mode"] == "quick"
    for section in (
        "dense_fleet_microbenchmark",
        "fleet_beacon_scaling",
        "mobility_step_scaling",
        "world_runs",
        "world_scale_run",
        "summary",
    ):
        assert section in report, f"missing section {section}"

    dense = report["dense_fleet_microbenchmark"]
    assert dense["fleet_batched"]["end_to_end_tx_per_s"] > 0
    assert dense["channel_grid_live"]["end_to_end_tx_per_s"] > 0
    # Budget keyed off the checked-in BENCH_channel.json grid capture:
    # the measured ratio is ~6x on the reference machine; 2x leaves
    # generous headroom for slower/noisier CI machines while still
    # catching a batched path that regressed to per-object speed.
    ref = report.get("dense_fleet_microbenchmark", {}).get(
        "channel_grid_reference"
    )
    if ref is not None:
        assert (
            dense["fleet_batched"]["end_to_end_tx_per_s"]
            >= 2.0 * ref["end_to_end_tx_per_s"]
        ), "batched beacon loop lost its edge over the per-interface path"

    # Obstruction fallback guard: with a Manhattan shadowing model
    # registered, every delivery sweep routes through the vectorised
    # Channel.block_mask path.  Compared within the same run (machine
    # drift cancels out), the obstructed dense-500 loop must keep at
    # least half the clear-channel throughput — i.e. the urban scenario
    # pack must not regress the BENCH_fleet.json dense-500 scenario by
    # more than 2x.
    obstructed = dense["fleet_batched_obstructed"]
    assert obstructed["end_to_end_tx_per_s"] > 0
    assert obstructed["beacons_sent"] > 0
    assert (
        obstructed["end_to_end_tx_per_s"]
        >= 0.5 * dense["fleet_batched"]["end_to_end_tx_per_s"]
    ), "obstruction fallback regressed the dense-500 beacon loop by >2x"

    for entry in report["fleet_beacon_scaling"]["by_n"].values():
        assert entry["beacons_sent"] > 0
        assert entry["end_to_end_tx_per_s"] > 0
    for entry in report["mobility_step_scaling"]["by_n"].values():
        assert entry["batched"]["n_vehicles"] == entry["legacy"]["n_vehicles"]
        assert entry["batched"]["step_us"] > 0

    # The batched World must source comparable traffic to the legacy one
    # (outcome-equivalence; exact counts differ across jitter streams).
    worlds = report["world_runs"]
    legacy_sent = worlds["legacy"]["frames_sent"]
    assert abs(worlds["batched"]["frames_sent"] - legacy_sent) / legacy_sent < 0.2
    scale = report["world_scale_run"]
    assert scale["n_nodes"] > 1000
    assert scale["beacons_sent"] > 0
