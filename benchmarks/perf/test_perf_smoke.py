"""Smoke test for the perf harness (run with ``pytest -m perf``).

Excluded from tier-1 (the default test paths don't collect ``benchmarks/``
and the ``perf`` marker keeps it opt-in even when this directory is given
explicitly).  Asserts the harness's --quick mode finishes fast and emits
well-formed JSON — it does not assert any speedup, since CI machines vary.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
HARNESS = Path(__file__).parent / "bench_channel.py"


def test_quick_harness_emits_valid_json_under_30s(tmp_path):
    out_path = tmp_path / "bench.json"
    env = {"PYTHONPATH": str(REPO_ROOT / "src")}
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, str(HARNESS), "--quick", "--out", str(out_path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    elapsed = time.perf_counter() - t0
    assert proc.returncode == 0, proc.stderr
    assert elapsed < 30.0, f"--quick harness took {elapsed:.1f}s"

    report = json.loads(out_path.read_text())
    assert report == json.loads(proc.stdout)  # stdout mirrors the file
    assert report["meta"]["mode"] == "quick"
    for section in (
        "pre_change_reference",
        "dense_channel_microbenchmark",
        "neighbor_query_scaling",
        "world_runs",
        "summary",
    ):
        assert section in report, f"missing section {section}"

    dense = report["dense_channel_microbenchmark"]
    for mode in ("grid", "scan"):
        for metric in (
            "transmit_call_us",
            "receivers_for_us",
            "end_to_end_tx_per_s",
        ):
            assert dense[mode][metric] > 0

    # grid and scan World runs must stay behaviorally identical
    for entry in report["world_runs"]["by_spacing"].values():
        assert entry["grid"]["frames_sent"] == entry["scan"]["frames_sent"]
