"""Performance benchmark harness for the struct-of-arrays fleet path.

Times the batched hot loops the fleet refactor introduces
(:mod:`repro.geonet.fleet`) and emits a machine-readable report:

* **dense-fleet microbenchmark** — the same acceptance scenario as
  ``bench_channel.py``'s dense500 (500 radios at 30 m spacing beaconing
  at 10 Hz), but driven through :class:`FleetBeaconScheduler`'s batched
  tick instead of N per-interface ``transmit`` calls.  The report
  compares against the channel-grid path measured live in the same
  process *and* against the checked-in ``BENCH_channel.json`` grid
  numbers.
* **fleet scaling** — the batched end-to-end beacon loop at
  N = 500 / 5 000 / 50 000 members, where the O(ticks) event heap and the
  vectorised neighbor sweep keep per-beacon cost flat.
* **mobility scaling** — one mobility step (IDM + position propagation
  to the radio layer) at the same N, batched SoA writeback +
  ``SpatialGrid.move_many`` vs the legacy per-interface lazy refresh.
* **full World runs** — the fig-7 inter-area attacked scenario A/B
  (``fleet_use_batched`` on/off), plus one *city-scale* batched World at
  ~50 000 nodes that the per-object path cannot reasonably run.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_fleet.py [--quick] [--ns N,N,...] [--out PATH]

``--quick`` shrinks repetitions, durations and the N sweep so the whole
harness finishes in under a minute (used by the ``-m perf`` smoke test);
the emitted JSON has the same shape.  ``--ns`` overrides the member-count
sweep (same flag as ``bench_channel.py``).  All timings are
best-of-``reps`` minima to damp scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import PerfSnapshot
from repro.experiments.world import World
from repro.geo.position import Position
from repro.geonet.fleet import FleetBeaconScheduler, FleetState
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.shadowing import ManhattanShadowing
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.idm import IdmParameters
from repro.traffic.road import RoadSegment
from repro.traffic.simulation import TrafficSimulation

sys.path.insert(0, str(Path(__file__).parent))
from bench_channel import bench_end_to_end as bench_channel_end_to_end  # noqa: E402

TX_RANGE = 486.0  # DSRC NLoS-median vehicle range (paper §IV)
BEACON_HZ = 10.0  # matches bench_channel's dense-channel cadence


def load_channel_grid_reference():
    """The checked-in channel-grid dense500 numbers, if present."""
    path = Path(__file__).with_name("BENCH_channel.json")
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    return data["dense_channel_microbenchmark"]["grid"]


class _Member:
    """Minimal fleet member for transport-level benchmarks."""

    __slots__ = ("iface",)

    def __init__(self, iface):
        self.iface = iface


# ----------------------------------------------------------------------
# batched beacon loop (transport level)
# ----------------------------------------------------------------------
def build_fleet(n: int, spacing: float):
    """A standalone channel + fleet, same lattice as ``bench_channel``.

    Rows are 250 wide and spaced ``spacing * 50`` apart so tx_range only
    reaches along a row — neighborhood size k is set by ``spacing``.
    """
    sim = Simulator()
    ch = BroadcastChannel(sim, RandomStreams(1))
    fleet = FleetState(ch, capacity=max(256, n))
    members = []
    for i in range(n):
        p = Position((i % 250) * spacing, (i // 250) * spacing * 50)
        iface = RadioInterface(lambda p=p: p, TX_RANGE)
        iface.attach(lambda frame: None)
        ch.register(iface)
        member = _Member(iface)
        fleet.add(member, iface, x=p.x, y=p.y, tx_range=TX_RANGE)
        members.append(member)
    return sim, ch, fleet, members


def make_shadowing(n, spacing):
    """A Manhattan shadowing model spanning the benchmark lattice.

    Street count tracks the lattice extent (~one vertical street per
    10 columns) so the per-street corridor loops in ``blocks_many`` are
    exercised at a realistic urban density, not a degenerate 2x2.
    """
    extent = min(250, n) * spacing
    streets = max(2, int(extent // (10 * spacing)) + 1)
    block = extent / (streets - 1)
    return ManhattanShadowing.for_grid(
        streets, streets, block, half_width=6.0, corner_clearance=15.0
    )


def bench_fleet_end_to_end(n, spacing, *, reps, duration, obstruction=None):
    """10 Hz beaconing through the batched tick + full event loop, tx/s.

    The fleet counterpart of ``bench_channel.bench_end_to_end``: same
    lattice, same cadence, same null payload/sink — but one tick event
    per dt instead of one timer event per member, and one vectorised
    neighbor sweep per tick instead of N grid queries.  With
    ``obstruction`` set, every delivery sweep additionally routes through
    :meth:`BroadcastChannel.block_mask` — the vectorised obstruction
    fallback the urban scenario pack leans on.
    """
    best = float("inf")
    sent = 0
    for _ in range(reps):
        sim, ch, fleet, _members = build_fleet(n, spacing)
        if obstruction is not None:
            ch.add_obstruction(obstruction)
        FleetBeaconScheduler(
            sim,
            fleet,
            ch,
            np.random.default_rng(7),
            period=1.0 / BEACON_HZ,
            jitter=0.0,
            tick=1.0 / BEACON_HZ,
            make_beacon=lambda m, pv, now: (b"x" * 32, (m.iface.address, pv)),
            bulk_sink=lambda m, batch, now: None,
        )
        t0 = time.perf_counter()
        sim.run_until(duration)
        best = min(best, time.perf_counter() - t0)
        sent = ch.stats.frames_sent
    return {
        "end_to_end_tx_per_s": round(sent / best, 0),
        "beacon_us_per_tx": round(best / sent * 1e6, 2),
        "beacons_sent": sent,
    }


# ----------------------------------------------------------------------
# mobility step (IDM + position propagation to the radio layer)
# ----------------------------------------------------------------------
def _build_mobility(n_target, *, batched):
    spacing = 30.0
    road = RoadSegment(
        length=max(300.0, n_target / 2 * spacing), lanes_per_direction=2
    )
    sim = Simulator()
    ch = BroadcastChannel(sim, RandomStreams(1))
    fleet = (
        FleetState(ch, capacity=max(256, n_target + 64)) if batched else None
    )
    traffic = TrafficSimulation(
        road, IdmParameters(), dt=0.1, rng=random.Random(1), fleet=fleet
    )

    def attach(vehicle):
        iface = RadioInterface(lambda v=vehicle: v.position, TX_RANGE)
        iface.attach(lambda frame: None)
        ch.register(iface)
        vehicle.iface = iface
        if fleet is not None:
            vehicle.fleet_slot = fleet.add(
                vehicle,
                iface,
                x=vehicle.x,
                y=vehicle.lane.y,
                speed=vehicle.speed,
                heading=vehicle.heading,
                tx_range=TX_RANGE,
            )

    def detach(vehicle):
        if fleet is not None and vehicle.fleet_slot is not None:
            fleet.remove(vehicle.fleet_slot)
            vehicle.fleet_slot = None
        ch.unregister(vehicle.iface)

    traffic.on_spawn.append(attach)
    traffic.on_exit.append(detach)
    if fleet is not None:
        traffic.on_step.append(lambda _now: fleet.push_positions_to_channel())
    else:
        traffic.on_step.append(lambda _now: ch.invalidate_positions())
    n = traffic.populate(spacing=spacing)
    # Build the grid up front so the timed loop measures steady state.
    ch.neighbors_within(Position(0.0, 0.0), 1.0)
    return traffic, ch, n


def bench_mobility(n_target, *, batched, reps, steps):
    """Best-of-``reps`` cost of one mobility step, us.

    Each timed step includes the probe query a real tick's first beacon
    would issue — which is what forces the legacy path's lazy
    ``get_position()``-per-interface refresh, while the batched path has
    already pushed positions with one ``move_many`` call.
    """
    best = float("inf")
    n = 0
    probe = Position(0.0, 0.0)
    for _ in range(reps):
        traffic, ch, n = _build_mobility(n_target, batched=batched)
        now = 0.0
        t0 = time.perf_counter()
        for _ in range(steps):
            now += traffic.dt
            traffic.step(now)
            ch.neighbors_within(probe, 1.0)
        best = min(best, (time.perf_counter() - t0) / steps)
    return {"n_vehicles": n, "step_us": round(best * 1e6, 1)}


# ----------------------------------------------------------------------
# full World runs
# ----------------------------------------------------------------------
def bench_world(*, batched, reps, duration, spacing=30.0):
    """One attacked inter-area World per rep; best wall time + counters."""
    best_wall = float("inf")
    snapshot = None
    config = ExperimentConfig.inter_area_default(duration=duration, seed=7)
    config = replace(
        config,
        road=replace(config.road, inter_vehicle_space=spacing),
        fleet_use_batched=batched,
    )
    for _ in range(reps):
        world = World(config, attacked=True)
        t0 = time.perf_counter()
        world.run()
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall = wall
            snapshot = PerfSnapshot.from_world(world)
    return {
        "wall_s": round(best_wall, 3),
        "tx_per_wall_s": round(snapshot.frames_sent / best_wall, 0),
        "frames_sent": snapshot.frames_sent,
        "frames_delivered": snapshot.frames_delivered,
        "events_fired": snapshot.events_fired,
        "events_per_wall_s": round(snapshot.events_fired / best_wall, 0),
    }


def bench_world_scale(n_target, *, duration):
    """A city-scale batched World: ~``n_target`` nodes on one long road.

    One run, no A/B: at this N the per-object path's event heap (one
    timer + ~30 delivery events per beacon) is the wall this PR removes,
    so only the batched path is measured.  Spawning is off so the node
    count stays fixed at the prepopulated fleet.
    """
    spacing = 30.0
    lanes_per_direction = 2
    length = n_target / lanes_per_direction * spacing
    config = ExperimentConfig.inter_area_default(duration=duration, seed=7)
    config = replace(
        config,
        road=replace(
            config.road,
            length=length,
            inter_vehicle_space=spacing,
            spawn=False,
        ),
        fleet_use_batched=True,
    )
    world = World(config, attacked=False)
    n_nodes = len(world.nodes)
    t0 = time.perf_counter()
    world.run()
    wall = time.perf_counter() - t0
    snapshot = PerfSnapshot.from_world(world)
    beacons = world.fleet_scheduler.beacons_sent
    return {
        "n_nodes": n_nodes,
        "road_length_m": length,
        "duration_s": duration,
        "wall_s": round(wall, 3),
        "beacons_sent": beacons,
        "beacons_per_wall_s": round(beacons / wall, 0),
        "frames_sent": snapshot.frames_sent,
        "tx_per_wall_s": round(snapshot.frames_sent / wall, 0),
        "events_fired": snapshot.events_fired,
        "events_per_wall_s": round(snapshot.events_fired / wall, 0),
    }


def _speedup(pre, post, metric):
    """pre/post for us metrics, post/pre for throughput metrics."""
    if metric.endswith("_us") or metric == "wall_s":
        return round(pre / post, 2) if post else None
    return round(post / pre, 2) if pre else None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single-rep short runs for the -m perf smoke test",
    )
    parser.add_argument(
        "--ns",
        default=None,
        help=(
            "comma-separated member counts for the scaling sweeps "
            "(same flag as bench_channel.py, e.g. --ns 500,5000,50000)"
        ),
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "BENCH_fleet.json"),
        help="output JSON path ('-' for stdout only)",
    )
    args = parser.parse_args(argv)

    reps = 1 if args.quick else 3
    e2e_duration = 0.25 if args.quick else 1.0
    mobility_steps = 5 if args.quick else 20
    world_duration = 4.0 if args.quick else 20.0
    scale_n = 5000 if args.quick else 50000
    scale_duration = 2.0 if args.quick else 4.0
    sweep_ns = (500, 5000) if args.quick else (500, 5000, 50000)
    if args.ns:
        sweep_ns = tuple(int(s) for s in args.ns.split(","))

    def reps_for(n):
        # Big-N runs are chunky enough that one rep is representative.
        return 1 if n >= 20000 else reps

    report = {
        "meta": {
            "mode": "quick" if args.quick else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "best_of": reps,
            "tx_range_m": TX_RANGE,
            "beacon_hz": BEACON_HZ,
            "methodology": (
                "All numbers are best-of-N minima. The dense-fleet "
                "microbenchmark reuses bench_channel's lattice, cadence "
                "and null handlers, so 'channel_grid_live' (the per-"
                "interface transmit path measured in this same process) "
                "is the apples-to-apples baseline; "
                "'channel_grid_reference' is the checked-in "
                "BENCH_channel.json capture and inherits cross-run "
                "machine-load drift. World runs A/B the fleet_use_batched "
                "knob on the fig-7 scenario; outcomes are equivalent but "
                "not bit-identical (different beacon-jitter streams), so "
                "frame counts differ by a few percent and no equality is "
                "asserted."
            ),
        },
    }

    # --- dense-fleet microbenchmark (the acceptance scenario) ----------
    fleet_dense = bench_fleet_end_to_end(
        500, 30.0, reps=reps, duration=e2e_duration
    )
    live_baseline = round(
        bench_channel_end_to_end(
            500, 30.0, use_grid=True, reps=reps, duration=e2e_duration
        ),
        0,
    )
    dense = {
        "n_members": 500,
        "spacing_m": 30.0,
        "fleet_batched": fleet_dense,
        "channel_grid_live": {"end_to_end_tx_per_s": live_baseline},
        "speedup_vs_channel_grid_live": _speedup(
            live_baseline,
            fleet_dense["end_to_end_tx_per_s"],
            "end_to_end_tx_per_s",
        ),
    }
    # Same scenario with a Manhattan shadowing model registered: the
    # delivery sweep falls back to the vectorised block_mask path.  The
    # urban scenario pack must not make beaconing under obstructions
    # more than ~2x slower than the clear-channel batched loop (guarded
    # by test_perf_smoke.py within the same run).
    fleet_obstructed = bench_fleet_end_to_end(
        500,
        30.0,
        reps=reps,
        duration=e2e_duration,
        obstruction=make_shadowing(500, 30.0),
    )
    dense["fleet_batched_obstructed"] = fleet_obstructed
    dense["obstructed_slowdown"] = _speedup(
        fleet_obstructed["end_to_end_tx_per_s"],
        fleet_dense["end_to_end_tx_per_s"],
        "end_to_end_tx_per_s",
    )
    channel_ref = load_channel_grid_reference()
    if channel_ref is not None:
        dense["channel_grid_reference"] = {
            "end_to_end_tx_per_s": channel_ref["end_to_end_tx_per_s"]
        }
        dense["speedup_vs_channel_grid_reference"] = _speedup(
            channel_ref["end_to_end_tx_per_s"],
            fleet_dense["end_to_end_tx_per_s"],
            "end_to_end_tx_per_s",
        )
    report["dense_fleet_microbenchmark"] = dense

    # --- batched beacon loop scaling -----------------------------------
    scaling = {"spacing_m": 30.0, "by_n": {}}
    for n in sweep_ns:
        scaling["by_n"][str(n)] = bench_fleet_end_to_end(
            n, 30.0, reps=reps_for(n), duration=e2e_duration
        )
    report["fleet_beacon_scaling"] = scaling

    # --- mobility step scaling (batched vs legacy refresh) -------------
    mobility = {"dt_s": 0.1, "by_n": {}}
    for n in sweep_ns:
        entry = {
            "batched": bench_mobility(
                n, batched=True, reps=reps_for(n), steps=mobility_steps
            ),
            "legacy": bench_mobility(
                n, batched=False, reps=reps_for(n), steps=mobility_steps
            ),
        }
        entry["speedup"] = _speedup(
            entry["legacy"]["step_us"], entry["batched"]["step_us"], "step_us"
        )
        mobility["by_n"][str(n)] = entry
    report["mobility_step_scaling"] = mobility

    # --- full World runs (A/B: fleet_use_batched on/off) ---------------
    worlds = {
        "scenario": "inter-area attacked, 30 m spacing, seed 7",
        "batched": bench_world(batched=True, reps=reps, duration=world_duration),
        "legacy": bench_world(batched=False, reps=reps, duration=world_duration),
    }
    worlds["speedup"] = {
        "wall_s": _speedup(
            worlds["legacy"]["wall_s"], worlds["batched"]["wall_s"], "wall_s"
        )
    }
    report["world_runs"] = worlds

    # --- city-scale batched World --------------------------------------
    report["world_scale_run"] = bench_world_scale(
        scale_n, duration=scale_duration
    )

    # --- headline summary ----------------------------------------------
    by_n = report["fleet_beacon_scaling"]["by_n"]
    biggest = str(max(int(k) for k in by_n))
    scale = report["world_scale_run"]
    report["summary"] = {
        "headline": (
            f"batched beacon tick: {dense['fleet_batched']['end_to_end_tx_per_s']:.0f} tx/s "
            f"on the dense-500 scenario vs {live_baseline:.0f} tx/s through "
            f"the per-interface channel-grid path "
            f"({dense['speedup_vs_channel_grid_live']}x live in-process); "
            f"per-beacon cost stays ~flat to N={biggest} "
            f"({by_n[biggest]['beacon_us_per_tx']} us/tx); a "
            f"{scale['n_nodes']}-node batched World runs "
            f"{scale['duration_s']:.0f} sim-seconds in {scale['wall_s']}s wall "
            f"({scale['beacons_per_wall_s']:.0f} beacons/s)."
        ),
        "dense500_speedup_vs_channel_grid_live": dense[
            "speedup_vs_channel_grid_live"
        ],
        "dense500_speedup_vs_channel_grid_reference": dense.get(
            "speedup_vs_channel_grid_reference"
        ),
        "dense500_obstructed_slowdown": dense["obstructed_slowdown"],
    }

    payload = json.dumps(report, indent=2, sort_keys=False)
    if args.out != "-":
        Path(args.out).write_text(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
