"""CI perf-regression gate against the checked-in BENCH baselines.

Complements ``test_perf_smoke.py`` (which asserts the harnesses *work*):
this module asserts the code is still *fast*, by re-measuring the headline
microbenchmarks in-process and comparing them against the committed
``BENCH_channel.json`` / ``BENCH_fleet.json`` reference captures using the
ratcheted tolerances in ``PERF_BUDGETS.json``.

The tolerances are deliberately generous multiples of the reference
machine's numbers (see the budget file's ``meta.ratchet`` note): shared CI
runners are slower and noisier, so the gate is tuned to catch
order-of-magnitude regressions — the spatial grid degenerating to a linear
scan, the batched fleet tick falling back to per-object dispatch — without
flapping on machine variance.  Tighten a ratio when a PR makes the code
faster; never loosen one without re-capturing the baselines.

The checkpoint-overhead gate is different: it compares two measurements
from the *same process* (snapshot cost vs. simulation wall per default
checkpoint interval), so machine drift cancels out and the ISSUE's hard
"<= 5% wall overhead on dense-500" budget can be asserted directly.

Run with ``pytest benchmarks/perf -m perf`` (excluded from tier-1).
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf

PERF_DIR = Path(__file__).parent
if str(PERF_DIR) not in sys.path:  # the harnesses are scripts, not a package
    sys.path.insert(0, str(PERF_DIR))

import bench_channel  # noqa: E402
import bench_fleet  # noqa: E402

BUDGETS = json.loads((PERF_DIR / "PERF_BUDGETS.json").read_text())
CHANNEL_BASE = json.loads((PERF_DIR / "BENCH_channel.json").read_text())
FLEET_BASE = json.loads((PERF_DIR / "BENCH_fleet.json").read_text())


def test_channel_dense500_end_to_end_vs_baseline():
    """Dense-500 grid throughput must stay within budget of the capture."""
    budget = BUDGETS["channel"]
    reference = CHANNEL_BASE["dense_channel_microbenchmark"]["grid"][
        "end_to_end_tx_per_s"
    ]
    measured = bench_channel.bench_end_to_end(
        500, 30.0, use_grid=True, reps=2, duration=0.25
    )
    floor = budget["dense500_end_to_end_min_ratio"] * reference
    assert measured >= floor, (
        f"dense-500 end-to-end throughput regressed: {measured:.0f} tx/s "
        f"vs reference {reference:.0f} (floor {floor:.0f}; ratchet in "
        "PERF_BUDGETS.json)"
    )


def test_channel_receiver_selection_scaling_vs_baseline():
    """O(k) receiver selection at N=2000 must not drift toward O(N)."""
    budget = BUDGETS["channel"]
    reference = CHANNEL_BASE["neighbor_query_scaling"]["by_n"]["2000"][
        "grid"
    ]["receivers_for_us"]
    measured = bench_channel.bench_receivers_for(
        2000, 300.0, use_grid=True, reps=2
    )
    ceiling = budget["receivers_for_n2000_max_ratio"] * reference
    assert measured <= ceiling, (
        f"receiver selection at N=2000 regressed: {measured:.2f} us/call "
        f"vs reference {reference:.2f} (ceiling {ceiling:.2f}; ratchet in "
        "PERF_BUDGETS.json)"
    )


def test_fleet_dense500_batched_vs_baseline():
    """The batched beacon tick must keep its edge over per-object speed."""
    budget = BUDGETS["fleet"]
    reference = FLEET_BASE["dense_fleet_microbenchmark"]["fleet_batched"][
        "end_to_end_tx_per_s"
    ]
    measured = bench_fleet.bench_fleet_end_to_end(
        500, 30.0, reps=2, duration=1.0
    )["end_to_end_tx_per_s"]
    floor = budget["dense500_batched_end_to_end_min_ratio"] * reference
    assert measured >= floor, (
        f"dense-500 batched beacon throughput regressed: {measured:.0f} "
        f"tx/s vs reference {reference:.0f} (floor {floor:.0f}; ratchet "
        "in PERF_BUDGETS.json)"
    )


def test_fleet_mobility_step_vs_baseline():
    """Batched mobility stepping must stay near the capture's per-step cost."""
    budget = BUDGETS["fleet"]
    reference = FLEET_BASE["mobility_step_scaling"]["by_n"]["500"][
        "batched"
    ]["step_us"]
    measured = bench_fleet.bench_mobility(500, batched=True, reps=2, steps=20)[
        "step_us"
    ]
    ceiling = budget["mobility_step_n500_max_ratio"] * reference
    assert measured <= ceiling, (
        f"batched mobility step at N=500 regressed: {measured:.1f} us "
        f"vs reference {reference:.1f} (ceiling {ceiling:.1f}; ratchet in "
        "PERF_BUDGETS.json)"
    )


def test_checkpoint_overhead_at_default_interval(tmp_path):
    """Checkpointing at the default interval costs <=5% wall on dense-500.

    Both sides of the ratio come from this process — the wall time of one
    default checkpoint interval of the dense (20 m spacing) inter-area
    world, and the best-of-N cost of snapshotting + persisting it — so the
    assertion is immune to runner speed, unlike the baseline-relative
    gates above.
    """
    from repro.experiments.campaign import config_hash
    from repro.experiments.checkpointing import (
        DEFAULT_CHECKPOINT_INTERVAL,
        save_checkpoint,
    )
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.store import ResultStore, RunKey
    from repro.experiments.world import World

    interval = DEFAULT_CHECKPOINT_INTERVAL
    config = ExperimentConfig.inter_area_default(
        duration=interval + 10.0, seed=7
    )
    config = replace(
        config, road=replace(config.road, inter_vehicle_space=20.0)
    )
    t0 = time.perf_counter()
    world = World(config, attacked=True, seed=7)
    world.run(duration=interval)
    wall_per_interval = time.perf_counter() - t0

    store = ResultStore(tmp_path / "results")
    key = RunKey(
        target="perf-gate",
        config_hash=config_hash(config),
        seed=7,
        attacked=True,
    )
    save_cost = float("inf")
    for _ in range(4):
        t0 = time.perf_counter()
        save_checkpoint(store, key, world)
        save_cost = min(save_cost, time.perf_counter() - t0)

    overhead = save_cost / wall_per_interval
    ceiling = BUDGETS["checkpoint"]["max_overhead_at_default_interval"]
    assert overhead <= ceiling, (
        f"checkpointing costs {overhead:.1%} of wall per "
        f"{interval:.0f} sim-s interval on dense-500 "
        f"(save {save_cost:.3f}s / interval wall {wall_per_interval:.3f}s); "
        f"budget is {ceiling:.0%}"
    )
