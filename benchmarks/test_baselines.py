"""Baseline and robustness benchmarks beyond the paper's figures."""


from repro.experiments import ExperimentConfig, run_ab


def test_channel_loss_robustness(benchmark, bench_scale):
    """Both attacks keep working on a lossy (non-ideal) channel — the
    paper's unit-disk model is not load-bearing for the conclusion."""

    def sweep():
        results = {}
        for loss in (0.0, 0.1):
            inter = ExperimentConfig.inter_area_default(
                duration=bench_scale["duration"],
                seed=bench_scale["seed"],
                attack_range=486.0,
            ).with_(channel_loss_rate=loss)
            intra = ExperimentConfig.intra_area_default(
                duration=bench_scale["duration"], seed=bench_scale["seed"]
            ).with_(channel_loss_rate=loss)
            results[loss] = (
                run_ab(inter, runs=bench_scale["runs"]).drop_rate(),
                run_ab(intra, runs=bench_scale["runs"]).drop_rate(),
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for loss, (gamma, lam) in results.items():
        benchmark.extra_info[f"loss={loss} inter γ"] = (
            None if gamma is None else round(gamma, 4)
        )
        benchmark.extra_info[f"loss={loss} intra λ"] = (
            None if lam is None else round(lam, 4)
        )
    # The attacks keep working on the lossy channel: the interception
    # attack stays strong and blockage stays visible.
    gamma_lossy, lam_lossy = results[0.1]
    assert gamma_lossy is not None and gamma_lossy > 0.3
    assert lam_lossy is not None and lam_lossy > 0.05


def test_blackhole_baseline_comparison(benchmark, bench_scale):
    """Quantify the related-work contrast: the insider blackhole attracts
    and drops traffic, while the same device without credentials is inert
    (which is why the paper's replay attacks matter)."""
    from repro.core.attacks.blackhole import InsiderBlackhole, OutsiderBlackhole
    from repro.experiments.world import World
    from repro.geo.position import Position

    def run_with(attacker_cls):
        config = ExperimentConfig.inter_area_default(
            duration=bench_scale["duration"], seed=bench_scale["seed"]
        )
        world = World(config, attacked=False, seed=bench_scale["seed"])
        kwargs = dict(
            sim=world.sim,
            channel=world.channel,
            streams=world.streams,
            position=Position(2000.0, -10.0),
            advertised_position=Position(2450.0, 5.0),
            tx_range=486.0,
        )
        if attacker_cls is InsiderBlackhole:
            kwargs["credentials"] = world.ca.enroll("compromised")
        attacker = attacker_cls(**kwargs)
        metrics = world.run()
        rate = metrics.overall_rate()
        return rate, attacker.packets_attracted

    def compare():
        baseline_config = ExperimentConfig.inter_area_default(
            duration=bench_scale["duration"], seed=bench_scale["seed"]
        )
        baseline = run_ab(baseline_config, runs=1).af_overall
        insider_rate, insider_attracted = run_with(InsiderBlackhole)
        outsider_rate, outsider_attracted = run_with(OutsiderBlackhole)
        return {
            "attack_free": baseline,
            "insider_rate": insider_rate,
            "insider_attracted": insider_attracted,
            "outsider_rate": outsider_rate,
            "outsider_attracted": outsider_attracted,
        }

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {k: round(v, 4) if isinstance(v, float) else v for k, v in results.items()}
    )
    # The insider swallows traffic; the outsider forger attracts nothing.
    assert results["insider_attracted"] > 0
    assert results["outsider_attracted"] == 0
    assert results["insider_rate"] < results["attack_free"]
