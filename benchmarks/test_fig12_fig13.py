"""Fig 12 / Fig 13 benchmarks: traffic-efficiency and road-safety impact."""

from repro.experiments.figures.fig12 import fig12a, fig12b
from repro.experiments.figures.fig13 import fig13


def test_fig12a(benchmark, bench_scale):
    """Case 1 needs the road to fill before GF can deliver, so it runs at
    full duration regardless of the bench scale."""
    duration = max(bench_scale["duration"], 200.0)
    comparison = benchmark.pedantic(
        lambda: fig12a(duration=duration, seed=bench_scale["seed"]),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["af_final"] = comparison.af.final_count
    benchmark.extra_info["atk_final"] = comparison.atk.final_count
    benchmark.extra_info["af_block_time"] = comparison.af.block_time
    # Attacked: the notification never arrives and the jam keeps growing.
    assert comparison.atk.block_time is None
    assert comparison.atk.final_count >= comparison.af.final_count


def test_fig12b(benchmark, bench_scale):
    duration = max(bench_scale["duration"], 120.0)
    comparison = benchmark.pedantic(
        lambda: fig12b(duration=duration, seed=bench_scale["seed"]),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["af_final"] = comparison.af.final_count
    benchmark.extra_info["atk_final"] = comparison.atk.final_count
    benchmark.extra_info["af_block_time"] = comparison.af.block_time
    # Attack-free: the CBF warning closes the entrance within seconds and
    # the on-road count plateaus; attacked: it keeps growing.
    assert comparison.af.block_time is not None
    assert comparison.af.block_time < 20.0
    assert comparison.atk.block_time is None
    assert comparison.atk.final_count > comparison.af.final_count + 20


def test_fig13(benchmark, bench_scale):
    comparison = benchmark.pedantic(
        lambda: fig13(seed=bench_scale["seed"]), rounds=1, iterations=1
    )
    benchmark.extra_info["af_collided"] = comparison.af.collided
    benchmark.extra_info["atk_collided"] = comparison.atk.collided
    benchmark.extra_info["af_v2_warned_at"] = comparison.af.v2_warned_at
    benchmark.extra_info["atk_collision_at"] = comparison.atk.collision_at
    # The paper's Fig 13 outcome: warned -> safe; blocked -> collision.
    assert not comparison.af.collided
    assert comparison.af.v2_warned_at is not None
    assert comparison.atk.collided
    assert comparison.atk.v2_warned_at is None
