"""Fig 14 benchmarks: mitigation effectiveness.

Paper reference: (a) the plausibility check recovers +53.7/+61.6/+53.4
reception points against wN/mN/mL attackers and lifts the attack-free
baseline from ~54 % to 94.3 %; (b) the RHL check restores attack-free
reception under wN/mN blockage attackers.
"""

from repro.experiments.figures import fig14


def _kw(bench_scale):
    return dict(
        runs=bench_scale["runs"],
        duration=bench_scale["duration"],
        processes=bench_scale["processes"],
        seed=bench_scale["seed"],
    )


def _record(benchmark, figure):
    for series in figure.series:
        benchmark.extra_info[f"{series.label} unmitigated atk"] = round(
            series.unmitigated.atk_overall, 4
        )
        benchmark.extra_info[f"{series.label} mitigated atk"] = round(
            series.mitigated.atk_overall, 4
        )
        benchmark.extra_info[f"{series.label} improvement"] = round(
            series.improvement, 4
        )


def test_fig14a(benchmark, bench_scale):
    figure = benchmark.pedantic(
        lambda: fig14.fig14a(**_kw(bench_scale)), rounds=1, iterations=1
    )
    _record(benchmark, figure)
    for series in figure.series:
        # The check recovers a large share of the lost reception...
        assert series.improvement > 0.2
    # ...and beats the unmitigated attack-free baseline even while attacked
    # (the paper's headline observation about stale-entry filtering).
    mn = figure.get("mN")
    assert mn.mitigated.af_overall > mn.unmitigated.af_overall


def test_fig14b(benchmark, bench_scale):
    figure = benchmark.pedantic(
        lambda: fig14.fig14b(**_kw(bench_scale)), rounds=1, iterations=1
    )
    _record(benchmark, figure)
    for series in figure.series:
        # The RHL check restores reception to near the attack-free level.
        assert (
            series.mitigated.atk_overall
            >= series.unmitigated.af_overall - 0.1
        )
