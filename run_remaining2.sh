#!/bin/sh
python -m repro.experiments.cli fig9e --runs 2 --duration 150
python -m repro.experiments.cli fig10 --runs 2 --duration 150
python -m repro.experiments.cli fig14a --runs 2 --duration 150
python -m repro.experiments.cli fig14b --runs 2 --duration 150
python -m repro.experiments.cli fig12a --duration 200
python -m repro.experiments.cli fig12b --duration 200
python -m repro.experiments.cli fig13
python -m repro.experiments.cli overhead --duration 60
