#!/bin/sh
for t in fig9a fig9b fig9c fig9d fig9e fig9-tuning fig9-source-location fig10 fig14a fig14b; do
  python -m repro.experiments.cli "$t" --runs 2 --duration 150
done
python -m repro.experiments.cli fig12a --duration 200
python -m repro.experiments.cli fig12b --duration 200
python -m repro.experiments.cli fig13
python -m repro.experiments.cli overhead --duration 60
