"""Tests for the Manhattan-grid road network and its traffic simulation."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.traffic.grid import (
    HORIZONTAL,
    VERTICAL,
    GridRoadNetwork,
    GridTrafficSimulation,
)
from repro.traffic.idm import IdmParameters
from repro.traffic.road import Direction
from repro.traffic.spawner import EntranceSpawner


def make_network(**kwargs):
    defaults = dict(streets_x=3, streets_y=3, block_size=200.0, lane_width=4.0)
    defaults.update(kwargs)
    return GridRoadNetwork(**defaults)


def make_sim(network=None, *, seed=1, spawner=None, **kwargs):
    network = network if network is not None else make_network()
    return network, GridTrafficSimulation(
        network,
        IdmParameters(desired_velocity=14.0),
        spawner=spawner,
        rng=random.Random(seed),
        **kwargs,
    )


class TestNetworkGeometry:
    def test_two_corridors_per_street(self):
        network = make_network()
        # 3 horizontal + 3 vertical streets, 2 directed corridors each.
        assert len(network.corridors) == 12

    def test_extent(self):
        network = make_network()
        assert network.width == pytest.approx(400.0)
        assert network.height == pytest.approx(400.0)

    def test_right_hand_lane_offsets(self):
        network = make_network()
        east = network.corridor(HORIZONTAL, 1, +1)
        west = network.corridor(HORIZONTAL, 1, -1)
        # Right-hand traffic on the y=200 street: eastbound drives south of
        # the centerline, westbound north of it.
        assert east.lane_coord == pytest.approx(198.0)
        assert west.lane_coord == pytest.approx(202.0)
        north = network.corridor(VERTICAL, 1, +1)
        south = network.corridor(VERTICAL, 1, -1)
        assert north.lane_coord == pytest.approx(202.0)
        assert south.lane_coord == pytest.approx(198.0)

    def test_corridor_direction_maps_to_highway_enum(self):
        network = make_network()
        assert network.corridor(HORIZONTAL, 0, +1).direction is Direction.EAST
        assert network.corridor(HORIZONTAL, 0, -1).direction is Direction.WEST

    def test_point_at_respects_travel_direction(self):
        network = make_network()
        east = network.corridor(HORIZONTAL, 0, +1)
        west = network.corridor(HORIZONTAL, 0, -1)
        assert east.point_at(0.0)[0] == pytest.approx(0.0)
        assert east.point_at(100.0)[0] == pytest.approx(100.0)
        # The westbound corridor starts at the east edge.
        assert west.point_at(0.0)[0] == pytest.approx(400.0)
        assert west.point_at(100.0)[0] == pytest.approx(300.0)

    def test_turn_targets_land_on_crossing_street(self):
        network = make_network()
        east = network.corridor(HORIZONTAL, 1, +1)
        for cross_index in range(len(east.cross_s)):
            for turn in ("left", "right"):
                target, s = network.turn_target(east, cross_index, turn)
                assert target.axis == VERTICAL
                x, y = target.point_at(s)
                # The transfer lands at the intersection being crossed.
                cross = east.cross_points[cross_index]
                assert x == pytest.approx(target.lane_coord)
                assert y == pytest.approx(cross.y)

    def test_needs_two_streets_per_axis(self):
        with pytest.raises(ValueError):
            make_network(streets_x=1)


class TestTrafficSimulation:
    def test_populate_fills_every_corridor(self):
        network, traffic = make_sim()
        traffic.populate(spacing=80.0, speed=10.0)
        assert traffic.count_on_road() > 0
        per_corridor = {c: 0 for c in network.corridors}
        for vehicle in traffic.vehicles():
            per_corridor[vehicle.corridor] += 1
        assert all(n > 0 for n in per_corridor.values())

    def test_vehicles_stay_on_streets(self):
        network, traffic = make_sim()
        traffic.populate(spacing=80.0, speed=10.0)
        sim = Simulator()
        traffic.start(sim)
        sim.run_until(30.0)
        hw = network.lane_width
        for vehicle in traffic.vehicles():
            on_h = any(
                abs(vehicle.y - sy) <= hw for sy in network.ys
            )
            on_v = any(
                abs(vehicle.x - sx) <= hw for sx in network.xs
            )
            assert on_h or on_v, (vehicle.x, vehicle.y)

    def test_turns_happen_and_are_counted(self):
        _network, traffic = make_sim(turn_probability=0.5)
        traffic.populate(spacing=80.0, speed=10.0)
        sim = Simulator()
        traffic.start(sim)
        sim.run_until(30.0)
        assert traffic.turns_total > 0
        assert any(v.turns_taken > 0 for v in traffic.vehicles())

    def test_zero_turn_probability_keeps_headings(self):
        _network, traffic = make_sim(turn_probability=0.0)
        traffic.populate(spacing=80.0, speed=10.0)
        sim = Simulator()
        traffic.start(sim)
        sim.run_until(20.0)
        assert traffic.turns_total == 0

    def test_runout_retires_vehicles(self):
        _network, traffic = make_sim(turn_probability=0.0, runout=50.0)
        exited = []
        traffic.on_exit.append(exited.append)
        traffic.populate(spacing=80.0, speed=14.0)
        sim = Simulator()
        traffic.start(sim)
        sim.run_until(60.0)
        assert exited
        assert all(not v.active for v in exited)

    def test_spawner_adds_vehicles(self):
        spawner = EntranceSpawner(
            spawn_gap=40.0, entry_speed=10.0, gap_jitter=0.3,
            rng=random.Random(3),
        )
        _network, traffic = make_sim(spawner=spawner)
        spawned = []
        traffic.on_spawn.append(spawned.append)
        sim = Simulator()
        traffic.start(sim)
        sim.run_until(20.0)
        assert spawned
        assert traffic.count_on_road() > 0

    def test_same_seed_is_deterministic(self):
        def snapshot(seed):
            _n, traffic = make_sim(seed=seed, turn_probability=0.4)
            traffic.populate(spacing=80.0, speed=10.0)
            sim = Simulator()
            traffic.start(sim)
            sim.run_until(25.0)
            # vehicle_id comes from a process-global counter, so compare
            # positions only.
            return sorted(
                (round(v.x, 9), round(v.y, 9), v.turns_taken)
                for v in traffic.vehicles()
            )

        assert snapshot(5) == snapshot(5)
        assert snapshot(5) != snapshot(6)

    def test_count_on_road_by_direction(self):
        _network, traffic = make_sim()
        traffic.populate(spacing=80.0, speed=10.0)
        total = traffic.count_on_road()
        by_direction = sum(
            traffic.count_on_road(d) for d in (Direction.EAST, Direction.WEST)
        )
        assert by_direction == total
