"""Tests for the entrance spawner policy."""

import math
import random

import pytest

from repro.traffic.road import Direction, Lane
from repro.traffic.spawner import EntranceSpawner

EAST = Lane(index=0, y=2.5, direction=Direction.EAST, road_length=1000.0)
WEST = Lane(index=1, y=7.5, direction=Direction.WEST, road_length=1000.0)


def test_spawns_into_empty_lane():
    spawner = EntranceSpawner(spawn_gap=30.0)
    assert spawner.may_spawn(EAST, math.inf)


def test_spawns_when_gap_exceeded():
    spawner = EntranceSpawner(spawn_gap=30.0)
    assert spawner.may_spawn(EAST, 30.01)


def test_refuses_when_gap_too_small():
    spawner = EntranceSpawner(spawn_gap=30.0)
    assert not spawner.may_spawn(EAST, 30.0)
    assert not spawner.may_spawn(EAST, 5.0)


def test_disabled_spawner_refuses():
    spawner = EntranceSpawner(enabled=False)
    assert not spawner.may_spawn(EAST, math.inf)


def test_blocked_direction_refuses_only_that_direction():
    spawner = EntranceSpawner()
    spawner.block(Direction.EAST)
    assert not spawner.may_spawn(EAST, math.inf)
    assert spawner.may_spawn(WEST, math.inf)


def test_unblock_restores_admission():
    spawner = EntranceSpawner()
    spawner.block(Direction.EAST)
    spawner.unblock(Direction.EAST)
    assert spawner.may_spawn(EAST, math.inf)


def test_is_blocked_query():
    spawner = EntranceSpawner()
    assert not spawner.is_blocked(Direction.EAST)
    spawner.block(Direction.EAST)
    assert spawner.is_blocked(Direction.EAST)


def test_gap_jitter_requires_rng():
    with pytest.raises(ValueError):
        EntranceSpawner(gap_jitter=0.3)


def test_gap_jitter_inflates_required_gap():
    spawner = EntranceSpawner(spawn_gap=30.0, gap_jitter=0.5, rng=random.Random(1))
    # A gap just over the base spawn gap is sometimes refused under jitter.
    decisions = {spawner.may_spawn(EAST, 31.0) for _ in range(50)}
    assert decisions == {True, False}
    # But a gap over the maximum inflated requirement is always accepted.
    assert all(spawner.may_spawn(EAST, 46.0) for _ in range(50))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        EntranceSpawner(spawn_gap=0)
    with pytest.raises(ValueError):
        EntranceSpawner(entry_speed=-1)
    with pytest.raises(ValueError):
        EntranceSpawner(gap_jitter=-0.1)
