"""Tests for vehicle state."""

import math

import pytest

from repro.geo.position import Position
from repro.traffic.road import Direction, Lane
from repro.traffic.vehicle import Vehicle

EAST_LANE = Lane(index=0, y=2.5, direction=Direction.EAST, road_length=4000.0)
WEST_LANE = Lane(index=1, y=7.5, direction=Direction.WEST, road_length=4000.0)


def test_position_combines_x_and_lane_y():
    v = Vehicle(lane=EAST_LANE, x=100.0, speed=30.0)
    assert v.position == Position(100.0, 2.5)


def test_heading_follows_lane_direction():
    assert Vehicle(lane=EAST_LANE, x=0, speed=0).heading == 0.0
    assert Vehicle(lane=WEST_LANE, x=0, speed=0).heading == pytest.approx(math.pi)


def test_progress_eastbound():
    assert Vehicle(lane=EAST_LANE, x=150.0, speed=0).progress == 150.0


def test_progress_westbound():
    assert Vehicle(lane=WEST_LANE, x=3900.0, speed=0).progress == 100.0


def test_position_vector_snapshot():
    v = Vehicle(lane=EAST_LANE, x=10.0, speed=25.0)
    pv = v.position_vector(now=7.0)
    assert pv.position == Position(10.0, 2.5)
    assert pv.speed == 25.0
    assert pv.timestamp == 7.0


def test_vehicle_ids_unique():
    a = Vehicle(lane=EAST_LANE, x=0, speed=0)
    b = Vehicle(lane=EAST_LANE, x=0, speed=0)
    assert a.vehicle_id != b.vehicle_id


def test_negative_speed_rejected():
    with pytest.raises(ValueError):
        Vehicle(lane=EAST_LANE, x=0, speed=-1.0)


def test_invalid_length_rejected():
    with pytest.raises(ValueError):
        Vehicle(lane=EAST_LANE, x=0, speed=0, length=0)


def test_gap_to_leader_eastbound():
    follower = Vehicle(lane=EAST_LANE, x=0.0, speed=0, length=4.5)
    leader = Vehicle(lane=EAST_LANE, x=30.0, speed=0, length=4.5)
    assert follower.gap_to(leader) == pytest.approx(30.0 - 4.5)


def test_gap_to_leader_westbound():
    follower = Vehicle(lane=WEST_LANE, x=100.0, speed=0, length=4.5)
    leader = Vehicle(lane=WEST_LANE, x=70.0, speed=0, length=4.5)
    assert follower.gap_to(leader) == pytest.approx(30.0 - 4.5)


def test_front_and_rear_bumpers_eastbound():
    v = Vehicle(lane=EAST_LANE, x=100.0, speed=0, length=4.0)
    assert v.front_x() == 102.0
    assert v.rear_x() == 98.0


def test_front_and_rear_bumpers_westbound():
    v = Vehicle(lane=WEST_LANE, x=100.0, speed=0, length=4.0)
    assert v.front_x() == 98.0
    assert v.rear_x() == 102.0


def test_default_speed_factor_is_one():
    assert Vehicle(lane=EAST_LANE, x=0, speed=0).speed_factor == 1.0
