"""Tests for hazard events."""

from repro.traffic.hazard import HazardEvent
from repro.traffic.road import Direction


def test_inactive_before_start_time():
    hazard = HazardEvent(x=100.0, direction=Direction.EAST, start_time=5.0)
    assert not hazard.active(4.9)
    assert hazard.active(5.0)
    assert hazard.active(100.0)


def test_blocks_only_matching_direction():
    hazard = HazardEvent(x=100.0, direction=Direction.EAST, start_time=0.0)
    assert hazard.blocks(Direction.EAST, now=1.0)
    assert not hazard.blocks(Direction.WEST, now=1.0)


def test_blocks_nothing_before_start():
    hazard = HazardEvent(x=100.0, direction=Direction.EAST, start_time=5.0)
    assert not hazard.blocks(Direction.EAST, now=1.0)


def test_ahead_of_eastbound_vehicle():
    hazard = HazardEvent(x=100.0, direction=Direction.EAST, start_time=0.0)
    assert hazard.ahead_of(50.0)
    assert not hazard.ahead_of(150.0)


def test_ahead_of_westbound_vehicle():
    hazard = HazardEvent(x=100.0, direction=Direction.WEST, start_time=0.0)
    assert hazard.ahead_of(150.0)
    assert not hazard.ahead_of(50.0)
