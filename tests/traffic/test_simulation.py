"""Tests for the traffic microsimulation loop."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.traffic.hazard import HazardEvent
from repro.traffic.idm import IdmParameters
from repro.traffic.road import Direction, RoadSegment
from repro.traffic.simulation import TrafficSimulation
from repro.traffic.spawner import EntranceSpawner
from repro.traffic.vehicle import Vehicle


def make_sim(road=None, spawner=None, rng=None, **kwargs):
    return TrafficSimulation(
        road or RoadSegment(length=1000.0, lanes_per_direction=1),
        IdmParameters(),
        spawner=spawner,
        rng=rng,
        **kwargs,
    )


def step_for(traffic, seconds):
    steps = int(seconds / traffic.dt)
    t = 0.0
    for _ in range(steps):
        t += traffic.dt
        traffic.step(t)


def test_single_vehicle_cruises_at_desired_speed():
    traffic = make_sim()
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=0.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 10.0)
    assert vehicle.speed == pytest.approx(30.0, abs=0.1)
    assert vehicle.x == pytest.approx(300.0, rel=0.02)


def test_slow_vehicle_accelerates_toward_desired_speed():
    traffic = make_sim(road=RoadSegment(length=10000.0, lanes_per_direction=1))
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=0.0, speed=10.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 60.0)
    assert vehicle.speed == pytest.approx(30.0, abs=0.5)


def test_follower_keeps_safe_gap_behind_slow_leader():
    traffic = make_sim(road=RoadSegment(length=100000.0, lanes_per_direction=1))
    lane = traffic.road.lanes[0]
    leader = Vehicle(lane=lane, x=100.0, speed=15.0, speed_factor=0.5)
    follower = Vehicle(lane=lane, x=0.0, speed=30.0)
    traffic.add_vehicle(leader)
    traffic.add_vehicle(follower)
    step_for(traffic, 60.0)
    assert follower.speed == pytest.approx(leader.speed, abs=1.0)
    gap = follower.gap_to(leader)
    assert gap > 2.0  # never closer than the minimum distance
    assert traffic.rear_end_contacts == 0


def test_vehicle_exits_at_end_of_road():
    traffic = make_sim()
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=995.0, speed=30.0)
    exited = []
    traffic.on_exit.append(exited.append)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 2.0)
    assert exited == [vehicle]
    assert not vehicle.active
    assert traffic.count_on_road() == 0


def test_westbound_vehicle_moves_toward_zero():
    traffic = make_sim(road=RoadSegment(length=1000.0, lanes_per_direction=1, directions=2))
    lane = traffic.road.westbound_lanes[0]
    vehicle = Vehicle(lane=lane, x=900.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 5.0)
    assert vehicle.x == pytest.approx(750.0, rel=0.02)


def test_westbound_vehicle_exits_at_west_end():
    traffic = make_sim(road=RoadSegment(length=1000.0, lanes_per_direction=1, directions=2))
    lane = traffic.road.westbound_lanes[0]
    vehicle = Vehicle(lane=lane, x=10.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 2.0)
    assert traffic.count_on_road(Direction.WEST) == 0


def test_populate_density():
    traffic = make_sim(road=RoadSegment(length=990.0, lanes_per_direction=2))
    created = traffic.populate(spacing=30.0)
    assert created == 2 * (int(990 // 30) + 1)
    assert traffic.count_on_road() == created


def test_populate_with_rng_jitters_positions():
    rng = random.Random(1)
    traffic = make_sim(
        road=RoadSegment(length=900.0, lanes_per_direction=2), rng=rng
    )
    traffic.populate(spacing=30.0)
    lane0 = traffic.lane_vehicles(traffic.road.lanes[0])
    lane1 = traffic.lane_vehicles(traffic.road.lanes[1])
    xs0 = {round(v.x, 3) for v in lane0}
    xs1 = {round(v.x, 3) for v in lane1}
    # Staggering + jitter: the two lanes must not be position-aligned.
    assert len(xs0 & xs1) < min(len(xs0), len(xs1)) / 4


def test_populate_draws_speed_factors():
    rng = random.Random(2)
    traffic = make_sim(rng=rng)
    traffic.populate(spacing=100.0)
    factors = {v.speed_factor for v in traffic.vehicles()}
    assert len(factors) > 1
    assert all(0.9 < f < 1.1 for f in factors)


def test_spawner_admits_vehicles_with_gap():
    spawner = EntranceSpawner(spawn_gap=30.0, entry_speed=30.0)
    traffic = make_sim(spawner=spawner)
    step_for(traffic, 10.0)
    assert spawner.spawned_count >= 8
    # all spawned in the single eastbound lane, ordered by progress
    vehicles = traffic.lane_vehicles(traffic.road.lanes[0])
    progresses = [v.progress for v in vehicles]
    assert progresses == sorted(progresses)


def test_spawner_blocked_direction_admits_nothing():
    spawner = EntranceSpawner(spawn_gap=30.0)
    spawner.block(Direction.EAST)
    traffic = make_sim(spawner=spawner)
    step_for(traffic, 5.0)
    assert spawner.spawned_count == 0


def test_on_spawn_callback_fires_for_populate_and_spawner():
    spawner = EntranceSpawner(spawn_gap=30.0)
    traffic = make_sim(spawner=spawner)
    seen = []
    traffic.on_spawn.append(seen.append)
    traffic.populate(spacing=500.0)
    n_populated = len(seen)
    assert n_populated == traffic.count_on_road()
    step_for(traffic, 3.0)
    assert len(seen) > n_populated


def test_hazard_stops_traffic_behind_it():
    traffic = make_sim(road=RoadSegment(length=2000.0, lanes_per_direction=1))
    traffic.add_hazard(HazardEvent(x=500.0, direction=Direction.EAST, start_time=0.0))
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=300.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 30.0)
    assert vehicle.speed == pytest.approx(0.0, abs=0.1)
    assert vehicle.x < 500.0


def test_hazard_does_not_stop_vehicles_past_it():
    traffic = make_sim(road=RoadSegment(length=2000.0, lanes_per_direction=1))
    traffic.add_hazard(HazardEvent(x=500.0, direction=Direction.EAST, start_time=0.0))
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=600.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 5.0)
    assert vehicle.speed == pytest.approx(30.0, abs=0.5)


def test_hazard_does_not_affect_other_direction():
    traffic = make_sim(
        road=RoadSegment(length=2000.0, lanes_per_direction=1, directions=2)
    )
    traffic.add_hazard(HazardEvent(x=500.0, direction=Direction.EAST, start_time=0.0))
    lane = traffic.road.westbound_lanes[0]
    vehicle = Vehicle(lane=lane, x=1500.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 10.0)
    assert vehicle.speed == pytest.approx(30.0, abs=0.5)


def test_hazard_inactive_before_start_time():
    traffic = make_sim(road=RoadSegment(length=2000.0, lanes_per_direction=1))
    traffic.add_hazard(
        HazardEvent(x=500.0, direction=Direction.EAST, start_time=1000.0)
    )
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=400.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 3.0)
    assert vehicle.speed == pytest.approx(30.0, abs=0.5)


def test_queue_forms_behind_hazard():
    spawner = EntranceSpawner(spawn_gap=30.0)
    traffic = make_sim(
        road=RoadSegment(length=2000.0, lanes_per_direction=1), spawner=spawner
    )
    traffic.add_hazard(HazardEvent(x=600.0, direction=Direction.EAST, start_time=0.0))
    step_for(traffic, 120.0)
    stopped = [v for v in traffic.vehicles() if v.speed < 0.5]
    assert len(stopped) >= 5
    xs = sorted(v.x for v in stopped)
    # queued bumper to bumper short of the hazard
    assert xs[-1] < 600.0
    assert xs[-1] - xs[0] < len(stopped) * 10.0


def test_forced_acceleration_overrides_idm():
    traffic = make_sim(road=RoadSegment(length=10000.0, lanes_per_direction=1))
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=0.0, speed=10.0, forced_acceleration=0.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 10.0)
    assert vehicle.speed == pytest.approx(10.0)


def test_speed_never_negative_under_forced_braking():
    traffic = make_sim()
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=0.0, speed=5.0, forced_acceleration=-8.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 5.0)
    assert vehicle.speed == 0.0


def test_on_step_callbacks_fire_each_step():
    traffic = make_sim()
    ticks = []
    traffic.on_step.append(ticks.append)
    step_for(traffic, 1.0)
    assert len(ticks) == 10


def test_start_schedules_periodic_stepping():
    sim = Simulator()
    traffic = make_sim()
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=0.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    traffic.start(sim)
    sim.run_until(5.0)
    assert vehicle.x == pytest.approx(150.0, rel=0.05)


def test_start_twice_raises():
    sim = Simulator()
    traffic = make_sim()
    traffic.start(sim)
    with pytest.raises(RuntimeError):
        traffic.start(sim)


def test_invalid_dt_rejected():
    with pytest.raises(ValueError):
        make_sim(dt=0.0)


def test_invalid_speed_factor_spread_rejected():
    with pytest.raises(ValueError):
        make_sim(speed_factor_spread=1.5)


def test_runout_keeps_vehicles_past_the_segment():
    traffic = make_sim()
    traffic.runout = 200.0
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=995.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 3.0)
    # Past the segment but inside the runout: still active, not counted.
    assert vehicle.active
    assert traffic.count_on_road() == 0
    assert list(traffic.vehicles(on_road_only=True)) == []
    assert list(traffic.vehicles()) == [vehicle]
    step_for(traffic, 7.0)
    assert not vehicle.active


def test_negative_runout_rejected():
    with pytest.raises(ValueError):
        TrafficSimulation(
            RoadSegment(length=100.0, lanes_per_direction=1), runout=-1.0
        )
