"""Tests for the traffic layer's grid-backed proximity queries
(:meth:`TrafficSimulation.vehicles_near`, :meth:`leader_of`)."""

import random

from repro.traffic.idm import IdmParameters
from repro.traffic.road import Direction, RoadSegment
from repro.traffic.simulation import TrafficSimulation
from repro.traffic.spawner import EntranceSpawner
from repro.traffic.vehicle import Vehicle


def make_sim(road=None, **kwargs):
    return TrafficSimulation(
        road or RoadSegment(length=2000.0, lanes_per_direction=2),
        IdmParameters(),
        **kwargs,
    )


def step_for(traffic, seconds):
    steps = int(seconds / traffic.dt)
    t = traffic._now
    for _ in range(steps):
        t += traffic.dt
        traffic.step(t)


def brute_force_near(traffic, x, y, radius, direction=None):
    out = []
    for vehicle in traffic.vehicles():
        if direction is not None and vehicle.direction is not direction:
            continue
        dx = vehicle.x - x
        dy = vehicle.lane.y - y
        if dx * dx + dy * dy <= radius * radius:
            out.append(vehicle)
    out.sort(key=lambda v: (v.lane.index, v.progress, v.vehicle_id))
    return out


def test_vehicles_near_matches_brute_force_after_populate():
    traffic = make_sim(rng=random.Random(3))
    traffic.populate(spacing=30.0)
    lane_y = traffic.road.lanes[0].y
    for radius in (10.0, 75.0, 260.0, 900.0):
        got = traffic.vehicles_near(1000.0, lane_y, radius)
        assert got == brute_force_near(traffic, 1000.0, lane_y, radius)
    assert traffic.vehicles_near(1000.0, lane_y, 75.0, direction=Direction.EAST) == (
        brute_force_near(traffic, 1000.0, lane_y, 75.0, Direction.EAST)
    )


def test_vehicles_near_tracks_movement_across_steps():
    traffic = make_sim(rng=random.Random(5))
    traffic.populate(spacing=60.0)
    lane_y = traffic.road.lanes[0].y
    for _ in range(5):
        step_for(traffic, 2.0)
        got = traffic.vehicles_near(500.0, lane_y, 150.0)
        assert got == brute_force_near(traffic, 500.0, lane_y, 150.0)


def test_retired_vehicles_leave_the_index():
    road = RoadSegment(length=300.0, lanes_per_direction=1)
    traffic = make_sim(road=road)
    lane = road.lanes[0]
    vehicle = Vehicle(lane=lane, x=290.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    step_for(traffic, 5.0)  # drives off the end (no runout configured)
    assert list(traffic.vehicles()) == []
    assert traffic.vehicles_near(300.0, lane.y, 1000.0) == []
    assert len(traffic._grid) == 0


def test_spawned_vehicles_enter_the_index():
    road = RoadSegment(length=2000.0, lanes_per_direction=1)
    spawner = EntranceSpawner(spawn_gap=30.0, entry_speed=30.0)
    traffic = make_sim(road=road, spawner=spawner, rng=random.Random(11))
    step_for(traffic, 10.0)
    count = sum(1 for _ in traffic.vehicles())
    assert count > 0
    assert len(traffic._grid) == count
    lane_y = road.lanes[0].y
    assert traffic.vehicles_near(0.0, lane_y, 400.0) == brute_force_near(
        traffic, 0.0, lane_y, 400.0
    )


def test_leader_of_matches_sorted_lane_order():
    traffic = make_sim(rng=random.Random(9))
    traffic.populate(spacing=40.0)
    for lane in traffic.road.lanes:
        ordered = traffic.lane_vehicles(lane)  # sorted by progress
        for follower, leader in zip(ordered, ordered[1:]):
            if leader.progress - follower.progress <= 250.0:
                assert traffic.leader_of(follower) is leader
        assert traffic.leader_of(ordered[-1]) is None


def test_leader_of_respects_within_limit():
    road = RoadSegment(length=2000.0, lanes_per_direction=1)
    traffic = make_sim(road=road)
    lane = road.lanes[0]
    rear = Vehicle(lane=lane, x=0.0, speed=30.0)
    front = Vehicle(lane=lane, x=180.0, speed=30.0)
    traffic.add_vehicle(rear)
    traffic.add_vehicle(front)
    assert traffic.leader_of(rear) is front  # default limit = cell size 250
    assert traffic.leader_of(rear, within=100.0) is None
    assert traffic.leader_of(rear, within=180.0) is front


def test_leader_of_ignores_other_lanes_and_vehicles_behind():
    road = RoadSegment(length=2000.0, lanes_per_direction=2)
    traffic = make_sim(road=road)
    east_lanes = [lane for lane in road.lanes if lane.direction is Direction.EAST]
    subject = Vehicle(lane=east_lanes[0], x=100.0, speed=30.0)
    behind = Vehicle(lane=east_lanes[0], x=50.0, speed=30.0)
    other_lane = Vehicle(lane=east_lanes[1], x=120.0, speed=30.0)
    traffic.add_vehicle(subject)
    traffic.add_vehicle(behind)
    traffic.add_vehicle(other_lane)
    assert traffic.leader_of(subject) is None
    assert traffic.leader_of(behind) is subject


def test_leader_of_westbound_lane_uses_progress_not_x():
    road = RoadSegment(length=1000.0, lanes_per_direction=1, directions=2)
    traffic = make_sim(road=road)
    west = next(lane for lane in road.lanes if lane.direction is Direction.WEST)
    # Westbound progress runs against x: the leader has the *smaller* x.
    rear = Vehicle(lane=west, x=600.0, speed=30.0)
    front = Vehicle(lane=west, x=500.0, speed=30.0)
    traffic.add_vehicle(rear)
    traffic.add_vehicle(front)
    assert traffic.leader_of(rear) is front
    assert traffic.leader_of(front) is None


def test_query_before_any_step_works():
    traffic = make_sim()
    lane = traffic.road.lanes[0]
    vehicle = Vehicle(lane=lane, x=100.0, speed=30.0)
    traffic.add_vehicle(vehicle)
    assert traffic.vehicles_near(100.0, lane.y, 5.0) == [vehicle]
