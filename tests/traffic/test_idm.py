"""Tests for the Intelligent Driver Model."""

import math

import numpy as np
import pytest

from repro.traffic.idm import (
    IdmParameters,
    desired_gap,
    idm_acceleration,
    idm_acceleration_array,
)


def test_table1_defaults():
    params = IdmParameters()
    assert params.desired_velocity == 30.0
    assert params.safe_time_headway == 1.5
    assert params.max_acceleration == 1.0
    assert params.comfortable_deceleration == 3.0
    assert params.acceleration_exponent == 4.0
    assert params.minimum_distance == 2.0
    assert params.vehicle_length == 4.5


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        IdmParameters(desired_velocity=0)
    with pytest.raises(ValueError):
        IdmParameters(acceleration_exponent=0.5)
    with pytest.raises(ValueError):
        IdmParameters(minimum_distance=-1)


def test_free_road_accelerates_below_desired_speed():
    params = IdmParameters()
    assert idm_acceleration(10.0, math.inf, 0.0, params) > 0


def test_free_road_zero_accel_at_desired_speed():
    params = IdmParameters()
    assert idm_acceleration(30.0, math.inf, 0.0, params) == pytest.approx(0.0)


def test_decelerates_above_desired_speed():
    params = IdmParameters()
    assert idm_acceleration(35.0, math.inf, 0.0, params) < 0


def test_standstill_at_minimum_distance_stays_put():
    params = IdmParameters()
    a = idm_acceleration(0.0, params.minimum_distance, 0.0, params)
    assert a <= 0.0  # never pulls forward into the minimum gap


def test_small_gap_brakes_hard():
    params = IdmParameters()
    a = idm_acceleration(30.0, 5.0, 0.0, params)
    assert a < -5.0


def test_approaching_slower_leader_decelerates():
    params = IdmParameters()
    fast_closing = idm_acceleration(30.0, 50.0, 10.0, params)
    steady = idm_acceleration(30.0, 50.0, 30.0, params)
    assert fast_closing < steady


def test_desired_gap_grows_with_speed():
    params = IdmParameters()
    assert desired_gap(30.0, 0.0, params) > desired_gap(10.0, 0.0, params)


def test_desired_gap_at_standstill_is_minimum_distance():
    params = IdmParameters()
    assert desired_gap(0.0, 0.0, params) == params.minimum_distance


def test_array_matches_scalar():
    params = IdmParameters()
    speeds = np.array([0.0, 10.0, 30.0, 30.0])
    gaps = np.array([math.inf, 50.0, 5.0, math.inf])
    lead = np.array([0.0, 10.0, 0.0, 0.0])
    batch = idm_acceleration_array(speeds, gaps, lead, params)
    for i in range(len(speeds)):
        scalar = idm_acceleration(speeds[i], gaps[i], lead[i], params)
        assert batch[i] == pytest.approx(scalar)


def test_array_with_per_vehicle_desired_velocity():
    params = IdmParameters()
    speeds = np.array([30.0, 30.0])
    gaps = np.array([math.inf, math.inf])
    lead = np.zeros(2)
    desired = np.array([30.0, 33.0])
    out = idm_acceleration_array(speeds, gaps, lead, params, desired)
    assert out[0] == pytest.approx(0.0)
    assert out[1] > 0  # wants to go faster than 30


def test_zero_gap_does_not_blow_up():
    params = IdmParameters()
    a = idm_acceleration(10.0, 0.0, 0.0, params)
    assert math.isfinite(a)
    assert a < -10  # emergency-level braking
