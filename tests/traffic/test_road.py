"""Tests for road geometry."""

import math

import pytest

from repro.traffic.road import Direction, RoadSegment


def test_default_road_is_paper_default():
    road = RoadSegment()
    assert road.length == 4000.0
    assert road.lanes_per_direction == 2
    assert road.lane_width == 5.0
    assert road.directions == 1
    assert len(road.lanes) == 2


def test_two_direction_road_has_double_lanes():
    road = RoadSegment(directions=2)
    assert len(road.lanes) == 4
    assert len(road.eastbound_lanes) == 2
    assert len(road.westbound_lanes) == 2


def test_lane_centerlines_stack_upward():
    road = RoadSegment(directions=2)
    ys = [lane.y for lane in road.lanes]
    assert ys == [2.5, 7.5, 12.5, 17.5]


def test_total_width():
    assert RoadSegment().total_width == 10.0
    assert RoadSegment(directions=2).total_width == 20.0


def test_eastbound_entrance_at_zero():
    road = RoadSegment()
    assert road.eastbound_lanes[0].entrance_x() == 0.0


def test_westbound_entrance_at_length():
    road = RoadSegment(directions=2)
    assert road.westbound_lanes[0].entrance_x() == 4000.0


def test_eastbound_progress_is_x():
    road = RoadSegment()
    assert road.eastbound_lanes[0].progress(1234.0) == 1234.0


def test_westbound_progress_measured_from_east_end():
    road = RoadSegment(directions=2)
    assert road.westbound_lanes[0].progress(3000.0) == 1000.0


def test_direction_headings():
    assert Direction.EAST.heading == 0.0
    assert Direction.WEST.heading == pytest.approx(math.pi)


def test_contains_x():
    road = RoadSegment(length=100.0)
    assert road.contains_x(0.0)
    assert road.contains_x(100.0)
    assert not road.contains_x(-0.1)
    assert not road.contains_x(100.1)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        RoadSegment(length=0)
    with pytest.raises(ValueError):
        RoadSegment(lanes_per_direction=0)
    with pytest.raises(ValueError):
        RoadSegment(directions=3)


def test_lane_indices_unique_and_sequential():
    road = RoadSegment(directions=2, lanes_per_direction=2)
    assert [lane.index for lane in road.lanes] == [0, 1, 2, 3]
