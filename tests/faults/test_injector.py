"""Unit tests for the fault injector against the mini testbed."""

import pytest

from repro.faults import (
    BeaconTimingPlan,
    FaultPlan,
    GpsFaultPlan,
    FaultInjector,
)
from repro.geo.position import Position, PositionVector
from repro.observability import PacketLedger, reasons


def make_injector(tb, plan, *, ledger=None):
    return FaultInjector(
        plan, sim=tb.sim, streams=tb.streams, channel=tb.channel, ledger=ledger
    )


# ----------------------------------------------------------------------
# link loss
# ----------------------------------------------------------------------
def test_link_faults_require_a_channel(testbed):
    with pytest.raises(ValueError):
        FaultInjector(
            FaultPlan.lossy(0.1), sim=testbed.sim, streams=testbed.streams
        )


def test_iid_link_loss_drops_frames(testbed):
    injector = make_injector(testbed, FaultPlan.lossy(0.5))
    testbed.chain(3, 200.0)
    testbed.warm_up(10.0)
    assert injector.stats.link_fault_drops > 0
    assert (
        testbed.channel.stats.frames_fault_dropped
        == injector.stats.link_fault_drops
    )
    # faulted copies are a subset of, not an addition to, delivered frames
    assert testbed.channel.stats.frames_delivered > 0


def test_link_loss_is_seed_deterministic(make_testbed):
    counts = []
    for _ in range(2):
        tb = make_testbed(seed=11)
        injector = make_injector(tb, FaultPlan.lossy(0.3))
        tb.chain(3, 200.0)
        tb.warm_up(10.0)
        counts.append(
            (
                injector.stats.link_fault_drops,
                tb.channel.stats.frames_sent,
                tb.channel.stats.frames_delivered,
            )
        )
    assert counts[0] == counts[1]


def test_burst_loss_uses_per_link_markov_state(testbed):
    plan = FaultPlan.bursty(burst_p=1.0, burst_r=0.05, burst_loss=1.0)
    injector = make_injector(testbed, plan)
    testbed.chain(2, 200.0)
    testbed.warm_up(10.0)
    # burst_p=1: every link turns bad on its first frame and mostly stays
    # bad, so transitions happened and nearly every frame copy was eaten.
    assert injector.stats.burst_transitions > 0
    assert injector.stats.link_fault_drops > 0
    assert len(injector._link_bad) > 0
    for key in injector._link_bad:
        sender, receiver = key
        assert sender != receiver


def test_zero_plan_installs_no_channel_hook(testbed):
    make_injector(testbed, FaultPlan())
    assert testbed.channel.link_fault is None


# ----------------------------------------------------------------------
# churn
# ----------------------------------------------------------------------
def test_churn_cycles_outages_and_reboots(testbed):
    injector = make_injector(testbed, FaultPlan.churning(2.0, mean_downtime=1.0))
    nodes = testbed.chain(2, 200.0)
    for node in nodes:
        injector.adopt(node)
    testbed.warm_up(40.0)
    assert injector.stats.outages > 0
    assert injector.stats.reboots > 0
    # conservation of power states: every node is either up or down and
    # never double-counted
    for node in nodes:
        assert node.is_down == injector.is_down_addr(node.address)


def test_outage_powers_the_node_off_and_reboot_restores_it(testbed):
    injector = make_injector(testbed, FaultPlan.churning(1000.0))
    a, b = testbed.chain(2, 200.0)
    injector.adopt(b)
    testbed.warm_up(8.0)
    assert b.router.loct.get(a.address, testbed.sim.now) is not None
    stats_obj = b.router.stats
    accepted_before = stats_obj.beacons_accepted

    injector._outage(b)
    assert b.is_down
    assert injector.is_down_addr(b.address)
    assert b.beacon_service is None
    assert b.iface not in testbed.channel._interfaces
    assert injector.stats.outages == 1

    injector._reboot(b)
    assert not b.is_down
    assert not injector.is_down_addr(b.address)
    assert b.beacon_service is not None
    assert b.iface in testbed.channel._interfaces
    # volatile state wiped on reboot...
    assert b.router.loct.get(a.address, testbed.sim.now) is None
    # ...but the stats objects (and their counts) survive
    assert b.router.stats is stats_obj
    assert b.router.stats.beacons_accepted == accepted_before
    testbed.warm_up(8.0)
    # the node relearns its neighbor and keeps counting on the same object
    assert b.router.loct.get(a.address, testbed.sim.now) is not None
    assert b.router.stats.beacons_accepted > accepted_before


def test_release_cancels_pending_churn_timer(testbed):
    injector = make_injector(testbed, FaultPlan.churning(50.0))
    (node,) = testbed.chain(1, 100.0)
    injector.adopt(node)
    timer = injector._churn_timers[node]
    injector.release(node)
    assert timer.cancelled
    assert node not in injector._churn_timers
    assert not injector.is_down_addr(node.address)


def test_outage_skips_already_shut_down_nodes(testbed):
    injector = make_injector(testbed, FaultPlan.churning(50.0))
    (node,) = testbed.chain(1, 100.0)
    node.shutdown()
    injector._outage(node)
    assert injector.stats.outages == 0
    assert not injector.is_down_addr(node.address)


def test_down_node_sends_and_originates_nothing(testbed):
    ledger = PacketLedger()
    injector = make_injector(
        testbed, FaultPlan.churning(1000.0), ledger=ledger
    )
    a, b = testbed.chain(2, 200.0, ledger=ledger)
    injector.adopt(a)
    testbed.warm_up(5.0)
    injector._outage(a)
    sent_before = testbed.channel.stats.frames_sent
    a.send_beacon()
    assert testbed.channel.stats.frames_sent == sent_before


def test_cbf_copies_buffered_at_outage_are_ledgered_node_down(testbed):
    from repro.geo.areas import RectangularArea

    ledger = PacketLedger()
    injector = make_injector(
        testbed, FaultPlan.churning(1000.0), ledger=ledger
    )
    nodes = testbed.chain(3, 300.0, ledger=ledger)
    for node in nodes:
        injector.adopt(node)
    testbed.warm_up(5.0)
    area = RectangularArea(-50.0, 1000.0, -50.0, 50.0)
    nodes[0].originate(area, "flood")
    # step in sub-contention increments until a neighbor holds a buffered
    # CBF copy, then power it off mid-contention
    victim = None
    for _ in range(200):
        testbed.sim.run_until(testbed.sim.now + 0.0005)
        for node in nodes[1:]:
            if node.router.cbf._buffers:
                victim = node
                break
        if victim is not None:
            break
    assert victim is not None, "no CBF copy was ever buffered"
    injector._outage(victim)
    assert not victim.router.cbf._buffers
    assert ledger.copy_drop_totals().get(reasons.NODE_DOWN, 0) >= 1


# ----------------------------------------------------------------------
# GPS error
# ----------------------------------------------------------------------
def _pv(x, y, t):
    return PositionVector(
        position=Position(x, y), speed=10.0, heading=0.0, timestamp=t
    )


def test_gps_error_perturbs_beacon_pv_not_mobility(testbed):
    injector = make_injector(
        testbed, FaultPlan(gps=GpsFaultPlan(error_stddev=5.0))
    )
    (node,) = testbed.chain(1, 100.0)
    injector.adopt(node)
    assert node.pv_fault is not None
    true_pv = _pv(100.0, 0.0, 1.0)
    faulted = node.pv_fault(true_pv)
    assert faulted.position != true_pv.position
    assert faulted.timestamp == true_pv.timestamp
    assert faulted.speed == true_pv.speed
    # the mobility source is untouched
    assert node.position() == Position(0.0, 0.0)
    assert injector.stats.gps_faulted_beacons == 1


def test_gps_drift_accumulates_as_a_random_walk(testbed):
    injector = make_injector(
        testbed, FaultPlan(gps=GpsFaultPlan(drift_rate=2.0))
    )
    (node,) = testbed.chain(1, 100.0)
    injector.adopt(node)
    offsets = []
    for i in range(50):
        faulted = node.pv_fault(_pv(0.0, 0.0, float(i)))
        offsets.append(
            (faulted.position.x, faulted.position.y)
        )
    # the first call has no dt, so no offset yet
    assert offsets[0] == (0.0, 0.0)
    # a random walk moves: by step 50 the offset is almost surely non-zero
    assert offsets[-1] != (0.0, 0.0)


def test_each_node_gets_independent_drift_state(testbed):
    injector = make_injector(
        testbed, FaultPlan(gps=GpsFaultPlan(drift_rate=2.0))
    )
    a, b = testbed.chain(2, 100.0)
    injector.adopt(a)
    injector.adopt(b)
    for i in range(10):
        fa = a.pv_fault(_pv(0.0, 0.0, float(i)))
        fb = b.pv_fault(_pv(0.0, 0.0, float(i)))
    assert (fa.position.x, fa.position.y) != (fb.position.x, fb.position.y)


# ----------------------------------------------------------------------
# beacon timing
# ----------------------------------------------------------------------
def test_extra_jitter_draws_are_bounded(testbed):
    injector = make_injector(
        testbed, FaultPlan(beacon=BeaconTimingPlan(extra_jitter=0.25))
    )
    (node,) = testbed.chain(1, 100.0)
    injector.adopt(node)
    draws = [node.beacon_extra_jitter() for _ in range(100)]
    assert all(0.0 <= d <= 0.25 for d in draws)
    assert max(draws) > 0.0
    assert injector.stats.extra_jitter_draws == 100


def test_adoption_installs_only_enabled_hooks(testbed):
    injector = make_injector(testbed, FaultPlan.lossy(0.1))
    (node,) = testbed.chain(1, 100.0)
    injector.adopt(node)
    assert node.pv_fault is None
    assert node.beacon_extra_jitter is None
    assert node not in injector._churn_timers
