"""End-to-end fault-injection runs through the experiment World.

The two contracts under test:

* **bit-identity** — a zero fault plan changes *nothing*: same digests,
  same frame counts, same RNG draw sequence as a plan-less run;
* **conservation** — under link loss and churn, the packet ledger still
  assigns every originated packet exactly one terminal outcome, with the
  new ``faulted-link-loss`` / ``node-down`` reasons absorbing the faults.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.faults import ChurnPlan, FaultPlan, LinkFaultPlan
from repro.observability import PacketLedger, reasons
from tests.experiments._golden_capture import outcome_digest

FAULT_PLAN = FaultPlan(
    link=LinkFaultPlan(loss_rate=0.1),
    churn=ChurnPlan(mean_uptime=30.0, mean_downtime=5.0),
)


def _fingerprint(result):
    return (
        outcome_digest(result),
        result.n_packets,
        result.overall_rate,
        int(result.extras["frames_sent"]),
        int(result.extras["frames_delivered"]),
        int(result.extras["unicast_lost"]),
    )


def test_zero_fault_plan_is_bit_identical_to_no_plan():
    config = ExperimentConfig.inter_area_default(duration=12.0, seed=5)
    plain = run_single(config, attacked=True)
    zeroed = run_single(config.with_(faults=FaultPlan()), attacked=True)
    explicit = run_single(
        config.with_(
            faults=FaultPlan(link=LinkFaultPlan(loss_rate=0.0, burst_p=0.0))
        ),
        attacked=True,
    )
    assert _fingerprint(plain) == _fingerprint(zeroed) == _fingerprint(explicit)


def test_zero_plan_constructs_no_injector():
    from repro.experiments.world import World

    config = ExperimentConfig.inter_area_default(duration=5.0, seed=1)
    world = World(config, attacked=False)
    assert world.fault_injector is None
    assert world.channel.link_fault is None


def test_faulted_run_differs_from_the_ideal_run():
    config = ExperimentConfig.inter_area_default(duration=12.0, seed=5)
    plain = run_single(config, attacked=False)
    faulted = run_single(config.with_(faults=FAULT_PLAN), attacked=False)
    assert _fingerprint(plain) != _fingerprint(faulted)
    assert faulted.extras["fault_link_fault_drops"] > 0
    assert faulted.extras["fault_outages"] > 0


@pytest.mark.slow
def test_ledger_conserves_outcomes_under_loss_and_churn():
    config = ExperimentConfig.inter_area_default(duration=30.0, seed=3).with_(
        faults=FAULT_PLAN
    )
    ledger = PacketLedger()
    result = run_single(config, attacked=True, ledger=ledger)
    totals = ledger.outcome_totals()
    # conservation: every originated packet has exactly one outcome
    assert sum(totals.values()) == len(ledger) == result.n_packets
    assert result.extras["fault_outages"] > 0
    assert result.extras["fault_link_fault_drops"] > 0
    assert (
        result.extras["frames_fault_dropped"]
        == result.extras["fault_link_fault_drops"]
    )
    # the fault reasons actually absorb packets (copy-level at minimum)
    fault_events = (
        totals.get(reasons.FAULTED_LINK_LOSS, 0)
        + totals.get(reasons.NODE_DOWN, 0)
        + ledger.copy_drop_totals().get(reasons.NODE_DOWN, 0)
        + ledger.copy_drop_totals().get(reasons.FAULTED_LINK_LOSS, 0)
    )
    assert fault_events > 0


@pytest.mark.slow
def test_ledger_conserves_outcomes_under_gps_and_beacon_faults():
    from repro.faults import BeaconTimingPlan, GpsFaultPlan

    plan = FaultPlan(
        gps=GpsFaultPlan(error_stddev=5.0, drift_rate=1.0),
        beacon=BeaconTimingPlan(extra_jitter=0.2),
    )
    config = ExperimentConfig.inter_area_default(duration=20.0, seed=3).with_(
        faults=plan
    )
    ledger = PacketLedger()
    result = run_single(config, attacked=False, ledger=ledger)
    assert sum(ledger.outcome_totals().values()) == len(ledger)
    assert result.extras["fault_gps_faulted_beacons"] > 0
    assert result.extras["fault_extra_jitter_draws"] > 0


def test_invariant_checker_runs_clean_on_a_healthy_world():
    config = ExperimentConfig.inter_area_default(duration=8.0, seed=2).with_(
        invariant_check_interval=1.0
    )
    ledger = PacketLedger()
    result = run_single(config, attacked=False, ledger=ledger)
    assert result.extras["invariant_checks_run"] >= 7


def test_invariant_checker_with_faults_enabled():
    """Churn exercises exactly the paths the checker audits (grid
    membership, LocT wipes, CBF teardown) — a faulted run must stay
    invariant-clean."""
    config = ExperimentConfig.inter_area_default(duration=10.0, seed=4).with_(
        faults=FaultPlan.churning(10.0, mean_downtime=2.0),
        invariant_check_interval=0.5,
    )
    ledger = PacketLedger()
    result = run_single(config, attacked=True, ledger=ledger)
    assert result.extras["invariant_checks_run"] >= 19
    assert result.extras["fault_outages"] > 0


def test_fault_sweep_renders_the_impairment_grid(monkeypatch):
    from repro.experiments import impairments

    monkeypatch.setattr(impairments, "LOSS_LEVELS", (0.0, 0.2))
    monkeypatch.setattr(
        impairments, "CHURN_LEVELS", (("none", 0.0), ("heavy", 15.0))
    )
    sweep = impairments.fault_sweep(runs=1, duration=8.0, seed=2)
    assert len(sweep.cells) == 4
    text = sweep.format()
    assert "loss x node churn" in text
    assert "churn=heavy" in text
    assert "loss= 20%" in text
    # the ideal cell is flagged as the paper's reference point
    assert "ideal-environment" in text
    cell = sweep.get(0.2, "heavy")
    assert not cell.result.config.faults.is_zero
    assert cell.result.config.faults.link.loss_rate == 0.2


@pytest.mark.slow
def test_fault_sweep_through_the_store_backed_campaign(monkeypatch, tmp_path):
    from repro.experiments import impairments
    from repro.experiments.campaign import run_campaign
    from repro.experiments.store import ResultStore

    monkeypatch.setattr(impairments, "LOSS_LEVELS", (0.0,))
    monkeypatch.setattr(impairments, "CHURN_LEVELS", (("heavy", 15.0),))
    store = ResultStore(tmp_path)
    report = run_campaign(
        ["faults"],
        store=store,
        runs=1,
        duration=8.0,
        seed=2,
        processes=1,
        resume=True,
        log_stream=None,
    )
    assert report.ok
    assert "faults" in report.outputs
    assert "churn=heavy" in report.outputs["faults"]
    # the sweep's runs landed in the store: a re-issue is free
    again = run_campaign(
        ["faults"],
        store=store,
        runs=1,
        duration=8.0,
        seed=2,
        processes=1,
        resume=True,
        log_stream=None,
    )
    assert again.skipped == again.planned
    assert again.executed == 0
