"""Validation and composition tests for fault plans."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    BeaconTimingPlan,
    ChurnPlan,
    FaultPlan,
    GpsFaultPlan,
    LinkFaultPlan,
)


def test_default_plan_is_zero():
    plan = FaultPlan()
    assert plan.is_zero
    assert not plan.link.enabled
    assert not plan.churn.enabled
    assert not plan.gps.enabled
    assert not plan.beacon.enabled


def test_explicit_zero_values_are_still_zero():
    plan = FaultPlan(
        link=LinkFaultPlan(loss_rate=0.0, burst_p=0.0),
        churn=ChurnPlan(mean_uptime=0.0),
        gps=GpsFaultPlan(error_stddev=0.0, drift_rate=0.0),
        beacon=BeaconTimingPlan(extra_jitter=0.0),
    )
    assert plan.is_zero


@pytest.mark.parametrize(
    "plan",
    [
        FaultPlan.lossy(0.1),
        FaultPlan.bursty(),
        FaultPlan.churning(60.0),
        FaultPlan(gps=GpsFaultPlan(error_stddev=2.0)),
        FaultPlan(gps=GpsFaultPlan(drift_rate=0.5)),
        FaultPlan(beacon=BeaconTimingPlan(extra_jitter=0.1)),
    ],
)
def test_any_enabled_dimension_makes_the_plan_non_zero(plan):
    assert not plan.is_zero


def test_factories_enable_exactly_one_dimension():
    lossy = FaultPlan.lossy(0.2)
    assert lossy.link.enabled and not lossy.churn.enabled
    assert lossy.link.loss_rate == 0.2
    bursty = FaultPlan.bursty(burst_p=0.1, burst_r=0.5, burst_loss=0.9)
    assert bursty.link.enabled and bursty.link.loss_rate == 0.0
    churning = FaultPlan.churning(45.0, mean_downtime=3.0)
    assert churning.churn.enabled and not churning.link.enabled
    assert churning.churn.mean_downtime == 3.0


@pytest.mark.parametrize(
    "build, field_name",
    [
        (lambda: LinkFaultPlan(loss_rate=1.0), "link.loss_rate"),
        (lambda: LinkFaultPlan(loss_rate=-0.1), "link.loss_rate"),
        (lambda: LinkFaultPlan(burst_p=1.5), "link.burst_p"),
        (lambda: LinkFaultPlan(burst_loss=-0.2), "link.burst_loss"),
        (lambda: LinkFaultPlan(burst_p=0.1, burst_r=0.0), "link.burst_r"),
        (lambda: ChurnPlan(mean_uptime=-1.0), "churn.mean_uptime"),
        (
            lambda: ChurnPlan(mean_uptime=10.0, mean_downtime=0.0),
            "churn.mean_downtime",
        ),
        (lambda: GpsFaultPlan(error_stddev=-1.0), "gps.error_stddev"),
        (lambda: GpsFaultPlan(drift_rate=-0.5), "gps.drift_rate"),
        (lambda: BeaconTimingPlan(extra_jitter=-0.1), "beacon.extra_jitter"),
    ],
)
def test_validation_names_the_offending_field(build, field_name):
    with pytest.raises(ConfigError, match=field_name.replace(".", r"\.")):
        build()


def test_config_error_is_a_value_error():
    assert issubclass(ConfigError, ValueError)
    with pytest.raises(ValueError):
        LinkFaultPlan(loss_rate=2.0)


def test_plans_are_frozen_and_hashable():
    plan = FaultPlan.lossy(0.1)
    assert hash(plan) == hash(FaultPlan.lossy(0.1))
    assert plan != FaultPlan.lossy(0.2)
    with pytest.raises(Exception):
        plan.link = LinkFaultPlan()


def test_plan_feeds_the_store_config_hash():
    """Two configs differing only in their fault plan must never share a
    stored run."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.store import config_hash

    base = ExperimentConfig.inter_area_default(duration=10.0, seed=3)
    faulted = base.with_(faults=FaultPlan.lossy(0.05))
    assert config_hash(base) != config_hash(faulted)
    assert config_hash(faulted) == config_hash(
        base.with_(faults=FaultPlan.lossy(0.05))
    )
