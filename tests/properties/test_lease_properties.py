"""Property-based tests (hypothesis) for the lease state machine.

:class:`~repro.experiments.service.leases.LeaseStateMachine` is pure and
clock-free — time is a parameter — so hypothesis can drive it through
arbitrary interleavings of ``lease`` / ``heartbeat`` / ``complete`` /
``fail`` at arbitrary timestamps and assert the protocol invariants
after *every* event:

* every job is always in exactly one of the four states;
* at most one worker holds a live (unexpired) lease on a job — a lease
  is only ever granted when no live holder exists;
* ``done`` and ``failed`` are terminal (absorbing);
* attempts never exceed ``max_attempts``;

and, after quiescence (draining the queue with expired-lease takeover),
every job ends in a terminal state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.service.leases import JobState, LeaseStateMachine

MAX_ATTEMPTS = 3
WORKERS = ("w0", "w1", "w2")
OPS = ("lease", "heartbeat", "complete", "fail")


@st.composite
def scenarios(draw):
    """A job set plus a raw event interleaving.

    Events reference jobs and workers arbitrarily — including workers
    acting on jobs they never leased and leases long expired — because
    the machine must *reject* invalid transitions, not corrupt state.
    """
    n_jobs = draw(st.integers(min_value=1, max_value=4))
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(OPS),
                st.sampled_from(WORKERS),
                st.integers(min_value=0, max_value=n_jobs - 1),
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
            ),
            max_size=40,
        )
    )
    return n_jobs, events


def job_name(index):
    return f"job-{index}"


def apply_events(machine, job_ids, events):
    """Replay ``events``, asserting the invariants after every single one.

    Returns the final timestamp.  ``heartbeat``/``complete``/``fail``
    prefer a job the worker actually holds (when it holds any) so the
    happy paths get exercised, but fall back to the event's arbitrary job
    to probe the rejection paths.
    """
    now = 0.0
    terminal_seen = {}
    for op, worker, job_index, dt, ttl in events:
        now += dt
        target = job_ids[job_index]
        if op != "lease":
            held = [j for j in job_ids if machine.holder_of(j, now) == worker]
            if held and target not in held:
                target = held[0]
        if op == "lease":
            previous_holder = {
                j: machine.holder_of(j, now) for j in job_ids
            }
            lease = machine.lease(worker, now, ttl)
            if lease is not None:
                # granted only when nobody held a live lease on it
                assert previous_holder[lease.job_id] is None
                assert machine.holder_of(lease.job_id, now) == worker
                assert 1 <= lease.attempt <= MAX_ATTEMPTS
                assert lease.deadline == now + ttl
        elif op == "heartbeat":
            acknowledged = machine.heartbeat(worker, target, now, ttl)
            # a heartbeat succeeds iff the worker holds a live lease
            assert acknowledged == (machine.holder_of(target, now) == worker)
        elif op == "complete":
            if machine.complete(worker, target):
                assert machine.state_of(target) == JobState.DONE
        elif op == "fail":
            state = machine.fail(worker, target, "injected failure")
            assert state in (None, JobState.PENDING, JobState.FAILED)
        check_invariants(machine, job_ids, now, terminal_seen)
    return now


def check_invariants(machine, job_ids, now, terminal_seen):
    snapshot = machine.to_dict()
    live_holders = 0
    for job_id in job_ids:
        state = machine.state_of(job_id)
        # exactly one state, always a known one
        assert state in JobState.ALL
        # attempts are bounded
        assert 0 <= snapshot[job_id]["attempts"] <= MAX_ATTEMPTS
        # terminal states are absorbing
        if job_id in terminal_seen:
            assert state == terminal_seen[job_id]
        if state in JobState.TERMINAL:
            terminal_seen[job_id] = state
        if machine.holder_of(job_id, now) is not None:
            live_holders += 1
    counts = machine.counts(now)
    assert sum(counts.values()) == len(job_ids)
    assert counts[JobState.LEASED] >= live_holders  # expired count pending


def drain(machine, job_ids, now):
    """Drive the machine to quiescence as a well-behaved worker would:
    lease whatever is leasable, complete it, jump past deadlines when a
    (possibly dead) holder blocks progress."""
    for _ in range(len(job_ids) * (MAX_ATTEMPTS + 2) + 10):
        lease = machine.lease("drainer", now, 1.0)
        if lease is not None:
            assert machine.complete("drainer", lease.job_id)
            continue
        if machine.all_terminal(now):
            return now
        now += 100.0  # expire whatever some event-phase worker still holds
    raise AssertionError("queue failed to quiesce")


class TestLeaseStateMachineProperties:
    @settings(max_examples=200, deadline=None)
    @given(scenarios())
    def test_invariants_hold_under_arbitrary_interleavings(self, scenario):
        n_jobs, events = scenario
        machine = LeaseStateMachine(max_attempts=MAX_ATTEMPTS)
        job_ids = [job_name(i) for i in range(n_jobs)]
        for job_id in job_ids:
            assert machine.add(job_id)
            assert not machine.add(job_id)  # re-registration is a no-op
        apply_events(machine, job_ids, events)

    @settings(max_examples=200, deadline=None)
    @given(scenarios())
    def test_every_job_is_terminal_after_quiescence(self, scenario):
        n_jobs, events = scenario
        machine = LeaseStateMachine(max_attempts=MAX_ATTEMPTS)
        job_ids = [job_name(i) for i in range(n_jobs)]
        for job_id in job_ids:
            machine.add(job_id)
        now = apply_events(machine, job_ids, events)
        now = drain(machine, job_ids, now)
        assert machine.all_terminal(now)
        for job_id in job_ids:
            state = machine.state_of(job_id)
            assert state in JobState.TERMINAL
            # failed jobs carry an error, done jobs do not appear there
            assert (job_id in machine.errors()) == (state == JobState.FAILED)

    @settings(max_examples=200, deadline=None)
    @given(scenarios())
    def test_serialisation_round_trip_preserves_state(self, scenario):
        n_jobs, events = scenario
        machine = LeaseStateMachine(max_attempts=MAX_ATTEMPTS)
        job_ids = [job_name(i) for i in range(n_jobs)]
        for job_id in job_ids:
            machine.add(job_id)
        now = apply_events(machine, job_ids, events)
        clone = LeaseStateMachine.from_dict(
            machine.to_dict(), max_attempts=MAX_ATTEMPTS
        )
        assert clone.to_dict() == machine.to_dict()
        assert clone.counts(now) == machine.counts(now)
        for job_id in job_ids:
            assert clone.state_of(job_id) == machine.state_of(job_id)
            assert clone.holder_of(job_id, now) == machine.holder_of(
                job_id, now
            )

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    )
    def test_late_complete_accepted_only_until_releases(self, ttl, delay):
        """A completion after the deadline is still accepted — unless the
        job was re-leased to someone else in the meantime (then the stale
        completer is rejected)."""
        machine = LeaseStateMachine(max_attempts=MAX_ATTEMPTS)
        machine.add("job-0")
        lease = machine.lease("w0", 0.0, ttl)
        now = lease.deadline + delay
        stolen = machine.lease("w1", now, ttl)
        if stolen is not None:  # expired and re-granted: stale loser
            assert not machine.complete("w0", "job-0")
            assert machine.complete("w1", "job-0")
        else:  # still held (or late but unclaimed): completion lands
            assert machine.complete("w0", "job-0")
        assert machine.state_of("job-0") == JobState.DONE
