"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.vulnerability import VulnerabilityModel
from repro.geo.areas import CircularArea, RectangularArea
from repro.geo.position import Position, PositionVector
from repro.geonet.cbf import contention_timeout
from repro.geonet.checks import duplicate_rhl_plausible, position_plausible
from repro.geonet.config import GeoNetConfig
from repro.geonet.loct import LocationTable
from repro.security.signing import canonical_bytes
from repro.traffic.idm import IdmParameters, idm_acceleration
from repro.traffic.road import Direction

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive = st.floats(
    min_value=0.1, max_value=1e5, allow_nan=False, allow_infinity=False
)
positions = st.builds(Position, finite, finite)


class TestGeometryProperties:
    @given(positions, positions)
    def test_distance_symmetry(self, a, b):
        assert math.isclose(
            a.distance_to(b), b.distance_to(a), rel_tol=1e-12, abs_tol=1e-12
        )

    @given(positions, positions, positions)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(positions, positive)
    def test_circle_contains_iff_distance_zero(self, center, radius):
        area = CircularArea(center, radius)
        probe = center.translated(radius * 2, 0)
        assert area.contains(probe) == (area.distance_from(probe) == 0.0)

    @given(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        positive,
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        positive,
        positions,
    )
    def test_rectangle_distance_zero_iff_contains(self, x0, w, y0, h, probe):
        area = RectangularArea(x0, x0 + w, y0, y0 + h)
        assert (area.distance_from(probe) == 0.0) == area.contains(probe)

    @given(
        positions,
        st.floats(min_value=0, max_value=50, allow_nan=False),
        st.floats(min_value=0, max_value=2 * math.pi, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    def test_pv_extrapolation_consistent_with_speed(
        self, origin, speed, heading, t0, dt
    ):
        pv = PositionVector(origin, speed, heading, timestamp=t0)
        moved = pv.extrapolate(t0 + dt)
        assert math.isclose(
            origin.distance_to(moved), speed * dt, rel_tol=1e-9, abs_tol=1e-6
        )


class TestCbfTimeoutProperties:
    CONFIG = GeoNetConfig(to_min=0.001, to_max=0.100, dist_max=1283.0)

    @given(st.floats(min_value=0, max_value=5000, allow_nan=False))
    def test_timeout_within_bounds(self, dist):
        to = contention_timeout(dist, self.CONFIG)
        assert self.CONFIG.to_min <= to <= self.CONFIG.to_max

    @given(
        st.floats(min_value=0, max_value=1283, allow_nan=False),
        st.floats(min_value=0, max_value=1283, allow_nan=False),
    )
    def test_timeout_monotonically_decreasing(self, d1, d2):
        lo, hi = sorted([d1, d2])
        assert contention_timeout(hi, self.CONFIG) <= contention_timeout(
            lo, self.CONFIG
        ) + 1e-12


class TestIdmProperties:
    PARAMS = IdmParameters()

    @given(
        st.floats(min_value=0, max_value=60, allow_nan=False),
        st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
        st.floats(min_value=0, max_value=60, allow_nan=False),
    )
    def test_acceleration_bounded_above(self, v, gap, lead_v):
        a = idm_acceleration(v, gap, lead_v, self.PARAMS)
        assert a <= self.PARAMS.max_acceleration

    @given(
        st.floats(min_value=0, max_value=60, allow_nan=False),
        st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
        st.floats(min_value=0, max_value=60, allow_nan=False),
    )
    def test_smaller_gap_never_accelerates_more(self, v, gap, lead_v):
        tighter = idm_acceleration(v, gap / 2, lead_v, self.PARAMS)
        looser = idm_acceleration(v, gap, lead_v, self.PARAMS)
        assert tighter <= looser + 1e-9

    @given(st.floats(min_value=0, max_value=60, allow_nan=False))
    def test_free_road_sign(self, v):
        a = idm_acceleration(v, math.inf, 0.0, self.PARAMS)
        if v < self.PARAMS.desired_velocity:
            assert a > 0
        elif v > self.PARAMS.desired_velocity:
            assert a < 0


class TestLocationTableProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=4000, allow_nan=False),
            ),
            max_size=40,
        )
    )
    def test_live_entries_always_within_ttl(self, updates):
        loct = LocationTable(ttl=20.0)
        now = 0.0
        for addr, dt, x in updates:
            now += dt
            pv = PositionVector(Position(x, 0), 0.0, 0.0, now)
            loct.update(addr, pv, now)
        for entry in loct.live_entries(now):
            assert now - entry.updated_at <= 20.0

    @given(
        st.lists(st.integers(min_value=1, max_value=10), max_size=30),
    )
    def test_update_is_idempotent_on_count(self, addrs):
        loct = LocationTable(ttl=20.0)
        for addr in addrs:
            pv = PositionVector(Position(0, 0), 0.0, 0.0, 0.0)
            loct.update(addr, pv, 0.0)
        assert len(loct) == len(set(addrs))


class TestCheckProperties:
    @given(positions, positions, positive)
    def test_position_plausible_symmetric(self, a, b, threshold):
        assert position_plausible(a, b, threshold) == position_plausible(
            b, a, threshold
        )

    @given(
        st.integers(min_value=1, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=10),
    )
    def test_rhl_check_accepts_iff_drop_small(self, first, dup, threshold):
        assert duplicate_rhl_plausible(first, dup, threshold) == (
            first - dup <= threshold
        )

    @given(st.integers(min_value=2, max_value=255), st.integers(min_value=1, max_value=10))
    def test_rhl_check_always_accepts_one_hop_peers(self, first, threshold):
        assert duplicate_rhl_plausible(first, first - 1, threshold)

    @given(st.integers(min_value=5, max_value=255))
    def test_rhl_check_always_rejects_attacker_rewrite(self, first):
        # The attacker must set RHL to 1; for any source RHL >= 5 the
        # default threshold of 3 flags it.
        assert not duplicate_rhl_plausible(first, 1, 3)


class TestVulnerabilityProperties:
    @given(
        st.floats(min_value=100, max_value=3900, allow_nan=False),
        st.floats(min_value=50, max_value=2000, allow_nan=False),
        st.floats(min_value=50, max_value=1000, allow_nan=False),
        st.floats(min_value=0, max_value=4000, allow_nan=False),
    )
    def test_fca_sources_vulnerable_both_ways(
        self, attacker_x, attack_range, vehicle_range, x
    ):
        model = VulnerabilityModel(attacker_x, attack_range, vehicle_range, 4000.0)
        if model.in_fully_covered_area(x):
            assert model.vulnerable(x, Direction.EAST)
            assert model.vulnerable(x, Direction.WEST)

    @given(
        st.floats(min_value=100, max_value=3900, allow_nan=False),
        st.floats(min_value=50, max_value=2000, allow_nan=False),
        st.floats(min_value=50, max_value=1000, allow_nan=False),
    )
    def test_eastbound_vulnerability_monotone_in_x(
        self, attacker_x, attack_range, vehicle_range
    ):
        model = VulnerabilityModel(attacker_x, attack_range, vehicle_range, 4000.0)
        # If x is eastbound-vulnerable, every source west of it is too.
        boundary = attacker_x + model.surplus
        assert model.vulnerable(boundary - 1.0, Direction.EAST)
        assert not model.vulnerable(boundary + 1.0, Direction.EAST)


class TestCanonicalBytesProperties:
    @given(st.floats(allow_nan=False), st.text(max_size=20), st.integers())
    def test_canonical_bytes_injective_on_simple_bodies(self, f, s, i):
        from dataclasses import make_dataclass

        Body = make_dataclass("Body", [("f", float), ("s", str), ("i", int)], frozen=True)
        a = Body(f, s, i)
        b = Body(f, s, i + 1)
        assert canonical_bytes(a) == canonical_bytes(Body(f, s, i))
        assert canonical_bytes(a) != canonical_bytes(b)


class TestWireProperties:
    @given(
        st.integers(min_value=0, max_value=2**63 - 1),
        st.floats(min_value=-20000, max_value=20000, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=80, allow_nan=False),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
    )
    def test_pv_round_trip_within_quantisation(self, addr, x, y, speed, t):
        from repro.geonet import wire

        pv = PositionVector(Position(x, y), speed, 0.0, t)
        decoded_addr, decoded = wire.decode_pv(wire.encode_pv(addr, pv))
        assert decoded_addr == addr
        assert abs(decoded.position.x - x) <= 0.005 + 1e-9
        assert abs(decoded.position.y - y) <= 0.005 + 1e-9
        assert abs(decoded.speed - speed) <= 0.005 + 1e-9
        assert abs(decoded.timestamp - t) <= 0.001 + 1e-9

    @given(
        st.text(max_size=64),
        st.integers(min_value=1, max_value=255),
        st.integers(min_value=1, max_value=2**31 - 1),
    )
    def test_gbc_round_trip(self, payload, rhl, seq):
        from repro.geo.areas import RectangularArea
        from repro.geonet import wire

        data = wire.encode_gbc(
            source_addr=1,
            sequence_number=seq,
            source_pv=PositionVector(Position(0, 0), 0.0, 0.0, 0.0),
            area=RectangularArea(0, 100, 0, 10),
            payload=payload,
            lifetime=60.0,
            created_at=0.0,
            rhl=rhl,
        )
        fields = wire.decode_gbc(data)
        assert fields["payload"] == payload
        assert fields["rhl"] == rhl
        assert fields["sequence_number"] == seq
        assert len(data) == wire.gbc_size(payload)
