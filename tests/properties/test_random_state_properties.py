"""Property-based tests (hypothesis) for RandomStreams state capture.

The checkpoint subsystem relies on :meth:`RandomStreams.state_snapshot` /
:meth:`restore_state` reproducing every future draw exactly — for stdlib
streams, numpy generators and ``spawn()``-ed child factories alike.  These
properties drive arbitrary interleavings of stream creation and draws,
snapshot at an arbitrary point, and require the restored factory's
subsequent draws to be bit-identical to the original's.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import RandomStreams

#: Small alphabets keep hypothesis exploring interleavings, not names.
NAMES = st.sampled_from(["a", "b", "traffic", "attacker"])
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)

#: One step of stream usage: (kind, stream name, number of draws).
STEPS = st.lists(
    st.tuples(st.sampled_from(["std", "numpy", "child"]), NAMES,
              st.integers(min_value=0, max_value=5)),
    min_size=0,
    max_size=12,
)


def _apply(streams: RandomStreams, step) -> None:
    kind, name, draws = step
    if kind == "std":
        for _ in range(draws):
            streams.get(name).random()
    elif kind == "numpy":
        for _ in range(draws):
            streams.get_numpy(name).random()
    else:
        child = streams.spawn(name)
        for _ in range(draws):
            child.get(name).random()


def _future_draws(streams: RandomStreams, steps) -> list:
    out = []
    for kind, name, draws in steps:
        if kind == "std":
            out.extend(streams.get(name).random() for _ in range(draws))
        elif kind == "numpy":
            out.extend(
                float(streams.get_numpy(name).random()) for _ in range(draws)
            )
        else:
            child = streams.spawn(name)
            out.extend(child.get(name).random() for _ in range(draws))
    return out


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS, past=STEPS, future=STEPS)
def test_restore_reproduces_future_draws_exactly(seed, past, future):
    """snapshot -> restore on a fresh factory -> identical future draws."""
    original = RandomStreams(seed)
    for step in past:
        _apply(original, step)
    snapshot = original.state_snapshot()

    restored = RandomStreams(seed)
    restored.restore_state(snapshot)
    assert _future_draws(restored, future) == _future_draws(original, future)


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, past=STEPS, future=STEPS)
def test_snapshot_survives_pickling(seed, past, future):
    """The snapshot is pure data: a pickle round trip restores the same."""
    original = RandomStreams(seed)
    for step in past:
        _apply(original, step)
    snapshot = pickle.loads(pickle.dumps(original.state_snapshot()))

    restored = RandomStreams(seed)
    restored.restore_state(snapshot)
    assert _future_draws(restored, future) == _future_draws(original, future)


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, past=STEPS)
def test_snapshot_is_passive(seed, past):
    """Taking a snapshot must not advance or perturb any stream."""
    witness = RandomStreams(seed)
    observed = RandomStreams(seed)
    for step in past:
        _apply(witness, step)
        _apply(observed, step)
    observed.state_snapshot()
    probe = [("std", "a", 3), ("numpy", "b", 3), ("child", "a", 3)]
    assert _future_draws(observed, probe) == _future_draws(witness, probe)


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, past=STEPS)
def test_spawned_children_are_covered_recursively(seed, past):
    """Grandchildren drawn from before the snapshot restore exactly too."""
    original = RandomStreams(seed)
    for step in past:
        _apply(original, step)
    grandchild = original.spawn("x").spawn("y")
    burned = [grandchild.get("g").random() for _ in range(4)]
    snapshot = original.state_snapshot()

    restored = RandomStreams(seed)
    restored.restore_state(snapshot)
    restored_grandchild = restored.spawn("x").spawn("y")
    next_draws = [grandchild.get("g").random() for _ in range(4)]
    assert [
        restored_grandchild.get("g").random() for _ in range(4)
    ] == next_draws
    assert next_draws != burned  # the stream really advanced


@given(seed=SEEDS, other=SEEDS)
def test_restore_rejects_foreign_root_seed(seed, other):
    """A snapshot only restores onto a factory with the same root seed."""
    if seed == other:
        other += 1
    snapshot = RandomStreams(seed).state_snapshot()
    with pytest.raises(ValueError, match="root seed"):
        RandomStreams(other).restore_state(snapshot)


def test_untouched_streams_stay_at_seed_derived_state():
    """Streams absent from a snapshot keep their initial derived state."""
    original = RandomStreams(11)
    original.get("used").random()
    snapshot = original.state_snapshot()

    restored = RandomStreams(11)
    restored.restore_state(snapshot)
    fresh = RandomStreams(11)
    assert (
        restored.get("never_touched").random()
        == fresh.get("never_touched").random()
    )
