"""Tests for the optional frame-loss (fading) model."""

import pytest

from repro.geo.position import Position
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.frames import FrameKind
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def make_channel(loss_rate):
    sim = Simulator()
    channel = BroadcastChannel(sim, RandomStreams(3), loss_rate=loss_rate)
    return sim, channel


def add_iface(channel, x):
    iface = RadioInterface(lambda: Position(x, 0.0), 1000.0)
    received = []
    iface.attach(received.append)
    channel.register(iface)
    return iface, received


def test_zero_loss_delivers_everything():
    sim, channel = make_channel(0.0)
    sender, _ = add_iface(channel, 0)
    _rx, received = add_iface(channel, 10)
    for _ in range(50):
        sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert len(received) == 50
    assert channel.stats.frames_faded == 0


def test_loss_rate_drops_roughly_that_fraction():
    sim, channel = make_channel(0.3)
    sender, _ = add_iface(channel, 0)
    _rx, received = add_iface(channel, 10)
    for _ in range(500):
        sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert 250 < len(received) < 450  # ~350 expected
    assert channel.stats.frames_faded == 500 - len(received)


def test_loss_is_per_receiver_independent():
    sim, channel = make_channel(0.5)
    sender, _ = add_iface(channel, 0)
    _a, got_a = add_iface(channel, 10)
    _b, got_b = add_iface(channel, 20)
    for _ in range(200):
        sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    # The two receivers' loss patterns differ (independent draws).
    assert len(got_a) != len(got_b) or got_a != got_b


def test_loss_is_seed_deterministic():
    counts = []
    for _ in range(2):
        sim, channel = make_channel(0.4)
        sender, _ = add_iface(channel, 0)
        _rx, received = add_iface(channel, 10)
        for _ in range(100):
            sender.send(FrameKind.BEACON, "x")
        sim.run_until(1.0)
        counts.append(len(received))
    assert counts[0] == counts[1]


def test_invalid_loss_rate_rejected():
    with pytest.raises(ValueError):
        make_channel(1.0)
    with pytest.raises(ValueError):
        make_channel(-0.1)


def test_experiment_config_plumbs_loss_rate():
    import dataclasses

    from repro.experiments import ExperimentConfig
    from repro.experiments.world import World

    config = ExperimentConfig.intra_area_default(duration=5.0)
    config = config.with_(
        channel_loss_rate=0.2,
        road=dataclasses.replace(config.road, length=600.0),
    )
    world = World(config, attacked=False, seed=1)
    world.run()
    assert world.channel.loss_rate == 0.2
    assert world.channel.stats.frames_faded > 0


def test_invalid_config_loss_rate_rejected():
    from repro.experiments import ExperimentConfig

    with pytest.raises(ValueError):
        ExperimentConfig.intra_area_default().with_(channel_loss_rate=1.5)
