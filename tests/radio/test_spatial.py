"""Unit tests for the uniform-grid spatial index."""

import math
import random

import pytest

from repro.radio.spatial import SpatialGrid


def brute_force(points, x, y, radius):
    r_sq = radius * radius
    out = set()
    for item, (ix, iy) in points.items():
        dx, dy = ix - x, iy - y
        if dx * dx + dy * dy <= r_sq:
            out.add(item)
    return out


def test_invalid_cell_size_rejected():
    with pytest.raises(ValueError):
        SpatialGrid(0.0)
    with pytest.raises(ValueError):
        SpatialGrid(-5.0)


def test_insert_query_remove_roundtrip():
    grid = SpatialGrid(100.0)
    grid.insert("a", 10.0, 10.0)
    grid.insert("b", 50.0, 10.0)
    grid.insert("c", 500.0, 10.0)
    assert len(grid) == 3
    assert "a" in grid
    assert grid.position_of("b") == (50.0, 10.0)
    assert set(grid.items_in_disc(0.0, 0.0, 100.0)) == {"a", "b"}
    grid.remove("b")
    assert len(grid) == 2
    assert "b" not in grid
    assert set(grid.items_in_disc(0.0, 0.0, 100.0)) == {"a"}


def test_duplicate_insert_rejected():
    grid = SpatialGrid(10.0)
    grid.insert("a", 0.0, 0.0)
    with pytest.raises(ValueError):
        grid.insert("a", 5.0, 5.0)


def test_remove_missing_raises():
    grid = SpatialGrid(10.0)
    with pytest.raises(KeyError):
        grid.remove("ghost")


def test_boundary_distance_inclusive():
    """dist == radius is a hit, matching the channel's unit-disk rule."""
    grid = SpatialGrid(100.0)
    grid.insert("edge", 100.0, 0.0)
    assert grid.items_in_disc(0.0, 0.0, 100.0) == ["edge"]
    assert grid.items_in_disc(0.0, 0.0, 99.999) == []


def test_query_returns_distance_squared():
    grid = SpatialGrid(100.0)
    grid.insert("p", 30.0, 40.0)
    [(item, d_sq)] = grid.query_disc(0.0, 0.0, 60.0)
    assert item == "p"
    assert d_sq == pytest.approx(2500.0)


def test_move_within_cell_and_across_cells():
    grid = SpatialGrid(100.0)
    grid.insert("v", 10.0, 10.0)
    grid.move("v", 20.0, 10.0)  # same cell
    assert grid.position_of("v") == (20.0, 10.0)
    assert grid.n_cells == 1
    grid.move("v", 250.0, 10.0)  # crosses cells
    assert grid.position_of("v") == (250.0, 10.0)
    assert grid.n_cells == 1  # old bucket reclaimed
    assert grid.items_in_disc(250.0, 10.0, 1.0) == ["v"]
    assert grid.items_in_disc(20.0, 10.0, 1.0) == []


def test_empty_buckets_are_reclaimed():
    grid = SpatialGrid(50.0)
    for i in range(10):
        grid.insert(i, i * 200.0, 0.0)
    assert grid.n_cells == 10
    for i in range(10):
        grid.remove(i)
    assert grid.n_cells == 0
    assert len(grid) == 0


def test_negative_coordinates():
    grid = SpatialGrid(100.0)
    grid.insert("w", -150.0, -20.0)
    assert grid.items_in_disc(-150.0, -20.0, 10.0) == ["w"]
    assert grid.items_in_disc(150.0, 20.0, 10.0) == []


def test_radius_larger_than_cell_is_exact():
    """Queries beyond one cell ring stay exact (multi-ring walk)."""
    grid = SpatialGrid(50.0)
    points = {}
    rng = random.Random(42)
    for i in range(200):
        x, y = rng.uniform(-2000, 2000), rng.uniform(-200, 200)
        grid.insert(i, x, y)
        points[i] = (x, y)
    for radius in (10.0, 49.9, 50.0, 175.0, 1000.0, 5000.0):
        got = set(grid.items_in_disc(3.0, -7.0, radius))
        assert got == brute_force(points, 3.0, -7.0, radius), radius


def test_randomized_churn_matches_brute_force():
    """Insert/move/remove churn never desynchronises the index."""
    rng = random.Random(7)
    grid = SpatialGrid(120.0)
    points = {}
    next_id = 0
    for _round in range(300):
        op = rng.random()
        if op < 0.4 or not points:
            x, y = rng.uniform(-500, 4500), rng.uniform(-50, 50)
            grid.insert(next_id, x, y)
            points[next_id] = (x, y)
            next_id += 1
        elif op < 0.8:
            item = rng.choice(list(points))
            x, y = rng.uniform(-500, 4500), rng.uniform(-50, 50)
            grid.move(item, x, y)
            points[item] = (x, y)
        else:
            item = rng.choice(list(points))
            grid.remove(item)
            del points[item]
        if _round % 25 == 0:
            qx, qy = rng.uniform(-500, 4500), rng.uniform(-50, 50)
            radius = rng.uniform(0.0, 600.0)
            assert set(grid.items_in_disc(qx, qy, radius)) == brute_force(
                points, qx, qy, radius
            )
    assert len(grid) == len(points)


def test_negative_radius_returns_nothing():
    grid = SpatialGrid(10.0)
    grid.insert("a", 0.0, 0.0)
    assert grid.query_disc(0.0, 0.0, -1.0) == []


def test_zero_radius_hits_exact_point():
    grid = SpatialGrid(10.0)
    grid.insert("a", 5.0, 5.0)
    assert grid.items_in_disc(5.0, 5.0, 0.0) == ["a"]
    assert math.isclose(grid.query_disc(5.0, 5.0, 0.0)[0][1], 0.0)


# ----------------------------------------------------------------------
# move_many (bulk position refresh)
# ----------------------------------------------------------------------
def test_move_many_equivalent_to_repeated_move():
    import numpy as np

    rng = random.Random(7)
    n = 200
    points = {f"item-{i}": (rng.uniform(-900, 900), rng.uniform(-900, 900)) for i in range(n)}
    bulk = SpatialGrid(250.0)
    single = SpatialGrid(250.0)
    for item, (x, y) in points.items():
        bulk.insert(item, x, y)
        single.insert(item, x, y)
    items = list(points)
    # Mixed magnitudes: most moves stay in-cell, some cross boundaries,
    # some targets are negative (floor vs truncation).
    xs = np.array([points[i][0] + rng.uniform(-300, 300) for i in items])
    ys = np.array([points[i][1] + rng.uniform(-300, 300) for i in items])
    moved = bulk.move_many(items, xs, ys)
    for item, x, y in zip(items, xs, ys):
        single.move(item, x, y)
    bulk.check_consistency()
    single.check_consistency()
    assert moved >= 1
    for item in items:
        assert bulk.position_of(item) == single.position_of(item)
    for _ in range(20):
        qx, qy, r = rng.uniform(-900, 900), rng.uniform(-900, 900), rng.uniform(50, 500)
        got = {i for i, _d in bulk.query_disc(qx, qy, r)}
        want = {i for i, _d in single.query_disc(qx, qy, r)}
        assert got == want


def test_move_many_in_cell_does_not_rebucket():
    import numpy as np

    grid = SpatialGrid(100.0)
    grid.insert("a", 10.0, 10.0)
    grid.insert("b", 20.0, 20.0)
    moved = grid.move_many(["a", "b"], np.array([11.0, 21.0]), np.array([12.0, 22.0]))
    assert moved == 0
    assert grid.position_of("a") == (11.0, 12.0)
    grid.check_consistency()


def test_move_many_unknown_item_raises():
    import numpy as np

    grid = SpatialGrid(100.0)
    with pytest.raises(KeyError):
        grid.move_many(["ghost"], np.array([1.0]), np.array([2.0]))
