"""Tests for the Table II radio technologies."""

import pytest

from repro.radio.technology import CV2X, DSRC, RadioTechnology, RangeClass, TECHNOLOGIES


def test_dsrc_table2_values():
    assert DSRC.los_median_m == 1283.0
    assert DSRC.nlos_median_m == 486.0
    assert DSRC.nlos_worst_m == 327.0


def test_cv2x_table2_values():
    assert CV2X.los_median_m == 1703.0
    assert CV2X.nlos_median_m == 593.0
    assert CV2X.nlos_worst_m == 359.0


def test_vehicle_range_is_nlos_median():
    assert DSRC.vehicle_range_m == 486.0
    assert CV2X.vehicle_range_m == 593.0


def test_max_range_is_los_median():
    assert DSRC.max_range_m == 1283.0


def test_range_for_each_class():
    assert DSRC.range_for(RangeClass.LOS_MEDIAN) == 1283.0
    assert DSRC.range_for(RangeClass.NLOS_MEDIAN) == 486.0
    assert DSRC.range_for(RangeClass.NLOS_WORST) == 327.0


def test_invalid_range_ordering_rejected():
    with pytest.raises(ValueError):
        RadioTechnology("bad", los_median_m=100, nlos_median_m=200, nlos_worst_m=50)
    with pytest.raises(ValueError):
        RadioTechnology("bad", los_median_m=100, nlos_median_m=50, nlos_worst_m=60)


def test_technology_lookup():
    assert TECHNOLOGIES["DSRC"] is DSRC
    assert TECHNOLOGIES["C-V2X"] is CV2X


def test_nlos_shorter_than_los_for_both():
    for tech in (DSRC, CV2X):
        assert tech.nlos_median_m < tech.los_median_m
        assert tech.nlos_worst_m <= tech.nlos_median_m
