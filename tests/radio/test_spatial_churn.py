"""Churn regression tests for the spatial grid and the channel's index.

Node churn exercises the one code path the original perf work never hit:
interfaces *leaving and re-entering* a channel whose grid is already
built.  These tests hammer that path — randomized insert/move/remove
interleavings against a reference dict, and register/unregister cycles on
a live channel — with :meth:`SpatialGrid.check_consistency` as the oracle.
"""

import random

import pytest

from repro.radio.spatial import SpatialGrid


def test_randomized_churn_stays_consistent_with_a_reference_dict():
    rng = random.Random(1234)
    grid = SpatialGrid(150.0)
    reference = {}
    next_id = 0
    for round_no in range(50):
        for _ in range(40):
            op = rng.random()
            if op < 0.4 or not reference:
                x, y = rng.uniform(-5000, 5000), rng.uniform(-5000, 5000)
                grid.insert(next_id, x, y)
                reference[next_id] = (x, y)
                next_id += 1
            elif op < 0.8:
                item = rng.choice(list(reference))
                x, y = rng.uniform(-5000, 5000), rng.uniform(-5000, 5000)
                grid.move(item, x, y)
                reference[item] = (x, y)
            else:
                item = rng.choice(list(reference))
                grid.remove(item)
                del reference[item]
        grid.check_consistency()
        assert len(grid) == len(reference)
        for item, (x, y) in reference.items():
            assert grid.position_of(item) == (x, y)
        qx, qy = rng.uniform(-5000, 5000), rng.uniform(-5000, 5000)
        got = set(grid.items_in_disc(qx, qy, 400.0))
        want = {
            item
            for item, (x, y) in reference.items()
            if (x - qx) ** 2 + (y - qy) ** 2 <= 400.0**2
        }
        assert got == want


def test_remove_reinsert_same_item_is_clean():
    grid = SpatialGrid(100.0)
    grid.insert("a", 10.0, 10.0)
    grid.remove("a")
    grid.insert("a", 900.0, 900.0)
    grid.check_consistency()
    assert grid.position_of("a") == (900.0, 900.0)
    assert grid.items_in_disc(10.0, 10.0, 50.0) == []


def test_check_consistency_flags_stale_bucket_position():
    grid = SpatialGrid(100.0)
    grid.insert("a", 10.0, 10.0)
    cell = grid._cell_of["a"]
    grid._cells[cell]["a"] = (910.0, 10.0)  # bypasses move(): stale cell
    with pytest.raises(ValueError, match="stale cell entry"):
        grid.check_consistency()


def test_check_consistency_flags_empty_bucket():
    grid = SpatialGrid(100.0)
    grid.insert("a", 10.0, 10.0)
    grid._cells[123456] = {}
    with pytest.raises(ValueError, match="empty"):
        grid.check_consistency()


def test_check_consistency_flags_unindexed_bucket_item():
    grid = SpatialGrid(100.0)
    grid.insert("a", 10.0, 10.0)
    cell = grid._cell_of["a"]
    grid._cells[cell]["ghost"] = (10.0, 10.0)
    with pytest.raises(ValueError, match="item index"):
        grid.check_consistency()


def test_check_consistency_flags_item_missing_from_bucket():
    grid = SpatialGrid(100.0)
    grid.insert("a", 10.0, 10.0)
    cell = grid._cell_of["a"]
    del grid._cells[cell]["a"]
    grid._cells[cell]["filler"] = (10.0, 10.0)
    grid._cell_of["filler"] = cell
    with pytest.raises(ValueError, match="missing from its bucket"):
        grid.check_consistency()


# ----------------------------------------------------------------------
# churn through the live channel
# ----------------------------------------------------------------------
def test_channel_grid_survives_unregister_reregister_cycles(testbed):
    nodes = testbed.chain(4, 150.0)
    testbed.warm_up(5.0)
    grid = testbed.channel._grid
    assert grid is not None
    for cycle in range(5):
        victim = nodes[cycle % len(nodes)]
        testbed.channel.unregister(victim.iface)
        grid.check_consistency()
        assert len(grid) == len(testbed.channel._interfaces) == 3
        assert victim.iface._grid_item not in grid
        # time does not advance while unregistered: the node's beacon
        # service is still scheduled and must not fire channel-less
        testbed.channel.register(victim.iface)
        testbed.warm_up(1.0)
        grid.check_consistency()
        assert len(grid) == len(testbed.channel._interfaces) == 4
        assert victim.iface._grid_item in grid


def test_fault_churn_keeps_the_channel_grid_consistent(testbed):
    """The fault injector's outage/reboot cycle must leave the grid exactly
    tracking channel membership at every instant it can be observed."""
    from repro.faults import FaultInjector, FaultPlan

    injector = FaultInjector(
        FaultPlan.churning(2.0, mean_downtime=1.0),
        sim=testbed.sim,
        streams=testbed.streams,
        channel=testbed.channel,
    )
    nodes = testbed.chain(4, 150.0)
    for node in nodes:
        injector.adopt(node)
    for _ in range(60):
        testbed.warm_up(0.5)
        grid = testbed.channel._grid
        if grid is None:
            continue
        grid.check_consistency()
        assert len(grid) == len(testbed.channel._interfaces)
        for node in nodes:
            assert (node.iface in testbed.channel._interfaces) == (
                not node.is_down
            )
    assert injector.stats.outages > 0
    assert injector.stats.reboots > 0
