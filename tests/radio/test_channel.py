"""Tests for the unit-disk broadcast channel."""

import pytest

from repro.geo.position import Position
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.frames import FrameKind
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def make_channel(**kwargs):
    sim = Simulator()
    channel = BroadcastChannel(sim, RandomStreams(1), **kwargs)
    return sim, channel


def make_iface(channel, x, y=0.0, tx_range=100.0, **kwargs):
    iface = RadioInterface(lambda: Position(x, y), tx_range, **kwargs)
    received = []
    iface.attach(received.append)
    channel.register(iface)
    return iface, received


def test_broadcast_reaches_nodes_within_tx_range():
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0)
    _near, near_rx = make_iface(channel, 99)
    _far, far_rx = make_iface(channel, 101)
    sender.send(FrameKind.BEACON, "hello")
    sim.run_until(1.0)
    assert [f.payload for f in near_rx] == ["hello"]
    assert far_rx == []


def test_sender_does_not_receive_own_frame():
    sim, channel = make_channel()
    sender, sender_rx = make_iface(channel, 0)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert sender_rx == []


def test_boundary_distance_is_received():
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0, tx_range=100.0)
    _rx, received = make_iface(channel, 100.0)
    sender.send(FrameKind.BEACON, "edge")
    sim.run_until(1.0)
    assert len(received) == 1


def test_delivery_has_latency():
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0)
    _rx, received = make_iface(channel, 10)
    times = []
    _rx.attach(lambda f: times.append(sim.now))
    sender.send(FrameKind.BEACON, "x")
    assert times == []  # not delivered synchronously
    sim.run_until(1.0)
    assert len(times) == 1
    assert 0.0004 <= times[0] <= 0.001


def test_unicast_only_reaches_addressee():
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0)
    target, target_rx = make_iface(channel, 50)
    _other, other_rx = make_iface(channel, 60)
    sender.send(FrameKind.GEO_UNICAST, "p", dest_addr=target.address)
    sim.run_until(1.0)
    assert len(target_rx) == 1
    assert other_rx == []


def test_unicast_to_out_of_range_target_is_lost_and_counted():
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0, tx_range=100.0)
    target, target_rx = make_iface(channel, 200)
    sender.send(FrameKind.GEO_UNICAST, "p", dest_addr=target.address)
    sim.run_until(1.0)
    assert target_rx == []
    assert channel.stats.unicast_lost == 1


def test_unicast_to_unknown_address_counted_lost():
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0)
    sender.send(FrameKind.GEO_UNICAST, "p", dest_addr=999999)
    sim.run_until(1.0)
    assert channel.stats.unicast_lost == 1


def test_promiscuous_interface_overhears_unicast():
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0)
    target, _ = make_iface(channel, 50)
    sniffer, sniffed = make_iface(channel, 20, promiscuous=True)
    sender.send(FrameKind.GEO_UNICAST, "secret", dest_addr=target.address)
    sim.run_until(1.0)
    assert [f.payload for f in sniffed] == ["secret"]


def test_link_range_override_extends_reception():
    """A mast (link_range override) hears beyond the sender's tx range."""
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0, tx_range=100.0)
    mast, mast_rx = make_iface(channel, 500, link_range=1000.0)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert len(mast_rx) == 1


def test_link_range_override_limits_reception():
    """A short-range attacker does not get the vehicles' ears for free."""
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0, tx_range=486.0)
    weak, weak_rx = make_iface(channel, 400, link_range=327.0)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert weak_rx == []


def test_per_frame_tx_range_override():
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0, tx_range=100.0)
    _far, far_rx = make_iface(channel, 150)
    sender.send(FrameKind.BEACON, "boosted", tx_range=200.0)
    sim.run_until(1.0)
    assert len(far_rx) == 1


def test_obstruction_blocks_link():
    sim, channel = make_channel()
    channel.add_obstruction(lambda a, b: (a.x - 50) * (b.x - 50) < 0)
    sender, _ = make_iface(channel, 0)
    _blocked, blocked_rx = make_iface(channel, 80)
    _same_side, same_rx = make_iface(channel, 40)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert blocked_rx == []
    assert len(same_rx) == 1


def test_obstruction_public_api():
    _sim, channel = make_channel()
    assert not channel.has_obstructions
    channel.add_obstruction(lambda a, b: (a.x - 50) * (b.x - 50) < 0)
    assert channel.has_obstructions
    receiver, _ = make_iface(channel, 80)
    assert channel.is_link_blocked(Position(0, 0), receiver)
    assert not channel.is_link_blocked(Position(60, 0), receiver)


def test_block_mask_mixes_vector_and_scalar_predicates():
    import numpy as np

    _sim, channel = make_channel()
    # A scalar-only predicate and one implementing the blocks_many protocol.
    channel.add_obstruction(lambda a, b: a.x < 0)

    class Vectorised:
        def __call__(self, a, b):
            return b.x > 100

        def blocks_many(self, tx_x, tx_y, rx_x, rx_y):
            return rx_x > 100

    channel.add_obstruction(Vectorised())
    tx_x = np.array([-1.0, 10.0, 10.0])
    tx_y = np.zeros(3)
    rx_x = np.array([50.0, 150.0, 50.0])
    rx_y = np.zeros(3)
    mask = channel.block_mask(tx_x, tx_y, rx_x, rx_y)
    assert mask.tolist() == [True, True, False]


def test_unregister_stops_delivery():
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0)
    iface, received = make_iface(channel, 10)
    channel.unregister(iface)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert received == []


def test_duplicate_registration_rejected():
    _sim, channel = make_channel()
    iface, _ = make_iface(channel, 0)
    with pytest.raises(ValueError):
        channel.register(iface)


def test_unregister_unknown_is_noop():
    _sim, channel = make_channel()
    iface = RadioInterface(lambda: Position(0, 0), 10.0)
    channel.unregister(iface)  # must not raise


def test_positions_refresh_after_invalidation():
    sim, channel = make_channel()
    pos = {"x": 0.0}
    mover = RadioInterface(lambda: Position(pos["x"], 0), 100.0)
    mover_rx = []
    mover.attach(mover_rx.append)
    channel.register(mover)
    sender, _ = make_iface(channel, 500)
    # Out of range at first transmission.
    sender.send(FrameKind.BEACON, "one")
    sim.run_until(0.01)
    assert mover_rx == []
    # Move into range and invalidate the cache, as the mobility loop does.
    pos["x"] = 450.0
    channel.invalidate_positions()
    sender.send(FrameKind.BEACON, "two")
    sim.run_until(0.02)
    assert [f.payload for f in mover_rx] == ["two"]


def test_stats_count_sent_and_delivered():
    sim, channel = make_channel()
    sender, _ = make_iface(channel, 0)
    make_iface(channel, 10)
    make_iface(channel, 20)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert channel.stats.frames_sent == 1
    assert channel.stats.frames_delivered == 2
    assert channel.stats.sent_by_kind[FrameKind.BEACON] == 1


def test_send_requires_registration():
    iface = RadioInterface(lambda: Position(0, 0), 10.0)
    with pytest.raises(RuntimeError):
        iface.send(FrameKind.BEACON, "x")


def test_negative_tx_range_rejected():
    with pytest.raises(ValueError):
        RadioInterface(lambda: Position(0, 0), -1.0)


def test_invalid_link_range_rejected():
    with pytest.raises(ValueError):
        RadioInterface(lambda: Position(0, 0), 10.0, link_range=0.0)
