"""Tests for the Manhattan corner-shadowing model."""

import numpy as np
import pytest

from repro.geo.position import Position
from repro.radio.shadowing import ManhattanShadowing

# A 3x3-street grid with 200 m blocks: streets at 0, 200, 400 on both
# axes, 6 m LoS corridors, 20 m corner clearance.
MODEL = ManhattanShadowing.for_grid(
    3, 3, 200.0, half_width=6.0, corner_clearance=20.0
)


class TestLineOfSight:
    def test_same_horizontal_street_is_clear(self):
        # Both on the y=200 street (within the corridor half-width).
        assert not MODEL(Position(10.0, 198.0), Position(390.0, 202.0))

    def test_same_vertical_street_is_clear(self):
        assert not MODEL(Position(201.0, 10.0), Position(199.0, 390.0))

    def test_cross_street_is_blocked(self):
        # One on y=0, one on y=200, both mid-block: buildings in between.
        assert MODEL(Position(100.0, 0.0), Position(100.0, 200.0))

    def test_mid_block_positions_are_blocked_from_everywhere(self):
        # Inside a building block (on no street corridor at all).
        inside = Position(100.0, 100.0)
        assert MODEL(inside, Position(100.0, 0.0))
        assert MODEL(Position(100.0, 0.0), inside)

    def test_parallel_streets_are_blocked(self):
        assert MODEL(Position(50.0, 0.0), Position(50.0, 400.0))


class TestCornerClearance:
    def test_both_near_common_intersection_is_clear(self):
        # 15 m down each arm of the (200, 200) intersection: diffraction
        # carries the signal around the corner.
        a = Position(185.0, 200.0)  # on the horizontal street
        b = Position(200.0, 215.0)  # on the vertical street
        assert not MODEL(a, b)

    def test_one_endpoint_too_far_from_corner_is_blocked(self):
        a = Position(185.0, 200.0)  # 15 m from the corner
        b = Position(200.0, 260.0)  # 60 m from it, around the corner
        assert MODEL(a, b)

    def test_different_intersections_do_not_help(self):
        # Each endpoint near *a* corner, but not the same one.
        a = Position(15.0, 0.0)  # near (0, 0)
        b = Position(400.0, 15.0)  # near (400, 0)
        assert MODEL(a, b)

    def test_zero_clearance_disables_corner_diffraction(self):
        model = ManhattanShadowing.for_grid(
            3, 3, 200.0, half_width=6.0, corner_clearance=0.0
        )
        # 10 m down each arm of the (200, 200) corner: on different streets
        # and clear of each other's corridors.
        a = Position(190.0, 200.0)
        b = Position(200.0, 190.0)
        assert model(a, b)
        assert not MODEL(a, b)  # the 20 m-clearance model connects them


class TestVectorizedMask:
    def test_blocks_many_matches_scalar(self):
        rng = np.random.default_rng(7)
        tx = rng.uniform(-20.0, 420.0, size=(2, 200))
        rx = rng.uniform(-20.0, 420.0, size=(2, 200))
        mask = MODEL.blocks_many(tx[0], tx[1], rx[0], rx[1])
        for k in range(tx.shape[1]):
            scalar = MODEL(
                Position(tx[0][k], tx[1][k]), Position(rx[0][k], rx[1][k])
            )
            assert bool(mask[k]) == scalar

    def test_empty_input_gives_empty_mask(self):
        empty = np.array([])
        assert MODEL.blocks_many(empty, empty, empty, empty).shape == (0,)


class TestGeometryHelpers:
    def test_on_street(self):
        assert MODEL.on_street(Position(100.0, 3.0))
        assert not MODEL.on_street(Position(100.0, 100.0))

    def test_intersections_enumerate_the_grid(self):
        points = MODEL.intersections()
        assert len(points) == 9
        assert Position(200.0, 200.0) in points


class TestValidation:
    def test_needs_a_street_per_axis(self):
        with pytest.raises(ValueError):
            ManhattanShadowing.for_grid(0, 3, 200.0, half_width=6.0)

    def test_half_width_must_be_positive(self):
        with pytest.raises(ValueError):
            ManhattanShadowing.for_grid(3, 3, 200.0, half_width=0.0)

    def test_negative_clearance_rejected(self):
        with pytest.raises(ValueError):
            ManhattanShadowing.for_grid(
                3, 3, 200.0, half_width=6.0, corner_clearance=-1.0
            )
